//! Offline shim for the `serde_json` API surface this workspace uses:
//! [`Value`] / [`Number`] / [`Map`], a full JSON parser and printer
//! (compact and pretty), the [`json!`] macro, and `to_string` /
//! `to_string_pretty` / `from_str` bridged over the `serde` shim's
//! `Content` tree. Object key order is insertion order.

use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Specialized `Result` for JSON operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An order-preserving string-keyed map (like serde_json's
/// `preserve_order` feature).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert, replacing (in place) any existing entry for `key`.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Does the map contain `key`?
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Remove an entry, preserving the order of the rest.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON number: integer or float.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, PartialEq)]
enum N {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    /// A float number, unless it is NaN or infinite.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number(N::Float(f)))
    }

    /// As `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::Int(i) => Some(i),
            N::UInt(u) => i64::try_from(u).ok(),
            N::Float(_) => None,
        }
    }

    /// As `u64` if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::Int(i) => u64::try_from(i).ok(),
            N::UInt(u) => Some(u),
            N::Float(_) => None,
        }
    }

    /// As `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::Int(i) => Some(i as f64),
            N::UInt(u) => Some(u as f64),
            N::Float(f) => Some(f),
        }
    }
}

macro_rules! number_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                match i64::try_from(v) {
                    Ok(i) => Number(N::Int(i)),
                    Err(_) => Number(N::UInt(v as u64)),
                }
            }
        }
    )*};
}

number_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            N::Int(i) => write!(f, "{i}"),
            N::UInt(u) => write!(f, "{u}"),
            // {:?} keeps a trailing `.0` on integral floats, like serde_json.
            N::Float(x) => write!(f, "{x:?}"),
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map<String, Value>),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `i64` if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Borrow the backing vector if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the backing map if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}

macro_rules! value_eq_num {
    ($($t:ty => $as:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$as() == Some((*other).into())
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.$as() == Some((*self).into())
            }
        }
    )*};
}

value_eq_num!(i64 => as_i64, i32 => as_i64, u64 => as_u64, u32 => as_u64, f64 => as_f64, bool => as_bool);

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|a| a.get(idx))
            .unwrap_or(&NULL_VALUE)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Number::from_f64(f).map(Value::Number).unwrap_or(Value::Null)
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Value {
        Value::Number(n)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

value_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0c}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_compact(v: &Value, out: &mut impl fmt::Write) -> fmt::Result {
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Number(n) => write!(out, "{n}"),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_compact(item, out)?;
            }
            out.write_char(']')
        }
        Value::Object(map) => {
            out.write_char('{')?;
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_escaped(k, out)?;
                out.write_char(':')?;
                write_compact(item, out)?;
            }
            out.write_char('}')
        }
    }
}

fn write_pretty(v: &Value, out: &mut impl fmt::Write, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_str(",\n")?;
                }
                out.write_str(&inner)?;
                write_pretty(item, out, indent + 1)?;
            }
            write!(out, "\n{pad}]")
        }
        Value::Object(map) if !map.is_empty() => {
            out.write_str("{\n")?;
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.write_str(",\n")?;
                }
                out.write_str(&inner)?;
                write_escaped(k, out)?;
                out.write_str(": ")?;
                write_pretty(item, out, indent + 1)?;
            }
            write!(out, "\n{pad}}}")
        }
        other => write_compact(other, out),
    }
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error::new(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.eat(b) {
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return self.err("lone surrogate");
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .ok_or_else(|| Error::new("truncated surrogate"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error::new("bad surrogate"))?,
                                    16,
                                )
                                .map_err(|_| Error::new("bad surrogate"))?;
                                self.pos += 6;
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid codepoint"))?,
                            );
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one multi-byte UTF-8 scalar. Validate only a
                    // 4-byte window, not the whole remaining input — the
                    // latter turns large-document parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return self.err("invalid UTF-8"),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.eat(b'-') {}
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::Int(i))));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::UInt(u))));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Number(Number(N::Float(f)))),
            _ => self.err("invalid number"),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            self.expect(b',')?;
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(map));
            }
            self.expect(b',')?;
        }
    }
}

// ---- serde bridge ----------------------------------------------------

fn value_to_content(v: &Value) -> serde::Content {
    match v {
        Value::Null => serde::Content::Null,
        Value::Bool(b) => serde::Content::Bool(*b),
        Value::Number(n) => match &n.0 {
            N::Int(i) => serde::Content::Int(*i),
            N::UInt(u) => serde::Content::UInt(*u),
            N::Float(f) => serde::Content::Float(*f),
        },
        Value::String(s) => serde::Content::Str(s.clone()),
        Value::Array(items) => serde::Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => serde::Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_value(c: &serde::Content) -> Value {
    match c {
        serde::Content::Null => Value::Null,
        serde::Content::Bool(b) => Value::Bool(*b),
        serde::Content::Int(i) => Value::Number(Number(N::Int(*i))),
        serde::Content::UInt(u) => Value::Number(Number(N::UInt(*u))),
        serde::Content::Float(f) => Number::from_f64(*f)
            .map(Value::Number)
            .unwrap_or(Value::Null),
        serde::Content::Str(s) => Value::String(s.clone()),
        serde::Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        serde::Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

impl serde::Serialize for Value {
    fn to_content(&self) -> serde::Content {
        value_to_content(self)
    }
}

impl serde::Deserialize for Value {
    fn from_content(content: &serde::Content) -> std::result::Result<Self, serde::Error> {
        Ok(content_to_value(content))
    }
}

/// Parse JSON text into any `Deserialize` type (usually [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    T::from_content(&value_to_content(&value)).map_err(|e| Error::new(e.to_string()))
}

/// Serialize any `Serialize` type to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(content_to_value(&value.to_content()).to_string())
}

/// Serialize any `Serialize` type to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = content_to_value(&value.to_content());
    let mut out = String::new();
    write_pretty(&v, &mut out, 0).map_err(|e| Error::new(e.to_string()))?;
    Ok(out)
}

/// Convert any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(content_to_value(&value.to_content()))
}

/// Convert a [`Value`] into any `Deserialize` type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_content(&value_to_content(value)).map_err(|e| Error::new(e.to_string()))
}

/// Convert by reference for the `json!` macro (borrows like serde_json's).
#[doc(hidden)]
pub fn __json_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    content_to_value(&value.to_content())
}

/// Build a [`Value`] from a JSON-shaped literal. Object values and array
/// elements are ordinary expressions, converted by reference via their
/// `Serialize` impl (so owned fields are not moved).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__json_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::__json_value(&$value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::__json_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_print_round_trip() {
        let text = r#"{"a":[1,2.5,"x\n",true,null],"b":{"neg":-7},"u":18446744073709551615}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("b").and_then(|b| b.get("neg")).and_then(Value::as_i64), Some(-7));
        assert_eq!(v.get("u").and_then(Value::as_u64), Some(u64::MAX));
        let reprinted = v.to_string();
        let v2: Value = from_str(&reprinted).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn json_macro_and_order() {
        let v = json!({ "b": 1, "a": vec!["x".to_string()], "nested": json!({ "k": true }) });
        assert_eq!(
            v.to_string(),
            r#"{"b":1,"a":["x"],"nested":{"k":true}}"#
        );
        assert_eq!(v.get("nested").and_then(|n| n.get("k")), Some(&Value::Bool(true)));
    }

    #[test]
    fn pretty_round_trips() {
        let v = json!({ "rows": json!([1, 2]), "name": "t" });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"rows\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_formatting_keeps_fraction_marker() {
        assert_eq!(json!({ "f": 2.0 }).to_string(), r#"{"f":2.0}"#);
        let back: Value = from_str(r#"{"f":2.0}"#).unwrap();
        assert_eq!(back.get("f").and_then(Value::as_f64), Some(2.0));
        assert_eq!(back.get("f").and_then(Value::as_i64), None);
    }

    #[test]
    fn escapes_survive() {
        let v = Value::String("a\"b\\c\nd\u{1f600}".to_string());
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }
}
