//! Offline shim for the `serde` API surface this workspace uses.
//!
//! Instead of serde's visitor machinery, values serialize to and from a
//! self-describing [`Content`] tree; data formats (here: `serde_json`)
//! convert that tree to text. `#[derive(Serialize, Deserialize)]` is
//! provided by the companion `serde_derive` shim and follows serde's JSON
//! conventions for structs and enums (unit variant -> string, newtype
//! variant -> one-entry map).

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Produce the content tree for `self`.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value from `content`.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Content) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(i) => Content::Int(i),
                    Err(_) => Content::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let out = match content {
                    Content::Int(i) => <$t>::try_from(*i).ok(),
                    Content::UInt(u) => <$t>::try_from(*u).ok(),
                    _ => None,
                };
                match out {
                    Some(v) => Ok(v),
                    None => type_err(stringify!($t), content),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Float(f) => Ok(*f),
            Content::Int(i) => Ok(*i as f64),
            Content::UInt(u) => Ok(*u as f64),
            other => type_err("f64", other),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => type_err("sequence", other),
        }
    }
}

/// Maps serialize as a JSON object when every key serializes to a string
/// (the common `String`-keyed case), and as a sequence of `[key, value]`
/// pairs otherwise (e.g. composite index keys).
fn map_to_content(pairs: impl Iterator<Item = (Content, Content)>) -> Content {
    let pairs: Vec<(Content, Content)> = pairs.collect();
    if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
        Content::Map(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Content::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Content::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Content::Seq(vec![k, v]))
                .collect(),
        )
    }
}

fn map_from_content<K: Deserialize, V: Deserialize>(
    content: &Content,
) -> Result<Vec<(K, V)>, Error> {
    match content {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_content(&Content::Str(k.clone()))?,
                    V::from_content(v)?,
                ))
            })
            .collect(),
        Content::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Content::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_content(&kv[0])?, V::from_content(&kv[1])?))
                }
                other => type_err("[key, value] pair", other),
            })
            .collect(),
        other => type_err("map", other),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter().map(|(k, v)| (k.to_content(), v.to_content())))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(content)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sort serialized keys for deterministic output.
        let mut pairs: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        map_to_content(pairs.into_iter())
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(map_from_content::<K, V>(content)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert_eq!(
            String::from_content(&"hi".to_content()).unwrap(),
            "hi".to_string()
        );
        let v: Vec<Option<i64>> = vec![Some(1), None];
        assert_eq!(Vec::<Option<i64>>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn map_round_trip_keeps_entries() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        m.insert("b".to_string(), 2i64);
        assert_eq!(
            BTreeMap::<String, i64>::from_content(&m.to_content()).unwrap(),
            m
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(i64::from_content(&Content::Str("x".into())).is_err());
        assert!(String::from_content(&Content::Int(1)).is_err());
    }
}
