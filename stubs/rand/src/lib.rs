//! Offline shim for the `rand` API surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed across platforms, which is all the workloads and chaos
//! suites require. `random_range` resolves its output type through a
//! single generic impl per range shape so numeric literals infer the way
//! they do with the real crate.

use std::ops::{Range, RangeInclusive};

/// Types that can produce raw 64-bit output.
pub trait RngCore {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The standard generator: xoshiro256++ under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 stream expands the seed into the four xoshiro words.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Element types [`RngExt::random_range`] can produce.
pub trait SampleValue: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between(draw: &mut dyn FnMut() -> u64, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_value {
    ($($t:ty),*) => {$(
        impl SampleValue for $t {
            fn sample_between(
                draw: &mut dyn FnMut() -> u64,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range in random_range");
                (lo as i128 + (draw() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_value!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleValue for f64 {
    fn sample_between(draw: &mut dyn FnMut() -> u64, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty range in random_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (draw() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleValue for f32 {
    fn sample_between(draw: &mut dyn FnMut() -> u64, lo: Self, hi: Self, _inclusive: bool) -> Self {
        f64::sample_between(draw, f64::from(lo), f64::from(hi), false) as f32
    }
}

/// Range shapes [`RngExt::random_range`] accepts.
pub trait SampleRange {
    /// The element type the range yields.
    type Output: SampleValue;
    /// Draw one uniformly distributed value.
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> Self::Output;
}

impl<T: SampleValue> SampleRange for Range<T> {
    type Output = T;
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T {
        T::sample_between(draw, self.start, self.end, false)
    }
}

impl<T: SampleValue> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T {
        T::sample_between(draw, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<T: RngCore> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(2008..=2010i64);
            assert!((2008..=2010).contains(&v));
            let u = rng.random_range(0..7usize);
            assert!(u < 7);
            let f = rng.random_range(0.0..2_000.0);
            assert!((0.0..2_000.0).contains(&f));
        }
    }

    #[test]
    fn untyped_literals_infer_like_real_rand() {
        let mut rng = StdRng::seed_from_u64(3);
        // Output type driven by the comparison, not integer fallback.
        let flag = rng.random_range(0..100) < i64::from(30u8);
        let _ = flag;
        // Float literal falls back to f64 and supports method calls.
        let cost = rng.random_range(0.0..2_000.0);
        let rounded = (cost * 100.0).round() / 100.0;
        assert!((0.0..2_000.0).contains(&rounded));
    }

    #[test]
    fn distribution_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
