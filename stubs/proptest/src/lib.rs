//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! Functional property testing: each `proptest!` test runs `cases`
//! deterministic pseudo-random inputs drawn from real strategies (integer
//! and float ranges, regex-subset strings, tuples, vectors, unions,
//! `Just`, `any`, `prop_map`, `sample::select`). Shrinking and failure
//! persistence are intentionally absent — a failing case panics with the
//! normal assert message.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state threaded through strategies.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically (SplitMix64 expansion, xoshiro256++ stream).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (e.g. `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased branches (`prop_oneof!` backing).
pub struct UnionStrategy<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `&str` literals act as regex-subset strategies producing matching
/// strings. Supported syntax: literal chars, `.`, classes `[a-z0-9_]`
/// (ranges + literals, no negation), and `{n}` / `{n,m}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    // Parse into (alphabet, min, max) atoms, then sample each.
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Vec<char>, u32, u32)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {n} / {n,m} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                None => {
                    let n: u32 = body.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        atoms.push((alphabet, min, max));
    }
    let mut out = String::new();
    for (alphabet, min, max) in atoms {
        if alphabet.is_empty() {
            continue;
        }
        let count = min + rng.below((max - min + 1) as u64) as u32;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of ordinary magnitudes and a few special values.
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MAX,
            3 => f64::MIN,
            _ => (rng.unit_f64() - 0.5) * 2e9,
        }
    }
}

/// Strategy wrapper produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<i64>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait VecSize {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl VecSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.next_u64() as usize % (self.end - self.start)
        }
    }

    /// Strategy for vectors of `element` values with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn VecSize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Build a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl VecSize + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }
}

/// Strategies that sample from explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select over empty list");
            self.0[rng.next_u64() as usize % self.0.len()].clone()
        }
    }

    /// Choose uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic seed derived from the test name so cases
                // differ between properties but repeat across runs.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    __seed = (__seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                let mut __rng = $crate::TestRng::seed_from_u64(__seed);
                for __case in 0..config.cases {
                    let ($($arg,)+) = (
                        $( $crate::Strategy::generate(&$strat, &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::UnionStrategy(vec![
            $( $crate::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Property assertion (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (no shrinking: behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_label() -> impl Strategy<Value = &'static str> {
        prop::sample::select(vec!["a", "b", "c"])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(xs in prop::collection::vec((0i64..5, -3i64..3), 1..20), k in 0u8..4) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in &xs {
                prop_assert!((0..5).contains(a));
                prop_assert!((-3..3).contains(b));
            }
            prop_assert!(k < 4);
        }

        #[test]
        fn regex_subset_strings(s in "[a-z][a-z0-9_]{0,8}", t in ".{0,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 9);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.len() <= 12);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn oneof_maps_and_selects(v in prop_oneof![
            (-100i64..100).prop_map(|i| i.to_string()),
            Just(String::new()),
        ], label in arb_label()) {
            prop_assert!(v.is_empty() || v.parse::<i64>().is_ok());
            prop_assert!(["a", "b", "c"].contains(&label));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        let s = "[a-z]{3}";
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }

    use crate::{Strategy, TestRng};
}
