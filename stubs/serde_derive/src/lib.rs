//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for the shapes this workspace uses — braced structs with named fields,
//! and enums with unit, newtype, and struct variants. Supported attributes:
//! `#[serde(skip)]` on fields and `#[serde(tag = "...", rename_all =
//! "snake_case")]` on enums (internally tagged representation).
//!
//! The generated code targets the companion `serde` shim's `Content` tree
//! and follows serde's JSON conventions. Hand-rolled over
//! `proc_macro::TokenStream`; no `syn`/`quote`, since the offline
//! container has neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        tag: Option<String>,
        snake_case: bool,
        variants: Vec<Variant>,
    },
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Tokens of one `#[serde(...)]` attribute body, flattened to strings.
fn serde_attr_tokens(tokens: &[TokenTree], i: usize) -> Option<Vec<String>> {
    // Expect `#` `[serde(...)]`.
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match (inner.first(), inner.get(1)) {
                (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
                    if id.to_string() == "serde" =>
                {
                    Some(args.stream().into_iter().map(|t| t.to_string()).collect())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

struct AttrInfo {
    skip: bool,
    tag: Option<String>,
    snake_case: bool,
}

/// Advance past attributes and visibility, collecting serde directives.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize, info: &mut AttrInfo) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(args) = serde_attr_tokens(tokens, i) {
                    for (j, tok) in args.iter().enumerate() {
                        match tok.as_str() {
                            "skip" => info.skip = true,
                            "tag" => {
                                if let Some(lit) = args.get(j + 2) {
                                    info.tag = Some(lit.trim_matches('"').to_string());
                                }
                            }
                            "rename_all" => {
                                if args.get(j + 2).map(String::as_str) == Some("\"snake_case\"") {
                                    info.snake_case = true;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Walk the item tokens to find `struct`/`enum`, its name, and its body.
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut container = AttrInfo {
        skip: false,
        tag: None,
        snake_case: false,
    };
    let mut i = 0;
    let mut kind = None;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i, &mut container);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => break,
        }
    }
    let kind = kind.ok_or("derive input is not a struct or enum")?;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive shim does not support generics on {name}"));
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => return Err(format!("missing braced body for {name}")),
        }
    };
    if kind == "struct" {
        Ok(Shape::Struct {
            name,
            fields: parse_fields(body)?,
        })
    } else {
        Ok(Shape::Enum {
            name,
            tag: container.tag,
            snake_case: container.snake_case,
            variants: parse_enum_variants(body)?,
        })
    }
}

/// Named fields of a braced struct or struct variant; types are skipped
/// with angle-bracket depth tracking so `BTreeMap<K, V>` commas don't
/// split fields.
fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut info = AttrInfo {
            skip: false,
            tag: None,
            snake_case: false,
        };
        i = skip_attrs_and_vis(&tokens, i, &mut info);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("unexpected token in field list: {t}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field {field}")),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name: field,
            skip: info.skip,
        });
    }
    Ok(fields)
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut info = AttrInfo {
            skip: false,
            tag: None,
            snake_case: false,
        };
        i = skip_attrs_and_vis(&tokens, i, &mut info);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("unexpected token in enum body: {t}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            Some(t) => return Err(format!("expected `,` after variant, got {t}")),
        }
    }
    Ok(variants)
}

fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_tag(v: &Variant, snake_case: bool) -> String {
    if snake_case {
        snake(&v.name)
    } else {
        v.name.clone()
    }
}

/// `vec![(key, value), ...]` source for a list of serialized fields.
fn fields_to_entries(fields: &[Field], access: &str) -> String {
    let mut out = String::from("vec![");
    for f in fields.iter().filter(|f| !f.skip) {
        let name = &f.name;
        let _ = write!(
            out,
            "({name:?}.to_string(), ::serde::Serialize::to_content({access}{name})),"
        );
    }
    out.push(']');
    out
}

/// Field initializers reading from an `entries`/`field` lookup in scope.
fn fields_from_entries(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let name = &f.name;
        if f.skip {
            let _ = write!(out, "{name}: ::std::default::Default::default(),\n");
        } else {
            let _ = write!(
                out,
                "{name}: ::serde::Deserialize::from_content(\
                 field({name:?}).unwrap_or(&::serde::Content::Null))?,\n"
            );
        }
    }
    out
}

const FIELD_LOOKUP: &str =
    "let field = |k: &str| entries.iter().find(|(n, _)| n == k).map(|(_, v)| v);\n";

fn gen_serialize(shape: &Shape) -> String {
    let mut out = String::new();
    match shape {
        Shape::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map({})\n}}\n}}\n",
                fields_to_entries(fields, "&self.")
            );
        }
        Shape::Enum {
            name,
            tag,
            snake_case,
            variants,
        } => {
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n"
            );
            for v in variants {
                let label = variant_tag(v, *snake_case);
                match (&v.kind, tag) {
                    (VariantKind::Unit, None) => {
                        let _ = write!(
                            out,
                            "{name}::{v} => ::serde::Content::Str({label:?}.to_string()),\n",
                            v = v.name
                        );
                    }
                    (VariantKind::Unit, Some(tag)) => {
                        let _ = write!(
                            out,
                            "{name}::{v} => ::serde::Content::Map(vec![\
                             ({tag:?}.to_string(), ::serde::Content::Str({label:?}.to_string()))]),\n",
                            v = v.name
                        );
                    }
                    (VariantKind::Newtype, None) => {
                        let _ = write!(
                            out,
                            "{name}::{v}(x) => ::serde::Content::Map(vec![({label:?}.to_string(), \
                             ::serde::Serialize::to_content(x))]),\n",
                            v = v.name
                        );
                    }
                    (VariantKind::Newtype, Some(_)) => {
                        out = format!(
                            "newtype variant {}::{} cannot be internally tagged",
                            name, v.name
                        );
                        return format!("compile_error!({out:?});");
                    }
                    (VariantKind::Struct(fields), None) => {
                        let pats: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.clone())
                            .collect();
                        let _ = write!(
                            out,
                            "{name}::{v} {{ {pat} .. }} => ::serde::Content::Map(vec![\
                             ({label:?}.to_string(), ::serde::Content::Map({entries}))]),\n",
                            v = v.name,
                            pat = pats.iter().fold(String::new(), |mut s, p| {
                                let _ = write!(s, "{p}, ");
                                s
                            }),
                            entries = fields_to_entries(fields, "")
                        );
                    }
                    (VariantKind::Struct(fields), Some(tag)) => {
                        let pats: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.clone())
                            .collect();
                        let mut entries = format!(
                            "{{ let mut m = vec![({tag:?}.to_string(), \
                             ::serde::Content::Str({label:?}.to_string()))]; \
                             m.extend({}); m }}",
                            fields_to_entries(fields, "")
                        );
                        entries = format!("::serde::Content::Map({entries})");
                        let _ = write!(
                            out,
                            "{name}::{v} {{ {pat} .. }} => {entries},\n",
                            v = v.name,
                            pat = pats.iter().fold(String::new(), |mut s, p| {
                                let _ = write!(s, "{p}, ");
                                s
                            })
                        );
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn gen_deserialize(shape: &Shape) -> String {
    let mut out = String::new();
    match shape {
        Shape::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 let entries = match content {{\n\
                 ::serde::Content::Map(m) => m,\n\
                 other => return Err(::serde::Error::custom(\
                 format!(\"expected map for {name}, got {{other:?}}\"))),\n\
                 }};\n\
                 {FIELD_LOOKUP}\
                 Ok({name} {{\n{inits}}})\n}}\n}}\n",
                inits = fields_from_entries(fields)
            );
        }
        Shape::Enum {
            name,
            tag,
            snake_case,
            variants,
        } => match tag {
            Some(tag) => gen_deserialize_tagged(&mut out, name, tag, *snake_case, variants),
            None => gen_deserialize_external(&mut out, name, *snake_case, variants),
        },
    }
    out
}

/// Externally tagged: `"Variant"`, `{"Variant": inner}`, or
/// `{"Variant": {fields}}`.
fn gen_deserialize_external(out: &mut String, name: &str, snake_case: bool, variants: &[Variant]) {
    let _ = write!(
        out,
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(content: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         match content {{\n\
         ::serde::Content::Str(s) => match s.as_str() {{\n"
    );
    for v in variants.iter().filter(|v| matches!(v.kind, VariantKind::Unit)) {
        let label = variant_tag(v, snake_case);
        let _ = write!(out, "{label:?} => Ok({name}::{v}),\n", v = v.name);
    }
    let _ = write!(
        out,
        "other => Err(::serde::Error::custom(\
         format!(\"unknown {name} variant {{other}}\"))),\n\
         }},\n\
         ::serde::Content::Map(m) if m.len() == 1 => match m[0].0.as_str() {{\n"
    );
    for v in variants {
        let label = variant_tag(v, snake_case);
        match &v.kind {
            VariantKind::Unit => {}
            VariantKind::Newtype => {
                let _ = write!(
                    out,
                    "{label:?} => Ok({name}::{v}(::serde::Deserialize::from_content(&m[0].1)?)),\n",
                    v = v.name
                );
            }
            VariantKind::Struct(fields) => {
                let _ = write!(
                    out,
                    "{label:?} => {{\n\
                     let entries = match &m[0].1 {{\n\
                     ::serde::Content::Map(f) => f,\n\
                     other => return Err(::serde::Error::custom(\
                     format!(\"expected map for {name}::{v}, got {{other:?}}\"))),\n\
                     }};\n\
                     {FIELD_LOOKUP}\
                     Ok({name}::{v} {{\n{inits}}})\n}}\n",
                    v = v.name,
                    inits = fields_from_entries(fields)
                );
            }
        }
    }
    let _ = write!(
        out,
        "other => Err(::serde::Error::custom(\
         format!(\"unknown {name} variant {{other}}\"))),\n\
         }},\n\
         other => Err(::serde::Error::custom(\
         format!(\"expected {name} variant, got {{other:?}}\"))),\n\
         }}\n}}\n}}\n"
    );
}

/// Internally tagged: `{"<tag>": "variant", fields...}`.
fn gen_deserialize_tagged(
    out: &mut String,
    name: &str,
    tag: &str,
    snake_case: bool,
    variants: &[Variant],
) {
    let _ = write!(
        out,
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(content: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         let entries = match content {{\n\
         ::serde::Content::Map(m) => m,\n\
         other => return Err(::serde::Error::custom(\
         format!(\"expected map for {name}, got {{other:?}}\"))),\n\
         }};\n\
         {FIELD_LOOKUP}\
         let tag_value = match field({tag:?}) {{\n\
         Some(::serde::Content::Str(s)) => s.as_str(),\n\
         _ => return Err(::serde::Error::custom(\
         \"missing {tag} tag for {name}\")),\n\
         }};\n\
         match tag_value {{\n"
    );
    for v in variants {
        let label = variant_tag(v, snake_case);
        match &v.kind {
            VariantKind::Unit => {
                let _ = write!(out, "{label:?} => Ok({name}::{v}),\n", v = v.name);
            }
            VariantKind::Newtype => {
                let _ = write!(
                    out,
                    "{label:?} => Err(::serde::Error::custom(\
                     \"newtype variant {name}::{v} cannot be internally tagged\")),\n",
                    v = v.name
                );
            }
            VariantKind::Struct(fields) => {
                let _ = write!(
                    out,
                    "{label:?} => Ok({name}::{v} {{\n{inits}}}),\n",
                    v = v.name,
                    inits = fields_from_entries(fields)
                );
            }
        }
    }
    let _ = write!(
        out,
        "other => Err(::serde::Error::custom(\
         format!(\"unknown {name} variant {{other}}\"))),\n\
         }}\n}}\n}}\n"
    );
}
