//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! This is a *functional* harness, not a no-op: benchmarks warm up, then
//! take `sample_size` timed samples and report the median ns/iter to
//! stdout, so relative comparisons (ablations, scaling curves) remain
//! meaningful in the offline container. Statistical machinery (outlier
//! analysis, regression detection, HTML reports) is intentionally absent.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_bench(&id.render(None), self.sample_size, self.warm_up_time, self.measurement_time, &mut f);
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Override the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_bench(&id.render(Some(&self.name)), self.sample_size, self.warm_up_time, self.measurement_time, &mut f);
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        run_bench(
            &id.render(Some(&self.name)),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
    }

    /// Close the group (separator line on stdout).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier for one benchmark, optionally carrying a parameter.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id (function name comes from the group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut out = String::new();
        if let Some(g) = group {
            let _ = write!(out, "{g}/");
        }
        if let Some(f) = &self.function {
            let _ = write!(out, "{f}");
        }
        if let Some(p) = &self.parameter {
            if self.function.is_some() {
                let _ = write!(out, "/{p}");
            } else {
                let _ = write!(out, "{p}");
            }
        }
        out
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`, black-boxing its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_one<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    // Calibrate: how many iterations fit one sample's share of the budget?
    let probe = time_one(1, f).max(Duration::from_nanos(20));
    let per_sample = measurement.as_nanos() / sample_size as u128;
    let iters = ((per_sample / probe.as_nanos().max(1)) as u64).clamp(1, 1_000_000);

    // Warm up for roughly the configured duration.
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        time_one(iters.min(16), f);
    }

    let mut samples: Vec<u128> = (0..sample_size)
        .map(|_| time_one(iters, f).as_nanos() / iters as u128)
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!("{label}: median {median} ns/iter ({sample_size} samples x {iters} iters)");
}

/// Define a benchmark group: either positional
/// (`criterion_group!(benches, f1, f2)`) or the keyed form with a custom
/// config (`criterion_group! { name = benches; config = ...; targets = ... }`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        // Just exercise the full path; the work must actually run.
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
