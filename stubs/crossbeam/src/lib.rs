//! Offline shim for the `crossbeam` API surface this workspace uses:
//! `channel::{bounded, Sender, Receiver, TrySendError}` — a multi-producer
//! multi-consumer bounded FIFO built on a `Mutex<VecDeque>` + `Condvar`.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a channel; clonable.
    pub struct Sender<T>(Arc<Shared<T>>);
    /// Receiving half of a channel; clonable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::try_send`]; carries the rejected value.
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// Create a bounded FIFO channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Attempt to enqueue without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.items.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            st.items.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.items.len() < self.0.cap {
                    st.items.push_back(value);
                    drop(st);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until an item arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        /// Attempt to dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.queue.lock().unwrap();
            if let Some(v) = st.items.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_full() {
            let (tx, rx) = bounded::<i32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnects_propagate() {
            let (tx, rx) = bounded::<i32>(1);
            drop(rx);
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
            let (tx2, rx2) = bounded::<i32>(1);
            tx2.try_send(7).unwrap();
            drop(tx2);
            assert_eq!(rx2.recv(), Ok(7));
            assert_eq!(rx2.recv(), Err(RecvError));
        }

        #[test]
        fn workers_drain_shared_receiver() {
            let (tx, rx) = bounded::<usize>(64);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..40 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 40);
        }
    }
}
