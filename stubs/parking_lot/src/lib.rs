//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! [`Mutex`] wraps `std::sync::Mutex` and strips lock poisoning,
//! matching parking_lot's guard-returning (non-`Result`) API.
//!
//! [`RwLock`] is implemented from scratch on a mutex + two condvars
//! rather than wrapping `std::sync::RwLock`, because the workspace
//! depends on parking_lot's `read_recursive` guarantee: a shared
//! acquisition that never blocks behind a *queued* writer, so a thread
//! that already holds a read guard can re-enter without deadlocking
//! against a waiting writer. `std::sync::RwLock` explicitly does not
//! promise that — writer-preferring implementations (musl, macOS,
//! Windows SRW) park the recursive reader behind the queued writer,
//! which then waits on the first read guard forever. The platform's
//! per-tenant migration fence (nested gated calls racing a cutover
//! drain) relies on the real semantics, so the shim provides them on
//! every platform:
//!
//! - [`RwLock::read`] defers to queued writers (parking_lot's fairness,
//!   so a drain cannot be starved by a steady stream of new readers);
//! - [`RwLock::read_recursive`] only waits while a writer *holds* the
//!   lock — if this thread already holds a read guard, no writer can
//!   hold it, so the re-entry always succeeds immediately.
//!
//! Only the types and methods the workspace calls are provided.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::{Condvar, PoisonError};

/// Mutual exclusion primitive; `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader/writer accounting for [`RwLock`]. Guarded by the lock's state
/// mutex; the condvars signal transitions.
struct RwState {
    /// Outstanding read guards (recursive re-entries included).
    readers: usize,
    /// Whether a write guard is outstanding.
    writer: bool,
    /// Writers parked in [`RwLock::write`]. [`RwLock::read`] defers to
    /// them; [`RwLock::read_recursive`] does not.
    waiting_writers: usize,
}

/// Reader-writer lock; `read`/`write` return guards directly. See the
/// module docs for why this is hand-rolled rather than std-backed.
pub struct RwLock<T: ?Sized> {
    state: std::sync::Mutex<RwState>,
    /// Parked readers (both kinds) wait here.
    readers_cv: Condvar,
    /// Parked writers wait here.
    writers_cv: Condvar,
    data: UnsafeCell<T>,
}

// Same bounds std::sync::RwLock has: the lock hands out &T to many
// threads (needs T: Sync) and &mut T / by-value moves (needs T: Send).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            state: std::sync::Mutex::new(RwState {
                readers: 0,
                writer: false,
                waiting_writers: 0,
            }),
            readers_cv: Condvar::new(),
            writers_cv: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn state(&self) -> std::sync::MutexGuard<'_, RwState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire shared access, blocking until available. Defers to queued
    /// writers so a steady stream of readers cannot starve a writer.
    /// Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut s = self.state();
        while s.writer || s.waiting_writers > 0 {
            s = self
                .readers_cv
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
        s.readers += 1;
        drop(s);
        RwLockReadGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    /// Acquire shared access without blocking behind a queued writer:
    /// waits only while a writer *holds* the lock. Safe to call when the
    /// current thread already holds a read guard on this lock (a held
    /// read guard excludes any writer, so the re-entry cannot wait).
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        let mut s = self.state();
        while s.writer {
            s = self
                .readers_cv
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
        s.readers += 1;
        drop(s);
        RwLockReadGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    /// Acquire exclusive access, blocking until every reader and any
    /// prior writer has released. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let mut s = self.state();
        s.waiting_writers += 1;
        while s.writer || s.readers > 0 {
            s = self
                .writers_cv
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
        s.waiting_writers -= 1;
        s.writer = true;
        drop(s);
        RwLockWriteGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let mut s = self.state();
        if s.writer {
            return None;
        }
        s.readers += 1;
        drop(s);
        Some(RwLockReadGuard {
            lock: self,
            _not_send: PhantomData,
        })
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let mut s = self.state();
        if s.writer || s.readers > 0 {
            return None;
        }
        s.writer = true;
        drop(s);
        Some(RwLockWriteGuard {
            lock: self,
            _not_send: PhantomData,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    fn release_read(&self) {
        let mut s = self.state();
        s.readers -= 1;
        if s.readers == 0 && s.waiting_writers > 0 {
            self.writers_cv.notify_one();
        }
    }

    fn release_write(&self) {
        let mut s = self.state();
        s.writer = false;
        let writers_queued = s.waiting_writers > 0;
        drop(s);
        if writers_queued {
            self.writers_cv.notify_one();
        }
        // recursive readers may acquire even past a queued writer, and
        // plain readers must re-check once the queue empties
        self.readers_cv.notify_all();
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    /// `!Send`, matching std and parking_lot guards.
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard counts as an active reader, so no write guard
        // can exist until it drops.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_read();
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    /// `!Send`, matching std and parking_lot guards.
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the guard holds the exclusive slot until it drops.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above, plus &mut self makes the borrow unique.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_write();
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_variants_respect_holders() {
        let l = RwLock::new(0u32);
        let r = l.read();
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_none());
        drop(r);
        let w = l.try_write().unwrap();
        drop(w);
        assert_eq!(*l.read(), 0);
    }

    /// The guarantee the migration fence depends on: with a writer
    /// *queued* (not holding), a thread that already holds a read guard
    /// can re-enter via `read_recursive` — on every platform, not just
    /// reader-preferring glibc. A regression here hangs the test.
    #[test]
    fn read_recursive_is_reentrant_past_a_queued_writer() {
        let l = Arc::new(RwLock::new(0u32));
        let outer = l.read();
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                *l.write() += 1;
            })
        };
        // let the writer park behind the held read guard
        std::thread::sleep(Duration::from_millis(60));
        let inner = l.read_recursive();
        assert_eq!(*inner, 0, "recursive read must see pre-writer state");
        drop(inner);
        drop(outer);
        writer.join().unwrap();
        assert_eq!(*l.read(), 1);
    }

    /// `read()` (unlike `read_recursive`) defers to a queued writer, so
    /// drains cannot be starved by fresh plain readers.
    #[test]
    fn plain_read_defers_to_a_queued_writer() {
        let l = Arc::new(RwLock::new(0u32));
        let outer = l.read();
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                *l.write() += 1;
            })
        };
        std::thread::sleep(Duration::from_millis(60));
        let reader = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || *l.read())
        };
        std::thread::sleep(Duration::from_millis(60));
        drop(outer);
        writer.join().unwrap();
        assert_eq!(
            reader.join().unwrap(),
            1,
            "a plain read that arrived after the writer queued must see its write"
        );
    }

    #[test]
    fn guards_release_on_panic() {
        let l = Arc::new(RwLock::new(0u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("dropped while holding the write guard");
        })
        .join();
        // the lock must not stay wedged
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }
}
