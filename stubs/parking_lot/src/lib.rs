//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching
//! parking_lot's guard-returning (non-`Result`) API. Only the types and
//! methods the workspace calls are provided.

use std::sync::PoisonError;

/// Mutual exclusion primitive; `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock; `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until available. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access, blocking until available. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire shared access without blocking behind a queued writer.
    /// Real parking_lot guarantees this never deadlocks when the same
    /// thread already holds a read guard; this std-backed shim maps it
    /// to `read`, which on Linux (glibc's default reader preference)
    /// carries the same property.
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        self.read()
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
