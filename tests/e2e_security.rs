//! C4 (§3.3 claim): "enterprise-grade security" — authorization enforced
//! at every service boundary, tenant isolation, audit.

use odbis::{OdbisPlatform, PlatformError};
use odbis_delivery::Channel;
use odbis_metadata::DataSet;
use odbis_reporting::{Dashboard, KpiSpec, Widget};
use odbis_sql::QueryResult;
use odbis_tenancy::SubscriptionPlan;

fn boot() -> (OdbisPlatform, String) {
    let p = OdbisPlatform::new();
    p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = p.login("acme", "root", "pw").unwrap();
    p.sql(
        "acme",
        &token,
        "CREATE TABLE sales (region TEXT, amount DOUBLE)",
    )
    .unwrap();
    p.sql("acme", &token, "INSERT INTO sales VALUES ('EU', 10)")
        .unwrap();
    p.define_dataset(
        "acme",
        &token,
        DataSet {
            name: "total".into(),
            source: "warehouse".into(),
            sql: "SELECT SUM(amount) AS total FROM sales".into(),
            description: String::new(),
        },
    )
    .unwrap();
    (p, token)
}

#[test]
fn every_service_boundary_checks_authority() {
    let (p, admin_token) = boot();
    // a plain user: can log in, can do nothing else
    p.create_user("acme", &admin_token, "intern", "pw", "ROLE_USER")
        .unwrap();
    let intern = p.login("acme", "intern", "pw").unwrap();

    let denied = |r: Result<(), PlatformError>| {
        assert!(
            matches!(r, Err(PlatformError::Security(_))),
            "expected denial"
        );
    };
    denied(p.sql("acme", &intern, "SELECT 1").map(drop));
    denied(p.execute_dataset("acme", &intern, "total").map(drop));
    denied(
        p.define_dataset(
            "acme",
            &intern,
            DataSet {
                name: "x".into(),
                source: "warehouse".into(),
                sql: "SELECT 1".into(),
                description: String::new(),
            },
        )
        .map(drop),
    );
    denied(
        p.run_etl(
            "acme",
            &intern,
            &odbis_etl::EtlJob {
                name: "j".into(),
                extractor: odbis_etl::Extractor::Csv("a\n1\n".into()),
                transforms: vec![],
                loader: odbis_etl::Loader {
                    table: "t".into(),
                    mode: odbis_etl::LoadMode::Append,
                },
            },
        )
        .map(drop),
    );
    denied(p.mdx("acme", &intern, "SELECT m BY d.l FROM c").map(drop));
    let dash = Dashboard {
        name: "d".into(),
        title: "D".into(),
        rows: vec![vec![Widget::Kpi {
            dataset: "total".into(),
            spec: KpiSpec {
                title: "T".into(),
                value_column: "total".into(),
                unit: String::new(),
            },
        }]],
    };
    denied(p.render_dashboard("acme", &intern, &dash).map(drop));
    let payload = odbis_delivery::ReportPayload {
        title: "t".into(),
        data: QueryResult {
            columns: vec!["a".into()],
            rows: vec![],
            rows_affected: 0,
        },
    };
    denied(
        p.deliver("acme", &intern, "intern", "r", Channel::Email, &payload)
            .map(drop),
    );
    denied(p.create_dw_project("acme", &intern, "proj").map(drop));
    // every denial was audited
    let realm = p.admin.registry().realm("acme").unwrap();
    let audit = realm.audit_log();
    assert!(
        audit.iter().filter(|e| e.kind == "ACCESS_DENIED").count() >= 8,
        "denials must be audited"
    );
}

#[test]
fn analyst_can_view_but_not_design() {
    let (p, admin_token) = boot();
    p.create_user("acme", &admin_token, "ana", "pw", "ROLE_ANALYST")
        .unwrap();
    let ana = p.login("acme", "ana", "pw").unwrap();
    // analysts run datasets and view dashboards
    let r = p.execute_dataset("acme", &ana, "total").unwrap();
    assert_eq!(r.rows[0][0], odbis_storage::Value::Float(10.0));
    // ...but cannot run DDL or ETL
    assert!(p.sql("acme", &ana, "DROP TABLE sales").is_err());
}

#[test]
fn sessions_expire_and_logout_works() {
    let (p, _token) = boot();
    let realm = p.admin.registry().realm("acme").unwrap();
    let session = realm.login("root", "pw").unwrap();
    realm.logout(&session.token);
    assert!(matches!(
        p.sql("acme", &session.token, "SELECT 1"),
        Err(PlatformError::Security(_))
    ));
}

#[test]
fn tokens_do_not_cross_tenants() {
    let (p, acme_token) = boot();
    p.provision_tenant("rival", "Rival", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    // acme's perfectly valid token is useless against rival
    assert!(matches!(
        p.sql("rival", &acme_token, "SELECT 1"),
        Err(PlatformError::Security(_))
    ));
}

#[test]
fn password_hashes_are_salted_per_user() {
    use odbis_security::SecurityManager;
    let sm = SecurityManager::new();
    sm.create_user("a", "same-password").unwrap();
    sm.create_user("b", "same-password").unwrap();
    // identical passwords, different users → both log in, and a wrong
    // password fails for both (hash table cannot be shared)
    assert!(sm.login("a", "same-password").is_ok());
    assert!(sm.login("b", "same-password").is_ok());
    assert!(sm.login("a", "other").is_err());
}
