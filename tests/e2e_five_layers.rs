//! E1 (Figure 1): one request traverses all five layers of the ODBIS SaaS
//! architecture — end-user access (HTTP) → information delivery → core BI
//! services → administration/configuration → technical resources.

use std::sync::Arc;

use odbis::{build_router, OdbisPlatform};
use odbis_metadata::DataSet;
use odbis_tenancy::{ServiceKind, SubscriptionPlan};
use odbis_web::{http_request, HttpServer};

fn auth_get(addr: &str, path: &str, token: &str) -> (u16, String) {
    let (status, _, body) = http_request(
        addr,
        "GET",
        path,
        &[("x-tenant", "clinic"), ("x-token", token)],
        b"",
    )
    .unwrap();
    (status, body)
}

fn auth_post(addr: &str, path: &str, token: &str, body: &str) -> (u16, String) {
    let (status, _, resp) = http_request(
        addr,
        "POST",
        path,
        &[("x-tenant", "clinic"), ("x-token", token)],
        body.as_bytes(),
    )
    .unwrap();
    (status, resp)
}

#[test]
fn request_traverses_all_five_layers() {
    // layer 3 (administration): provision the tenant with its realm
    let platform = Arc::new(OdbisPlatform::new());
    platform
        .provision_tenant(
            "clinic",
            "City Clinic",
            SubscriptionPlan::standard(),
            "cio",
            "pw",
        )
        .unwrap();

    // layer 5 (end-user access): a real HTTP server on loopback
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4).unwrap();
    let addr = server.addr().to_string();

    // login over the wire
    let (status, body) = odbis_web::http_post(&addr, "/login", "clinic cio pw").unwrap();
    assert_eq!(status, 200);
    let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
        .as_str()
        .unwrap()
        .to_string();

    // layer 1 (technical resources): DDL+DML land in the storage engine
    let (status, _) = auth_post(
        &addr,
        "/sql",
        &token,
        "CREATE TABLE admissions (dept TEXT, cost DOUBLE)",
    );
    assert_eq!(status, 200);
    let (status, _) = auth_post(
        &addr,
        "/sql",
        &token,
        "INSERT INTO admissions VALUES ('Cardiology', 1200), ('Oncology', 3400), ('Cardiology', 800)",
    );
    assert_eq!(status, 200);

    // layer 4 (core BI services): MDS data set defined and executed
    platform
        .define_dataset(
            "clinic",
            &token,
            DataSet {
                name: "cost_by_dept".into(),
                source: "warehouse".into(),
                sql: "SELECT dept, SUM(cost) AS total FROM admissions GROUP BY dept ORDER BY dept"
                    .into(),
                description: "cost per department".into(),
            },
        )
        .unwrap();
    let (status, body) = auth_get(&addr, "/datasets/cost_by_dept", &token);
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["rows"][0][0], "Cardiology");
    assert_eq!(v["rows"][0][1], "2000.0");

    // layer 3 again: the calls above were metered for pay-as-you-go
    let mds_units = platform
        .admin
        .meter()
        .usage("clinic", ServiceKind::Metadata);
    assert!(mds_units > 0, "usage must be metered");
    let (status, usage) = auth_get(&addr, "/admin/usage", &token);
    assert_eq!(status, 200);
    assert!(usage.contains("clinic"));

    // unauthorized access is rejected at the boundary (layer 3 security)
    let (status, _) = auth_get(&addr, "/datasets/cost_by_dept", "forged-token");
    assert_eq!(status, 403);

    assert!(server.requests_served() >= 5);
    server.shutdown();
}

#[test]
fn five_tenants_share_one_platform_instance() {
    let platform = Arc::new(OdbisPlatform::new());
    let mut tokens = Vec::new();
    for i in 0..5 {
        let id = format!("t{i}");
        platform
            .provision_tenant(
                &id,
                &format!("Tenant {i}"),
                SubscriptionPlan::free(),
                "adm",
                "pw",
            )
            .unwrap();
        let token = platform.login(&id, "adm", "pw").unwrap();
        platform
            .sql(&id, &token, "CREATE TABLE private (secret TEXT)")
            .unwrap();
        platform
            .sql(
                &id,
                &token,
                &format!("INSERT INTO private VALUES ('tenant-{i}')"),
            )
            .unwrap();
        tokens.push((id, token));
    }
    // every tenant sees exactly its own row
    for (id, token) in &tokens {
        let r = platform
            .sql(id, token, "SELECT secret FROM private")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].render(), format!("tenant-{}", &id[1..]));
    }
    // one billing run covers all tenants
    let invoices = platform.admin.billing_run();
    assert_eq!(invoices.len(), 5);
}
