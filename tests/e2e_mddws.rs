//! E2/E3 (Figures 2 & 3): the MDDWS layers and the 2TUP/MDA layer
//! construction, executed end to end — business model in, deployed and
//! queryable warehouse out, with trace links and process milestones.

use std::sync::Arc;

use odbis_mddws::{cim_metamodel, DwLayer, DwProject, Viewpoint};
use odbis_metamodel::{AttrValue, ModelRepository};
use odbis_sql::Engine;
use odbis_storage::Database;

fn retail_bcim() -> ModelRepository {
    let mut repo = ModelRepository::new("retail-bcim", cim_metamodel());
    let amount = repo
        .create(
            "BusinessProperty",
            vec![("name", "amount".into()), ("valueType", "NUMBER".into())],
        )
        .unwrap();
    let day = repo
        .create(
            "BusinessProperty",
            vec![("name", "sale_day".into()), ("valueType", "DATE".into())],
        )
        .unwrap();
    let store_name = repo
        .create(
            "BusinessProperty",
            vec![("name", "store_name".into()), ("valueType", "TEXT".into())],
        )
        .unwrap();
    let fact = repo
        .create(
            "BusinessConcept",
            vec![
                ("name", "sale".into()),
                ("kind", "FACT".into()),
                ("properties", AttrValue::RefList(vec![amount, day])),
            ],
        )
        .unwrap();
    repo.create(
        "BusinessConcept",
        vec![
            ("name", "store".into()),
            ("kind", "DIMENSION".into()),
            ("properties", AttrValue::RefList(vec![store_name])),
        ],
    )
    .unwrap();
    repo.create(
        "BusinessGoal",
        vec![
            ("name", "grow_same_store_sales".into()),
            ("measuredBy", AttrValue::RefList(vec![fact])),
        ],
    )
    .unwrap();
    repo
}

#[test]
fn figure3_pipeline_business_model_to_queryable_warehouse() {
    let mut project = DwProject::new("retail-dw");
    let warehouse = Arc::new(Database::new());

    // the Figure 3 iteration, step by step (not the one-call helper, so
    // each milestone is observable)
    project.begin_layer(DwLayer::Warehouse).unwrap();
    project
        .process_mut()
        .log_risk(DwLayer::Warehouse, "store master data is incomplete", 3)
        .unwrap();
    project
        .submit_bcim(DwLayer::Warehouse, retail_bcim())
        .unwrap();
    let pim_objects = project.derive_pim(DwLayer::Warehouse).unwrap();
    assert!(pim_objects >= 5); // 2 tables + 3 columns (+ schema)
    let psm_objects = project
        .derive_psm(DwLayer::Warehouse, "ODBIS-STORAGE")
        .unwrap();
    assert!(psm_objects >= 5);
    let ddl_count = project.generate_code(DwLayer::Warehouse).unwrap().ddl.len();
    assert_eq!(ddl_count, 2);
    project.test_code(DwLayer::Warehouse).unwrap();
    let created = project
        .deploy_layer(DwLayer::Warehouse, &warehouse)
        .unwrap();
    assert_eq!(created, vec!["dim_store", "fact_sale"]);

    // milestone: the iteration is complete
    let iter = project.process().iteration(DwLayer::Warehouse).unwrap();
    assert!(iter.is_done());
    assert_eq!(iter.risks().len(), 1);
    assert!(iter.artifact(Viewpoint::Pim).is_some());
    assert!(iter.artifact(Viewpoint::Psm).is_some());

    // trace completeness: every BCIM object maps into the PIM
    let bcim = project
        .model(DwLayer::Warehouse, Viewpoint::BusinessCim)
        .unwrap();
    for obj in bcim.objects() {
        assert!(
            project.traces().iter().any(|t| t.source == obj.id),
            "BCIM object {} has no trace",
            obj.id
        );
    }

    // the deployed warehouse is immediately usable by the platform's SQL
    let engine = Engine::new();
    engine
        .execute(
            &warehouse,
            "INSERT INTO fact_sale (amount, sale_day) VALUES (19.99, DATE '2010-03-22')",
        )
        .unwrap();
    let r = engine
        .execute(&warehouse, "SELECT SUM(amount) FROM fact_sale")
        .unwrap();
    assert_eq!(r.rows[0][0], odbis_storage::Value::Float(19.99));
}

#[test]
fn model_interchange_round_trip_between_design_sessions() {
    // Figure 2's design layer: a model designed in one session is
    // serialized via XMI and continued in another.
    let bcim = retail_bcim();
    let xmi = odbis_metamodel::export_repository(&bcim).unwrap();
    let reloaded = odbis_metamodel::import_repository(&xmi).unwrap();
    let mut project = DwProject::new("resumed");
    let db = Arc::new(Database::new());
    let created = project
        .run_layer_pipeline(DwLayer::Warehouse, reloaded, "ODBIS-STORAGE", &db)
        .unwrap();
    assert_eq!(created.len(), 2);
}

#[test]
fn process_blocks_realization_before_design_inputs_exist() {
    let mut project = DwProject::new("strict");
    project.begin_layer(DwLayer::Mart).unwrap();
    // deriving a PIM before any BCIM exists is a process violation
    assert!(project.derive_pim(DwLayer::Mart).is_err());
    // jumping straight to code generation too
    assert!(project.generate_code(DwLayer::Mart).is_err());
}
