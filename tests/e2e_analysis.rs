//! Analysis-service end-to-end: cube navigation over a generated
//! warehouse, and the data-mining API slot (k-means, regression,
//! association rules) fed from cube/SQL output.

use std::sync::Arc;

use odbis_bench::workloads;
use odbis_olap::{
    mining, Aggregator, CubeDef, CubeEngine, CubeView, DimensionDef, LevelDef, LevelRef, MeasureDef,
};
use odbis_sql::Engine;

fn admissions_cube() -> CubeDef {
    CubeDef {
        name: "admissions".into(),
        fact_table: "fact_admission".into(),
        dimensions: vec![
            DimensionDef {
                name: "department".into(),
                table: Some("dim_department".into()),
                fact_fk: "dept_id".into(),
                dim_key: "dept_id".into(),
                levels: vec![LevelDef {
                    name: "name".into(),
                    column: "name".into(),
                }],
            },
            DimensionDef {
                name: "time".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![
                    LevelDef {
                        name: "year".into(),
                        column: "year".into(),
                    },
                    LevelDef {
                        name: "month".into(),
                        column: "month".into(),
                    },
                ],
            },
        ],
        measures: vec![MeasureDef {
            name: "cost".into(),
            column: "cost".into(),
            aggregator: Aggregator::Sum,
        }],
    }
}

#[test]
fn navigation_preserves_totals_across_granularities() {
    let db = Arc::new(workloads::healthcare_db(5_000, 11));
    let engine = Arc::new(CubeEngine::new(Arc::clone(&db)));
    let cube = admissions_cube();
    cube.validate(&db).unwrap();
    let mut view = CubeView::new(
        Arc::clone(&engine),
        cube,
        vec![LevelRef::new("time", "year")],
        vec!["cost".into()],
    );
    let total = |cells: &odbis_olap::CellSet| -> f64 {
        cells
            .cells
            .iter()
            .map(|(_, m)| m[0].as_f64().unwrap_or(0.0))
            .sum()
    };
    let by_year = view.cells().unwrap();
    view.drill_down("time").unwrap(); // year -> month
    let by_month = view.cells().unwrap();
    assert!(by_month.len() > by_year.len());
    assert!((total(&by_year) - total(&by_month)).abs() < 1e-6 * total(&by_year).abs());
    // grand total matches raw SQL
    let sql = Engine::new()
        .execute(&db, "SELECT SUM(cost) FROM fact_admission")
        .unwrap();
    assert!((total(&by_year) - sql.rows[0][0].as_f64().unwrap()).abs() < 1e-6);
}

#[test]
fn kmeans_clusters_departments_by_cost_profile() {
    let db = Arc::new(workloads::healthcare_db(8_000, 13));
    // feature vector per department: (avg cost, avg stay)
    let r = Engine::new()
        .execute(
            &db,
            "SELECT dept_id, AVG(cost) AS avg_cost, AVG(stay_days) AS avg_stay \
             FROM fact_admission GROUP BY dept_id ORDER BY dept_id",
        )
        .unwrap();
    let points: Vec<Vec<f64>> = r
        .rows
        .iter()
        .map(|row| vec![row[1].as_f64().unwrap() / 1000.0, row[2].as_f64().unwrap()])
        .collect();
    let result = mining::kmeans(&points, 2, 100, 7).unwrap();
    assert_eq!(result.assignments.len(), 6);
    assert_eq!(result.centroids.len(), 2);
    // the workload skews cost by department id, so cheap and expensive
    // departments must not all land in one cluster
    let first = result.assignments[0];
    assert!(result.assignments.iter().any(|&a| a != first));
    // determinism
    let again = mining::kmeans(&points, 2, 100, 7).unwrap();
    assert_eq!(result.assignments, again.assignments);
}

#[test]
fn regression_finds_cost_trend_over_departments() {
    let db = Arc::new(workloads::healthcare_db(8_000, 17));
    let r = Engine::new()
        .execute(
            &db,
            "SELECT dept_id, AVG(cost) FROM fact_admission GROUP BY dept_id ORDER BY dept_id",
        )
        .unwrap();
    let points: Vec<(f64, f64)> = r
        .rows
        .iter()
        .map(|row| (row[0].as_f64().unwrap(), row[1].as_f64().unwrap()))
        .collect();
    let reg = mining::linear_regression(&points).unwrap();
    // the generator gives each department id a +400 base-cost step
    assert!(
        (reg.slope - 400.0).abs() < 60.0,
        "slope {} should recover the ~400/dept cost gradient",
        reg.slope
    );
    assert!(reg.r_squared > 0.9);
}

#[test]
fn association_rules_on_department_visit_baskets() {
    // baskets: departments visited together in a synthetic month
    let tx: Vec<Vec<String>> = vec![
        vec!["Cardiology".into(), "Emergency".into()],
        vec!["Cardiology".into(), "Emergency".into(), "Neurology".into()],
        vec!["Cardiology".into(), "Emergency".into()],
        vec!["Oncology".into(), "Pediatrics".into()],
        vec!["Cardiology".into(), "Emergency".into(), "Oncology".into()],
        vec!["Emergency".into()],
    ];
    let rules = mining::association_rules(&tx, 0.5, 0.9).unwrap();
    let rule = rules
        .iter()
        .find(|r| r.antecedent == vec!["Cardiology".to_string()])
        .expect("Cardiology -> Emergency rule");
    assert_eq!(rule.consequent, "Emergency");
    assert!((rule.confidence - 1.0).abs() < 1e-9);
}
