//! Seeded platform-level chaos suite: randomized multi-tenant workloads
//! run against the durable platform while failpoints inject storage,
//! checkpoint and socket faults, with a crash (drop) + recovery (reopen)
//! between rounds. Five invariants are asserted throughout:
//!
//! 1. **No committed write is lost** — every SQL write the platform
//!    acknowledged with `Ok` is present after recovery.
//! 2. **Snapshots are never torn** — recovery always succeeds, under
//!    snapshot-write, snapshot-rename and WAL-reset faults included.
//! 3. **Per-tenant isolation** — one tenant's faults never corrupt or leak
//!    into another tenant's data.
//! 4. **Usage metering is monotonic** — metered units never decrease,
//!    fault or no fault.
//! 5. **Every client-visible failure is structured** — HTTP errors are
//!    `{"error":{kind,message}}` envelopes; transient storage failures map
//!    to 503 with `Retry-After`.
//!
//! Each test prints its seed; rerun a failure with
//! `ODBIS_CHAOS_SEED=<seed> cargo test --test chaos`. The WAL-internal
//! fault matrix (torn tails, recovery-under-fault, the repair teeth test)
//! lives in `crates/storage/tests/chaos_wal.rs`; this suite exercises the
//! same sites through the full platform and HTTP stack.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use odbis::{build_router, OdbisPlatform};
use odbis_storage::Value;
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_get, http_request, HttpServer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// ------------------------------------------------------------------ helpers

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "odbis-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seed() -> u64 {
    std::env::var("ODBIS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0DB15C4A05)
}

const TENANTS: [&str; 2] = ["acme", "globex"];
/// Disjoint pk ranges per tenant so cross-tenant leakage is detectable.
const PK_BASE: [i64; 2] = [0, 1_000_000];

/// Boot (or reboot) the durable platform on `dir` and log both tenants in.
fn boot(dir: &std::path::Path) -> (OdbisPlatform, [String; 2]) {
    let p = OdbisPlatform::with_data_dir(dir.to_path_buf());
    let mut tokens = Vec::new();
    for t in TENANTS {
        p.provision_tenant(t, t, SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        tokens.push(p.login(t, "root", "pw").unwrap());
    }
    (p, tokens.try_into().unwrap())
}

/// The ids currently visible in tenant `i`'s table `t`.
fn present_ids(p: &OdbisPlatform, i: usize, token: &str) -> BTreeSet<i64> {
    match p.sql(TENANTS[i], token, "SELECT id FROM t") {
        Ok(result) => result
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Int(v) => *v,
                other => panic!("non-int id: {other:?}"),
            })
            .collect(),
        // table missing means nothing committed yet
        Err(_) => BTreeSet::new(),
    }
}

/// Total metered units for a tenant across all services.
fn units_for(p: &OdbisPlatform, tenant: &str) -> u64 {
    p.admin
        .usage_report()
        .iter()
        .filter(|l| l.tenant == tenant)
        .map(|l| l.units)
        .sum()
}

/// Run `rounds` boot → randomized-workload → crash cycles under
/// `policy_spec` (a `{r}` placeholder is replaced with a fresh per-round
/// seed so probabilistic sites don't replay one trigger pattern), then
/// verify the invariants on a final clean recovery.
///
/// The shadow model mirrors the WAL-level suite: acknowledged writes are
/// committed to the shadow set; the single op that errors before a tenant
/// wedges is *pending* — its commit point is ambiguous (an fsync fault
/// leaves the frame durable, a write fault leaves nothing) — and is
/// resolved by observing what recovery actually produced.
fn run_platform_case(case: &str, policy_spec: &str, rounds: usize, seed: u64) {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    eprintln!("chaos case {case} seed={seed} (rerun: ODBIS_CHAOS_SEED={seed})");
    let dir = tmp_dir(case);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut shadow: [BTreeSet<i64>; 2] = [BTreeSet::new(), BTreeSet::new()];
    let mut pending: [Option<i64>; 2] = [None, None];
    let mut next: [i64; 2] = PK_BASE;

    for round in 0..rounds {
        let (p, tokens) = boot(&dir);

        for i in 0..2 {
            // invariant 2: recovery itself succeeded (boot didn't panic,
            // the table reads back) even after snapshot/WAL faults
            let got = present_ids(&p, i, &tokens[i]);
            // resolve the ambiguous op from the previous crash
            if let Some(pk) = pending[i].take() {
                if got.contains(&pk) {
                    shadow[i].insert(pk);
                }
            }
            // invariant 1 + 3: exactly the acknowledged writes survived
            assert_eq!(
                got, shadow[i],
                "round {round}, tenant {}: recovered ids diverge from \
                 acknowledged writes (seed {seed})",
                TENANTS[i]
            );
        }
        if round == 0 {
            for i in 0..2 {
                p.sql(TENANTS[i], &tokens[i], "CREATE TABLE t (id INT, note TEXT)")
                    .unwrap();
            }
        }

        let spec = policy_spec.replace("{r}", &seed.wrapping_add(round as u64).to_string());
        odbis_chaos::apply_spec(&spec).unwrap();

        let mut wedged = [false, false];
        for _ in 0..24 {
            let i = rng.random_range(0..2i64) as usize;
            if wedged[i] {
                continue;
            }
            let before = units_for(&p, TENANTS[i]);
            let pk = next[i];
            next[i] += 1;
            let res = p.sql(
                TENANTS[i],
                &tokens[i],
                &format!("INSERT INTO t VALUES ({pk}, 'x')"),
            );
            // invariant 4: metering never moves backwards, fault or not
            let after = units_for(&p, TENANTS[i]);
            assert!(
                after >= before,
                "metering went backwards for {} ({before} -> {after}, seed {seed})",
                TENANTS[i]
            );
            match res {
                Ok(_) => {
                    shadow[i].insert(pk);
                }
                Err(_) => {
                    // the store may hold a torn tail now — stop writing,
                    // remember the one commit-point-ambiguous op
                    pending[i] = Some(pk);
                    wedged[i] = true;
                }
            }
            // occasional checkpoints exercise snapshot + WAL-reset sites;
            // a failed checkpoint must not change logical state
            if !wedged[i] && rng.random_range(0..6i64) == 0 {
                let _ = p.checkpoint_tenant(TENANTS[i], &tokens[i]);
            }
        }

        // crash: disarm, then drop the platform without checkpointing
        odbis_chaos::clear();
        drop(p);
    }

    // final clean recovery: both shadows intact, tenants fully disjoint
    let (p, tokens) = boot(&dir);
    for i in 0..2 {
        let got = present_ids(&p, i, &tokens[i]);
        if let Some(pk) = pending[i].take() {
            if got.contains(&pk) {
                shadow[i].insert(pk);
            }
        }
        assert_eq!(
            got, shadow[i],
            "final recovery, tenant {}: lost or invented writes (seed {seed})",
            TENANTS[i]
        );
        let (lo, hi) = (PK_BASE[i], PK_BASE[i] + 1_000_000);
        assert!(
            got.iter().all(|pk| (lo..hi).contains(pk)),
            "tenant {} sees ids outside its own range (seed {seed})",
            TENANTS[i]
        );
    }
    assert!(
        shadow[0].len() + shadow[1].len() >= 5,
        "workload acknowledged almost nothing under {policy_spec} (seed {seed})"
    );
}

// --------------------------------------------------------- the fault matrix

#[test]
fn platform_survives_fsync_faults() {
    run_platform_case("fsync", "wal.fsync=err-every-nth(3)", 3, seed());
}

#[test]
fn platform_survives_wal_write_faults() {
    run_platform_case("write", "wal.write=err-every-nth(4)", 3, seed());
}

#[test]
fn platform_survives_torn_wal_tails() {
    run_platform_case("torn", "wal.write.short=err-every-nth(5)", 3, seed());
}

#[test]
fn platform_survives_probabilistic_write_faults() {
    run_platform_case("prob", "wal.write=err-with-prob(0.2,{r})", 3, seed());
}

#[test]
fn platform_survives_snapshot_and_checkpoint_faults() {
    run_platform_case(
        "snap",
        "snapshot.rename=err-every-nth(2);checkpoint.begin=err-every-nth(3);wal.reset=err-every-nth(2)",
        3,
        seed(),
    );
}

/// Heavier sweep for the CI chaos job: the whole matrix under several
/// derived seeds. `cargo test --test chaos -- --ignored`.
#[test]
#[ignore]
fn chaos_platform_sweep_many_seeds() {
    let base = seed();
    for i in 0..4u64 {
        let s = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        run_platform_case("sweep-fsync", "wal.fsync=err-every-nth(3)", 3, s);
        run_platform_case("sweep-prob", "wal.write=err-with-prob(0.3,{r})", 3, s);
        run_platform_case(
            "sweep-compound",
            "wal.fsync=err-every-nth(4);snapshot.rename=err-every-nth(2)",
            3,
            s,
        );
    }
}

// ------------------------------------------------------- HTTP-level chaos

fn auth(
    addr: &str,
    method: &str,
    path: &str,
    token: &str,
    body: &str,
) -> (u16, std::collections::BTreeMap<String, String>, String) {
    let bearer = format!("Bearer {token}");
    http_request(
        addr,
        method,
        path,
        &[("x-tenant", "acme"), ("Authorization", bearer.as_str())],
        body.as_bytes(),
    )
    .unwrap()
}

fn serve_durable(dir: &std::path::Path) -> (HttpServer, Arc<OdbisPlatform>, String) {
    let p = Arc::new(OdbisPlatform::with_data_dir(dir.to_path_buf()));
    p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = p.login("acme", "root", "pw").unwrap();
    let server = HttpServer::start(build_router(Arc::clone(&p)), 2).unwrap();
    (server, p, token)
}

/// Invariant 5: with the WAL faulting underneath, every `/api/v1/sql`
/// response is either a success or a structured 503 `unavailable`
/// envelope carrying `Retry-After` — never a bare 500, never a torn body.
#[test]
fn wedged_store_surfaces_structured_503_envelopes() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let s = seed();
    eprintln!("chaos case http-envelope seed={s}");
    let dir = tmp_dir("http-envelope");
    let (server, p, token) = serve_durable(&dir);
    let addr = server.addr().to_string();
    p.sql("acme", &token, "CREATE TABLE t (id INT, note TEXT)")
        .unwrap();

    odbis_chaos::apply_spec("wal.write=err-every-nth(3)").unwrap();
    let (mut oks, mut unavailable) = (0, 0);
    for pk in 0..12 {
        let (status, headers, body) = auth(
            &addr,
            "POST",
            "/api/v1/sql",
            &token,
            &format!("INSERT INTO t VALUES ({pk}, 'x')"),
        );
        match status {
            200 => oks += 1,
            503 => {
                let v: serde_json::Value = serde_json::from_str(&body)
                    .unwrap_or_else(|e| panic!("503 body is not JSON: {e} ({body})"));
                let err = v.get("error").expect("503 must carry an error envelope");
                assert_eq!(
                    err.get("kind").and_then(|k| k.as_str()),
                    Some("unavailable")
                );
                assert!(!err
                    .get("message")
                    .and_then(|m| m.as_str())
                    .unwrap_or("")
                    .is_empty());
                assert_eq!(
                    headers.get("retry-after").map(String::as_str),
                    Some("1"),
                    "transient failures must advertise Retry-After"
                );
                unavailable += 1;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    odbis_chaos::clear();
    assert!(oks > 0, "no insert ever succeeded");
    assert!(unavailable > 0, "the failpoint never fired");
    server.shutdown();
}

/// Transient checkpoint IO errors are retried behind the scenes (the
/// caller sees success and a bumped retry counter); a persistent fault
/// exhausts the budget and surfaces as a retryable 503 over HTTP.
#[test]
fn checkpoint_retries_transient_io_then_exhausts_to_503() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let dir = tmp_dir("ckpt-retry");
    let (server, p, token) = serve_durable(&dir);
    let addr = server.addr().to_string();
    p.sql("acme", &token, "CREATE TABLE t (id INT, note TEXT)")
        .unwrap();
    p.sql("acme", &token, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        .unwrap();

    // every-2nd check fails: first checkpoint sails through, the second
    // absorbs one transient fault and succeeds on its in-process retry
    let before = odbis_chaos::retry_count("checkpoint");
    odbis_chaos::apply_spec("checkpoint.begin=err-every-nth(2)").unwrap();
    p.checkpoint_tenant("acme", &token).unwrap();
    p.checkpoint_tenant("acme", &token).unwrap();
    // remove (not clear): clear() also zeroes the retry counters under test
    odbis_chaos::remove("checkpoint.begin");
    assert_eq!(
        odbis_chaos::retry_count("checkpoint") - before,
        1,
        "exactly one transient fault should have been retried"
    );

    // a hard fault burns all 3 attempts and maps to 503 + Retry-After
    odbis_chaos::apply_spec("checkpoint.begin=return-err").unwrap();
    let (status, headers, body) = auth(&addr, "POST", "/api/v1/admin/checkpoint", &token, "");
    odbis_chaos::remove("checkpoint.begin");
    assert_eq!(status, 503, "exhausted retries must be 503: {body}");
    assert_eq!(headers.get("retry-after").map(String::as_str), Some("1"));
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str()),
        Some("unavailable")
    );
    assert_eq!(
        odbis_chaos::retry_count("checkpoint") - before,
        3,
        "the exhausted checkpoint should have retried twice more"
    );

    // the store is not poisoned: with the fault gone, checkpoint works
    p.checkpoint_tenant("acme", &token).unwrap();
    odbis_chaos::clear();
    server.shutdown();
}

/// Socket-level faults (accept, read, write) drop individual connections
/// but never kill the server: once disarmed, the very next request is
/// served normally and shutdown still completes.
#[test]
fn socket_faults_drop_connections_but_never_kill_the_server() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let platform = Arc::new(OdbisPlatform::new());
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    for site in ["http.accept", "http.read", "http.write"] {
        odbis_chaos::apply_spec(&format!("{site}=err-every-nth(2)")).unwrap();
        let mut dropped = 0;
        for _ in 0..6 {
            // a faulted connection surfaces as a client-side Err — that is
            // allowed; a 5xx or a hung server is not
            match http_get(&addr, "/api/v1/health") {
                Ok((status, _)) => assert_eq!(status, 200, "{site}"),
                Err(_) => dropped += 1,
            }
        }
        odbis_chaos::clear();
        assert!(dropped > 0, "{site} never dropped a connection");
        let (status, body) = http_get(&addr, "/api/v1/health").unwrap();
        assert_eq!(status, 200, "server wedged after {site} faults: {body}");
    }
    server.shutdown();
}

/// The new chaos telemetry rides the normal metrics scrape: triggered
/// fault counts and retry counts are exported in Prometheus text format.
#[test]
fn failpoint_and_retry_counters_are_scraped() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let platform = Arc::new(OdbisPlatform::new());
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    odbis_chaos::apply_spec("chaos.metrics.probe=return-err").unwrap();
    assert!(odbis_chaos::check("chaos.metrics.probe").is_err());
    odbis_chaos::count_retry("metrics.probe");

    let (status, body) = http_get(&addr, "/api/v1/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("odbis_failpoint_triggered_total{site=\"chaos.metrics.probe\"} 1"),
        "missing failpoint counter:\n{body}"
    );
    assert!(
        body.contains("odbis_retries_total{op=\"metrics.probe\"}"),
        "missing retry counter:\n{body}"
    );
    odbis_chaos::clear();
    server.shutdown();
}
