//! Seeded platform-level chaos suite: randomized multi-tenant workloads
//! run against the durable platform while failpoints inject storage,
//! checkpoint and socket faults, with a crash (drop) + recovery (reopen)
//! between rounds. Five invariants are asserted throughout:
//!
//! 1. **No committed write is lost** — every SQL write the platform
//!    acknowledged with `Ok` is present after recovery.
//! 2. **Snapshots are never torn** — recovery always succeeds, under
//!    snapshot-write, snapshot-rename and WAL-reset faults included.
//! 3. **Per-tenant isolation** — one tenant's faults never corrupt or leak
//!    into another tenant's data.
//! 4. **Usage metering is monotonic** — metered units never decrease,
//!    fault or no fault.
//! 5. **Every client-visible failure is structured** — HTTP errors are
//!    `{"error":{kind,message}}` envelopes; transient storage failures map
//!    to 503 with `Retry-After`.
//!
//! Each test prints its seed; rerun a failure with
//! `ODBIS_CHAOS_SEED=<seed> cargo test --test chaos`. The WAL-internal
//! fault matrix (torn tails, recovery-under-fault, the repair teeth test)
//! lives in `crates/storage/tests/chaos_wal.rs`; this suite exercises the
//! same sites through the full platform and HTTP stack.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use odbis::{build_router, OdbisPlatform};
use odbis_storage::Value;
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_get, http_request, HttpServer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// ------------------------------------------------------------------ helpers

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "odbis-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seed() -> u64 {
    std::env::var("ODBIS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0DB15C4A05)
}

const TENANTS: [&str; 2] = ["acme", "globex"];
/// Disjoint pk ranges per tenant so cross-tenant leakage is detectable.
const PK_BASE: [i64; 2] = [0, 1_000_000];

/// Boot (or reboot) the durable platform on `dir` and log both tenants in.
fn boot(dir: &std::path::Path) -> (OdbisPlatform, [String; 2]) {
    let p = OdbisPlatform::with_data_dir(dir.to_path_buf());
    let mut tokens = Vec::new();
    for t in TENANTS {
        p.provision_tenant(t, t, SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        tokens.push(p.login(t, "root", "pw").unwrap());
    }
    (p, tokens.try_into().unwrap())
}

/// The ids currently visible in tenant `i`'s table `t`.
fn present_ids(p: &OdbisPlatform, i: usize, token: &str) -> BTreeSet<i64> {
    match p.sql(TENANTS[i], token, "SELECT id FROM t") {
        Ok(result) => result
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Int(v) => *v,
                other => panic!("non-int id: {other:?}"),
            })
            .collect(),
        // table missing means nothing committed yet
        Err(_) => BTreeSet::new(),
    }
}

/// Total metered units for a tenant across all services.
fn units_for(p: &OdbisPlatform, tenant: &str) -> u64 {
    p.admin
        .usage_report()
        .iter()
        .filter(|l| l.tenant == tenant)
        .map(|l| l.units)
        .sum()
}

/// Run `rounds` boot → randomized-workload → crash cycles under
/// `policy_spec` (a `{r}` placeholder is replaced with a fresh per-round
/// seed so probabilistic sites don't replay one trigger pattern), then
/// verify the invariants on a final clean recovery.
///
/// The shadow model mirrors the WAL-level suite: acknowledged writes are
/// committed to the shadow set; the single op that errors before a tenant
/// wedges is *pending* — its commit point is ambiguous (an fsync fault
/// leaves the frame durable, a write fault leaves nothing) — and is
/// resolved by observing what recovery actually produced.
fn run_platform_case(case: &str, policy_spec: &str, rounds: usize, seed: u64) {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    eprintln!("chaos case {case} seed={seed} (rerun: ODBIS_CHAOS_SEED={seed})");
    let dir = tmp_dir(case);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut shadow: [BTreeSet<i64>; 2] = [BTreeSet::new(), BTreeSet::new()];
    let mut pending: [Option<i64>; 2] = [None, None];
    let mut next: [i64; 2] = PK_BASE;

    for round in 0..rounds {
        let (p, tokens) = boot(&dir);

        for i in 0..2 {
            // invariant 2: recovery itself succeeded (boot didn't panic,
            // the table reads back) even after snapshot/WAL faults
            let got = present_ids(&p, i, &tokens[i]);
            // resolve the ambiguous op from the previous crash
            if let Some(pk) = pending[i].take() {
                if got.contains(&pk) {
                    shadow[i].insert(pk);
                }
            }
            // invariant 1 + 3: exactly the acknowledged writes survived
            assert_eq!(
                got, shadow[i],
                "round {round}, tenant {}: recovered ids diverge from \
                 acknowledged writes (seed {seed})",
                TENANTS[i]
            );
        }
        if round == 0 {
            for i in 0..2 {
                p.sql(TENANTS[i], &tokens[i], "CREATE TABLE t (id INT, note TEXT)")
                    .unwrap();
            }
        }

        let spec = policy_spec.replace("{r}", &seed.wrapping_add(round as u64).to_string());
        odbis_chaos::apply_spec(&spec).unwrap();

        let mut wedged = [false, false];
        for _ in 0..24 {
            let i = rng.random_range(0..2i64) as usize;
            if wedged[i] {
                continue;
            }
            let before = units_for(&p, TENANTS[i]);
            let pk = next[i];
            next[i] += 1;
            let res = p.sql(
                TENANTS[i],
                &tokens[i],
                &format!("INSERT INTO t VALUES ({pk}, 'x')"),
            );
            // invariant 4: metering never moves backwards, fault or not
            let after = units_for(&p, TENANTS[i]);
            assert!(
                after >= before,
                "metering went backwards for {} ({before} -> {after}, seed {seed})",
                TENANTS[i]
            );
            match res {
                Ok(_) => {
                    shadow[i].insert(pk);
                }
                Err(_) => {
                    // the store may hold a torn tail now — stop writing,
                    // remember the one commit-point-ambiguous op
                    pending[i] = Some(pk);
                    wedged[i] = true;
                }
            }
            // occasional checkpoints exercise snapshot + WAL-reset sites;
            // a failed checkpoint must not change logical state
            if !wedged[i] && rng.random_range(0..6i64) == 0 {
                let _ = p.checkpoint_tenant(TENANTS[i], &tokens[i]);
            }
        }

        // crash: disarm, then drop the platform without checkpointing
        odbis_chaos::clear();
        drop(p);
    }

    // final clean recovery: both shadows intact, tenants fully disjoint
    let (p, tokens) = boot(&dir);
    for i in 0..2 {
        let got = present_ids(&p, i, &tokens[i]);
        if let Some(pk) = pending[i].take() {
            if got.contains(&pk) {
                shadow[i].insert(pk);
            }
        }
        assert_eq!(
            got, shadow[i],
            "final recovery, tenant {}: lost or invented writes (seed {seed})",
            TENANTS[i]
        );
        let (lo, hi) = (PK_BASE[i], PK_BASE[i] + 1_000_000);
        assert!(
            got.iter().all(|pk| (lo..hi).contains(pk)),
            "tenant {} sees ids outside its own range (seed {seed})",
            TENANTS[i]
        );
    }
    assert!(
        shadow[0].len() + shadow[1].len() >= 5,
        "workload acknowledged almost nothing under {policy_spec} (seed {seed})"
    );
}

// --------------------------------------------------------- the fault matrix

#[test]
fn platform_survives_fsync_faults() {
    run_platform_case("fsync", "wal.fsync=err-every-nth(3)", 3, seed());
}

#[test]
fn platform_survives_wal_write_faults() {
    run_platform_case("write", "wal.write=err-every-nth(4)", 3, seed());
}

#[test]
fn platform_survives_torn_wal_tails() {
    run_platform_case("torn", "wal.write.short=err-every-nth(5)", 3, seed());
}

#[test]
fn platform_survives_probabilistic_write_faults() {
    run_platform_case("prob", "wal.write=err-with-prob(0.2,{r})", 3, seed());
}

#[test]
fn platform_survives_snapshot_and_checkpoint_faults() {
    run_platform_case(
        "snap",
        "snapshot.rename=err-every-nth(2);checkpoint.begin=err-every-nth(3);wal.reset=err-every-nth(2)",
        3,
        seed(),
    );
}

/// Heavier sweep for the CI chaos job: the whole matrix under several
/// derived seeds. `cargo test --test chaos -- --ignored`.
#[test]
#[ignore]
fn chaos_platform_sweep_many_seeds() {
    let base = seed();
    for i in 0..4u64 {
        let s = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        run_platform_case("sweep-fsync", "wal.fsync=err-every-nth(3)", 3, s);
        run_platform_case("sweep-prob", "wal.write=err-with-prob(0.3,{r})", 3, s);
        run_platform_case(
            "sweep-compound",
            "wal.fsync=err-every-nth(4);snapshot.rename=err-every-nth(2)",
            3,
            s,
        );
    }
}

// ------------------------------------------------------- HTTP-level chaos

fn auth(
    addr: &str,
    method: &str,
    path: &str,
    token: &str,
    body: &str,
) -> (u16, std::collections::BTreeMap<String, String>, String) {
    let bearer = format!("Bearer {token}");
    http_request(
        addr,
        method,
        path,
        &[("x-tenant", "acme"), ("Authorization", bearer.as_str())],
        body.as_bytes(),
    )
    .unwrap()
}

fn serve_durable(dir: &std::path::Path) -> (HttpServer, Arc<OdbisPlatform>, String) {
    let p = Arc::new(OdbisPlatform::with_data_dir(dir.to_path_buf()));
    p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = p.login("acme", "root", "pw").unwrap();
    let server = HttpServer::start(build_router(Arc::clone(&p)), 2).unwrap();
    (server, p, token)
}

/// Invariant 5: with the WAL faulting underneath, every `/api/v1/sql`
/// response is either a success or a structured 503 `unavailable`
/// envelope carrying `Retry-After` — never a bare 500, never a torn body.
#[test]
fn wedged_store_surfaces_structured_503_envelopes() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let s = seed();
    eprintln!("chaos case http-envelope seed={s}");
    let dir = tmp_dir("http-envelope");
    let (server, p, token) = serve_durable(&dir);
    let addr = server.addr().to_string();
    p.sql("acme", &token, "CREATE TABLE t (id INT, note TEXT)")
        .unwrap();

    odbis_chaos::apply_spec("wal.write=err-every-nth(3)").unwrap();
    let (mut oks, mut unavailable) = (0, 0);
    for pk in 0..12 {
        let (status, headers, body) = auth(
            &addr,
            "POST",
            "/api/v1/sql",
            &token,
            &format!("INSERT INTO t VALUES ({pk}, 'x')"),
        );
        match status {
            200 => oks += 1,
            503 => {
                let v: serde_json::Value = serde_json::from_str(&body)
                    .unwrap_or_else(|e| panic!("503 body is not JSON: {e} ({body})"));
                let err = v.get("error").expect("503 must carry an error envelope");
                assert_eq!(
                    err.get("kind").and_then(|k| k.as_str()),
                    Some("unavailable")
                );
                assert!(!err
                    .get("message")
                    .and_then(|m| m.as_str())
                    .unwrap_or("")
                    .is_empty());
                assert_eq!(
                    headers.get("retry-after").map(String::as_str),
                    Some("1"),
                    "transient failures must advertise Retry-After"
                );
                unavailable += 1;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    odbis_chaos::clear();
    assert!(oks > 0, "no insert ever succeeded");
    assert!(unavailable > 0, "the failpoint never fired");
    server.shutdown();
}

/// Transient checkpoint IO errors are retried behind the scenes (the
/// caller sees success and a bumped retry counter); a persistent fault
/// exhausts the budget and surfaces as a retryable 503 over HTTP.
#[test]
fn checkpoint_retries_transient_io_then_exhausts_to_503() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let dir = tmp_dir("ckpt-retry");
    let (server, p, token) = serve_durable(&dir);
    let addr = server.addr().to_string();
    p.sql("acme", &token, "CREATE TABLE t (id INT, note TEXT)")
        .unwrap();
    p.sql("acme", &token, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        .unwrap();

    // every-2nd check fails: first checkpoint sails through, the second
    // absorbs one transient fault and succeeds on its in-process retry
    let before = odbis_chaos::retry_count("checkpoint");
    odbis_chaos::apply_spec("checkpoint.begin=err-every-nth(2)").unwrap();
    p.checkpoint_tenant("acme", &token).unwrap();
    p.checkpoint_tenant("acme", &token).unwrap();
    // remove (not clear): clear() also zeroes the retry counters under test
    odbis_chaos::remove("checkpoint.begin");
    assert_eq!(
        odbis_chaos::retry_count("checkpoint") - before,
        1,
        "exactly one transient fault should have been retried"
    );

    // a hard fault burns all 3 attempts and maps to 503 + Retry-After
    odbis_chaos::apply_spec("checkpoint.begin=return-err").unwrap();
    let (status, headers, body) = auth(&addr, "POST", "/api/v1/admin/checkpoint", &token, "");
    odbis_chaos::remove("checkpoint.begin");
    assert_eq!(status, 503, "exhausted retries must be 503: {body}");
    assert_eq!(headers.get("retry-after").map(String::as_str), Some("1"));
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str()),
        Some("unavailable")
    );
    assert_eq!(
        odbis_chaos::retry_count("checkpoint") - before,
        3,
        "the exhausted checkpoint should have retried twice more"
    );

    // the store is not poisoned: with the fault gone, checkpoint works
    p.checkpoint_tenant("acme", &token).unwrap();
    odbis_chaos::clear();
    server.shutdown();
}

/// Socket-level faults (accept, read, write) drop individual connections
/// but never kill the server: once disarmed, the very next request is
/// served normally and shutdown still completes.
#[test]
fn socket_faults_drop_connections_but_never_kill_the_server() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let platform = Arc::new(OdbisPlatform::new());
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    for site in ["http.accept", "http.read", "http.write"] {
        odbis_chaos::apply_spec(&format!("{site}=err-every-nth(2)")).unwrap();
        let mut dropped = 0;
        for _ in 0..6 {
            // a faulted connection surfaces as a client-side Err — that is
            // allowed; a 5xx or a hung server is not
            match http_get(&addr, "/api/v1/health") {
                Ok((status, _)) => assert_eq!(status, 200, "{site}"),
                Err(_) => dropped += 1,
            }
        }
        odbis_chaos::clear();
        assert!(dropped > 0, "{site} never dropped a connection");
        let (status, body) = http_get(&addr, "/api/v1/health").unwrap();
        assert_eq!(status, 200, "server wedged after {site} faults: {body}");
    }
    server.shutdown();
}

// --------------------------------------------------- delta-propagation chaos
//
// The streaming-BI delta pipeline (warehouse write → WAL ack → ESB event →
// incremental aggregate maintenance) under the esb.dispatch / WAL failpoint
// matrix. The invariant: no matter how delta events are dropped, retried or
// duplicated, a materialized aggregate never *diverges* — every answer it
// gives equals a live query against the warehouse. Losses may cost a
// rebuild (freshness), never correctness.

/// Star schema + cube + two materialized aggregates on an in-memory
/// platform; returns the cube definition for live-query comparison.
fn delta_platform() -> (OdbisPlatform, String, odbis_olap::CubeDef) {
    use odbis_olap::{Aggregator, CubeDef, DimensionDef, LevelDef, LevelRef, MeasureDef};
    let p = OdbisPlatform::new();
    p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = p.login("acme", "root", "pw").unwrap();
    p.sql(
        "acme",
        &token,
        "CREATE TABLE dim_store (store_id INT PRIMARY KEY, region TEXT)",
    )
    .unwrap();
    p.sql(
        "acme",
        &token,
        "INSERT INTO dim_store VALUES (1, 'EU'), (2, 'US'), (3, 'APAC')",
    )
    .unwrap();
    p.sql(
        "acme",
        &token,
        "CREATE TABLE fact_sales (id INT PRIMARY KEY, store_id INT, year INT, amount DOUBLE)",
    )
    .unwrap();
    p.sql(
        "acme",
        &token,
        "INSERT INTO fact_sales VALUES (1, 1, 2009, 10.0), (2, 2, 2009, 20.0)",
    )
    .unwrap();
    let cube = CubeDef {
        name: "streamcube".into(),
        fact_table: "fact_sales".into(),
        dimensions: vec![
            DimensionDef {
                name: "geo".into(),
                table: Some("dim_store".into()),
                fact_fk: "store_id".into(),
                dim_key: "store_id".into(),
                levels: vec![LevelDef {
                    name: "region".into(),
                    column: "region".into(),
                }],
            },
            DimensionDef {
                name: "time".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![LevelDef {
                    name: "year".into(),
                    column: "year".into(),
                }],
            },
        ],
        measures: vec![
            MeasureDef {
                name: "revenue".into(),
                column: "amount".into(),
                aggregator: Aggregator::Sum,
            },
            MeasureDef {
                name: "orders".into(),
                column: "id".into(),
                aggregator: Aggregator::Count,
            },
        ],
    };
    p.register_cube("acme", &token, cube.clone()).unwrap();
    p.materialize_aggregate(
        "acme",
        &token,
        "streamcube",
        vec![LevelRef::new("geo", "region")],
        vec!["revenue".into(), "orders".into()],
    )
    .unwrap();
    p.materialize_aggregate(
        "acme",
        &token,
        "streamcube",
        vec![LevelRef::new("time", "year")],
        vec!["revenue".into()],
    )
    .unwrap();
    (p, token, cube)
}

/// Every maintained aggregate must answer its covering query identically
/// to a live cube query against the warehouse — fault or no fault.
fn assert_preaggs_converged(p: &OdbisPlatform, cube: &odbis_olap::CubeDef, ctx: &str) {
    use odbis_olap::{CubeQuery, LevelRef};
    let ws = p.workspace("acme").unwrap();
    for (axes, measures) in [
        (
            vec![LevelRef::new("geo", "region")],
            vec!["revenue".to_string(), "orders".to_string()],
        ),
        (
            vec![LevelRef::new("time", "year")],
            vec!["revenue".to_string()],
        ),
    ] {
        let q = CubeQuery {
            axes,
            slices: vec![],
            measures,
        };
        let maintained = ws
            .agg_cache
            .read()
            .try_answer("streamcube", &q)
            .unwrap_or_else(|| panic!("aggregate vanished or stayed stale ({ctx})"));
        let live = ws.cubes.query(cube, &q).unwrap();
        assert_eq!(
            maintained.cells, live.cells,
            "maintained aggregate diverged from warehouse ({ctx})"
        );
    }
}

/// Random warehouse writes while `esb.dispatch` faults under `spec`:
/// after every write the aggregates must equal a live query. Returns the
/// workspace delta counters for the caller's fault-specific assertions.
fn run_delta_chaos_case(case: &str, spec: &str, seed: u64) -> (u64, usize) {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    eprintln!("chaos case {case} seed={seed} (rerun: ODBIS_CHAOS_SEED={seed})");
    let (p, token, cube) = delta_platform();
    let mut rng = StdRng::seed_from_u64(seed);

    odbis_chaos::apply_spec(spec).unwrap();
    let mut next_id = 3i64;
    for step in 0..20 {
        let roll = rng.random_range(0..10i64);
        if roll < 7 {
            let store = rng.random_range(1..=3i64);
            let year = rng.random_range(2008..=2012i64);
            let amount = rng.random_range(10..5_000i64) as f64 / 10.0;
            p.sql(
                "acme",
                &token,
                &format!("INSERT INTO fact_sales VALUES ({next_id}, {store}, {year}, {amount:?})"),
            )
            .unwrap();
            next_id += 1;
        } else if roll < 9 {
            let id = rng.random_range(1..next_id);
            let amount = rng.random_range(10..5_000i64) as f64 / 10.0;
            p.sql(
                "acme",
                &token,
                &format!("UPDATE fact_sales SET amount = {amount:?} WHERE id = {id}"),
            )
            .unwrap();
        } else {
            let id = rng.random_range(1..next_id);
            p.sql(
                "acme",
                &token,
                &format!("DELETE FROM fact_sales WHERE id = {id}"),
            )
            .unwrap();
        }
        assert_preaggs_converged(&p, &cube, &format!("{case}, step {step}, seed {seed}"));
    }
    odbis_chaos::clear();
    let ws = p.workspace("acme").unwrap();
    let redeliveries = ws.bus.redelivery_count();
    let dead = ws
        .bus
        .take_dead_letters()
        .into_iter()
        .filter(|m| m.header("seq").is_some())
        .count();
    (redeliveries, dead)
}

/// Hard drop: every dispatch attempt fails, so every delta event
/// dead-letters. The publish path's loss check must rebuild and resync —
/// the aggregates stay exactly consistent with the warehouse throughout.
#[test]
fn dropped_delta_events_never_diverge_preaggs() {
    let (_, dead) = run_delta_chaos_case("delta-drop", "esb.dispatch=return-err", seed());
    assert!(dead > 0, "no delta event was ever dropped — failpoint dead");
}

/// Flaky dispatch: some attempts fail and are redelivered (at-least-once),
/// some messages exhaust their budget and drop. Sequence numbers keep the
/// redeliveries idempotent and the gap/tail checks repair the drops.
#[test]
fn flaky_delta_dispatch_redelivers_without_divergence() {
    let (redeliveries, _) =
        run_delta_chaos_case("delta-flaky", "esb.dispatch=err-every-nth(2)", seed());
    assert!(
        redeliveries > 0,
        "the flaky dispatcher never exercised redelivery"
    );
}

/// Probabilistic dispatch faults layered over WAL write faults: the delta
/// source (the WAL ack) and the delta transport (the bus) failing together
/// must still never produce a divergent cell for acknowledged writes.
#[test]
fn combined_wal_and_dispatch_faults_never_diverge_preaggs() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let s = seed();
    eprintln!("chaos case delta-combined seed={s} (rerun: ODBIS_CHAOS_SEED={s})");
    let (p, token, cube) = delta_platform();
    let mut rng = StdRng::seed_from_u64(s);
    odbis_chaos::apply_spec(&format!(
        "esb.dispatch=err-with-prob(0.3,{s});wal.write=err-with-prob(0.15,{})",
        s.wrapping_add(1)
    ))
    .unwrap();
    let mut acked = 0;
    for step in 0..20i64 {
        let next_id = 3 + step;
        let store = rng.random_range(1..=3i64);
        let amount = rng.random_range(10..5_000i64) as f64 / 10.0;
        // in-memory workspaces have no WAL, so wal.write faults here hit
        // other machinery; the write itself may still fail structurally —
        // only acknowledged writes owe the convergence guarantee
        if p.sql(
            "acme",
            &token,
            &format!("INSERT INTO fact_sales VALUES ({next_id}, {store}, 2010, {amount:?})"),
        )
        .is_ok()
        {
            acked += 1;
        }
        assert_preaggs_converged(&p, &cube, &format!("delta-combined, step {step}, seed {s}"));
    }
    odbis_chaos::clear();
    assert!(acked > 0, "no insert was ever acknowledged");
}

/// The five platform invariants (durability, recovery, isolation,
/// monotonic metering, structured errors) hold with the delta dispatcher
/// faulting underneath the whole workload.
#[test]
fn platform_invariants_hold_under_esb_dispatch_faults() {
    run_platform_case("esb", "esb.dispatch=err-every-nth(2)", 3, seed());
}

/// Same, with dispatch and WAL fsync faults combined — the full matrix
/// corner where the delta source and transport degrade at once.
#[test]
fn platform_invariants_hold_under_combined_dispatch_and_wal_faults() {
    run_platform_case(
        "esb-wal",
        "esb.dispatch=err-every-nth(3);wal.fsync=err-every-nth(4)",
        3,
        seed(),
    );
}

/// A duplicated delta event — redelivered *after* it already applied,
/// carrying a poison payload that is not in the warehouse — must be
/// skipped by its sequence number. If idempotency ever regressed, the
/// poison row would fold in and the convergence check would fail.
#[test]
fn duplicated_delta_events_are_idempotent() {
    use odbis::DELTA_CHANNEL;
    use odbis_esb::Message;
    use odbis_storage::jsoncodec::record_to_json;
    use odbis_storage::wal::WalRecord;

    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let (p, token, cube) = delta_platform();
    let ws = p.workspace("acme").unwrap();

    // one clean insert so the cache sits at some applied sequence n
    p.sql(
        "acme",
        &token,
        "INSERT INTO fact_sales VALUES (3, 3, 2011, 55.5)",
    )
    .unwrap();
    let n = ws.agg_cache.read().last_seq();
    assert!(n > 0, "the insert's delta never reached the cache");

    // replay sequences n, n-1 … 1 with a poison row the warehouse never
    // saw: every one is a duplicate and must be skipped wholesale
    let poison = record_to_json(&WalRecord::Insert {
        table: "fact_sales".into(),
        row: vec![
            Value::Int(999),
            Value::Int(1),
            Value::Int(2011),
            Value::Float(1_000_000.0),
        ],
    })
    .to_string();
    for dup_seq in (1..=n).rev() {
        ws.bus
            .send(
                DELTA_CHANNEL,
                Message::json(poison.clone())
                    .with_header("seq", dup_seq.to_string())
                    .with_header("table", "fact_sales"),
            )
            .unwrap();
        ws.bus.pump().unwrap();
        assert_preaggs_converged(&p, &cube, &format!("duplicate seq {dup_seq} of {n}"));
    }
    assert_eq!(
        ws.agg_cache.read().last_seq(),
        n,
        "a duplicate must never advance the applied sequence"
    );

    // and the pipeline still works after the duplicate storm
    p.sql(
        "acme",
        &token,
        "INSERT INTO fact_sales VALUES (4, 2, 2012, 12.25)",
    )
    .unwrap();
    assert_preaggs_converged(&p, &cube, "post-duplicate insert");
}

/// The new chaos telemetry rides the normal metrics scrape: triggered
/// fault counts and retry counts are exported in Prometheus text format.
#[test]
fn failpoint_and_retry_counters_are_scraped() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let platform = Arc::new(OdbisPlatform::new());
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    odbis_chaos::apply_spec("chaos.metrics.probe=return-err").unwrap();
    assert!(odbis_chaos::check("chaos.metrics.probe").is_err());
    odbis_chaos::count_retry("metrics.probe");

    let (status, body) = http_get(&addr, "/api/v1/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("odbis_failpoint_triggered_total{site=\"chaos.metrics.probe\"} 1"),
        "missing failpoint counter:\n{body}"
    );
    assert!(
        body.contains("odbis_retries_total{op=\"metrics.probe\"}"),
        "missing retry counter:\n{body}"
    );
    odbis_chaos::clear();
    server.shutdown();
}
