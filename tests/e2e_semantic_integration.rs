//! Future-work reproduction (§3.2/§3.3): ODM-driven *semantic* schema
//! integration — an ontology maps two heterogeneous source schemas onto
//! shared business terms; the proposed correspondences drive an ETL job
//! that unifies the sources into one warehouse table.

use std::sync::Arc;

use odbis_etl::{EtlJob, Extractor, JobRunner, LoadMode, Loader, Transform};
use odbis_metamodel::{define_class, match_schemas, odm::odm, ModelRepository};
use odbis_sql::Engine;
use odbis_storage::{Database, Value};

#[test]
fn ontology_matches_drive_schema_unification() {
    // two heterogeneous operational sources
    let db = Arc::new(Database::new());
    let engine = Engine::new();
    engine
        .execute_script(
            &db,
            "CREATE TABLE pos_sales (client_name TEXT, sale_total DOUBLE);
             CREATE TABLE web_orders (cust_full_name TEXT, order_amount DOUBLE);
             INSERT INTO pos_sales VALUES ('Ana', 10.0), ('Bob', 20.0);
             INSERT INTO web_orders VALUES ('Carol', 30.0);",
        )
        .unwrap();

    // the ontology: both schemas annotated onto the same business terms
    let mut onto = ModelRepository::new("sales-ontology", odm());
    define_class(
        &mut onto,
        "Sale",
        &[
            ("customer", "TEXT", Some("pos_sales.client_name")),
            ("customer", "TEXT", Some("web_orders.cust_full_name")),
            ("amount", "NUMBER", Some("pos_sales.sale_total")),
            ("amount", "NUMBER", Some("web_orders.order_amount")),
        ],
    )
    .unwrap();
    assert!(onto.validate().is_empty());

    // semantic matching proposes the column correspondences
    let matches = match_schemas(&onto, "pos_sales", "web_orders");
    assert_eq!(matches.len(), 2);
    let correspondence = |term: &str| {
        matches
            .iter()
            .find(|m| m.via_term == term)
            .unwrap_or_else(|| panic!("no match for {term}"))
    };
    let cust = correspondence("customer");
    let amount = correspondence("amount");
    assert_eq!(cust.left, "pos_sales.client_name");
    assert_eq!(cust.right, "web_orders.cust_full_name");

    // the correspondences drive two load jobs into one unified table, each
    // renaming its source columns to the ontology terms
    let runner = JobRunner::new(Arc::clone(&db));
    let unify = |table: &str, customer_col: &str, amount_col: &str, mode: LoadMode| EtlJob {
        name: format!("unify-{table}"),
        extractor: Extractor::Table(table.to_string()),
        transforms: vec![
            Transform::Rename {
                from: customer_col.to_string(),
                to: "customer".into(),
            },
            Transform::Rename {
                from: amount_col.to_string(),
                to: "amount".into(),
            },
        ],
        loader: Loader {
            table: "unified_sales".into(),
            mode,
        },
    };
    let strip = |full: &str| full.split('.').nth(1).unwrap().to_string();
    runner
        .run(&unify(
            "pos_sales",
            &strip(&cust.left),
            &strip(&amount.left),
            LoadMode::Replace,
        ))
        .unwrap();
    runner
        .run(&unify(
            "web_orders",
            &strip(&cust.right),
            &strip(&amount.right),
            LoadMode::Append,
        ))
        .unwrap();

    // the unified table holds all three sales under the ontology's terms
    let r = engine
        .execute(
            &db,
            "SELECT COUNT(*) AS n, SUM(amount) AS total FROM unified_sales",
        )
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(3), Value::Float(60.0)]);
    let schema = db.table_schema("unified_sales").unwrap();
    assert!(schema.column("customer").is_some());
    assert!(schema.column("amount").is_some());
}
