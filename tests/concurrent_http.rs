//! Concurrency smoke test: many client threads hammer one platform server
//! with mixed traffic (reads, writes, bad requests, metrics scrapes) and
//! every response must come back — no connection resets, no 5xx, and the
//! server must shut down cleanly (bounded join) afterwards.

use std::io::{Read, Write};
use std::sync::Arc;

use odbis::{build_router, serve_platform, OdbisPlatform};
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_get, http_request, HttpServer};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 25;

/// Multi-tenant reader/writer stress over HTTP: per tenant, one writer
/// bulk-inserts into `events` while one reader repeatedly aggregates the
/// untouched `ref_data` table. With per-table locking the reader's answer
/// must be the same every time (one consistent cut, never a torn or
/// blocked read), every response must stay under 500, and the usage meter
/// must tick monotonically while traffic flows.
#[test]
fn tenants_read_consistently_while_bulk_inserts_run() {
    const TENANTS: [&str; 2] = ["acme", "beta"];
    const REF_ROWS: i64 = 100;
    const ROUNDS: usize = 30;

    let platform = Arc::new(OdbisPlatform::new());
    let mut tokens = Vec::new();
    for t in TENANTS {
        platform
            .provision_tenant(t, t, SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = platform.login(t, "root", "pw").unwrap();
        platform
            .sql(t, &token, "CREATE TABLE ref_data (id INT, v INT)")
            .unwrap();
        let rows: Vec<String> = (0..REF_ROWS).map(|i| format!("({i}, {})", i * 3)).collect();
        platform
            .sql(
                t,
                &token,
                &format!("INSERT INTO ref_data VALUES {}", rows.join(", ")),
            )
            .unwrap();
        platform
            .sql(t, &token, "CREATE TABLE events (id INT, payload TEXT)")
            .unwrap();
        tokens.push(token);
    }
    let expected_sum: i64 = (0..REF_ROWS).map(|i| i * 3).sum();

    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4).unwrap();
    let addr = server.addr().to_string();

    let mut handles = Vec::new();
    for (ti, tenant) in TENANTS.iter().enumerate() {
        // writer: bulk inserts, 20 rows per statement
        {
            let addr = addr.clone();
            let bearer = format!("Bearer {}", tokens[ti]);
            let tenant = tenant.to_string();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let base = (round * 20) as i64;
                    let rows: Vec<String> = (0..20)
                        .map(|j| format!("({}, 'p{round}')", base + j))
                        .collect();
                    let sql = format!("INSERT INTO events VALUES {}", rows.join(", "));
                    let (status, _, body) = http_request(
                        &addr,
                        "POST",
                        "/api/v1/sql",
                        &[
                            ("x-tenant", tenant.as_str()),
                            ("Authorization", bearer.as_str()),
                        ],
                        sql.as_bytes(),
                    )
                    .expect("writer reset");
                    assert!(
                        status < 500,
                        "{tenant} writer round {round}: {status}: {body}"
                    );
                }
            }));
        }
        // reader: the aggregate over ref_data must never waver
        {
            let addr = addr.clone();
            let bearer = format!("Bearer {}", tokens[ti]);
            let tenant = tenant.to_string();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let (status, _, body) = http_request(
                        &addr,
                        "POST",
                        "/api/v1/sql",
                        &[
                            ("x-tenant", tenant.as_str()),
                            ("Authorization", bearer.as_str()),
                        ],
                        b"SELECT COUNT(id), SUM(v) FROM ref_data",
                    )
                    .expect("reader reset");
                    assert!(
                        status < 500,
                        "{tenant} reader round {round}: {status}: {body}"
                    );
                    assert_eq!(status, 200, "{tenant} reader round {round}: {body}");
                    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
                    assert_eq!(
                        v["rows"][0][0].as_str(),
                        Some(REF_ROWS.to_string().as_str()),
                        "{tenant} round {round}: torn count: {body}"
                    );
                    assert_eq!(
                        v["rows"][0][1].as_str(),
                        Some(expected_sum.to_string().as_str()),
                        "{tenant} round {round}: torn sum: {body}"
                    );
                }
            }));
        }
    }

    // meter sampler: total usage units only ever grow while traffic flows
    let sampler = {
        let platform = Arc::clone(&platform);
        std::thread::spawn(move || {
            let mut last = 0u64;
            for _ in 0..40 {
                let total: u64 = platform.admin.usage_report().iter().map(|l| l.units).sum();
                assert!(
                    total >= last,
                    "usage meter went backwards: {last} -> {total}"
                );
                last = total;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };

    for h in handles {
        h.join().expect("a stress thread panicked");
    }
    sampler.join().expect("sampler panicked");

    // after the dust settles: every bulk insert landed, in both tenants
    for (ti, tenant) in TENANTS.iter().enumerate() {
        let rows = platform
            .sql(tenant, &tokens[ti], "SELECT COUNT(id) FROM events")
            .unwrap();
        assert_eq!(
            rows.rows[0][0],
            odbis_storage::Value::Int((ROUNDS * 20) as i64),
            "{tenant} lost inserts"
        );
    }
    server.shutdown();
}

#[test]
fn many_clients_no_resets_no_5xx_clean_shutdown() {
    let platform = Arc::new(OdbisPlatform::new());
    platform
        .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = platform.login("acme", "root", "pw").unwrap();
    platform
        .sql("acme", &token, "CREATE TABLE hits (id INT, who TEXT)")
        .unwrap();
    platform
        .sql("acme", &token, "INSERT INTO hits VALUES (0, 'seed')")
        .unwrap();

    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4).unwrap();
    let addr = server.addr().to_string();

    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let addr = addr.clone();
        let token = token.clone();
        handles.push(std::thread::spawn(move || {
            let bearer = format!("Bearer {token}");
            for i in 0..REQUESTS_PER_CLIENT {
                let (status, body) = match i % 5 {
                    // unauthenticated surface
                    0 => http_get(&addr, "/api/v1/health").expect("health reset"),
                    1 => http_get(&addr, "/api/v1/metrics").expect("metrics reset"),
                    // authenticated write + read traffic
                    2 | 3 => {
                        let sql = if i % 5 == 2 {
                            format!(
                                "INSERT INTO hits VALUES ({}, 'c{client}')",
                                client * 1000 + i
                            )
                        } else {
                            "SELECT COUNT(id) FROM hits".to_string()
                        };
                        let (status, _, body) = http_request(
                            &addr,
                            "POST",
                            "/api/v1/sql",
                            &[("x-tenant", "acme"), ("Authorization", bearer.as_str())],
                            sql.as_bytes(),
                        )
                        .expect("sql reset");
                        (status, body)
                    }
                    // a client error: must be a clean 4xx envelope, not 5xx
                    _ => {
                        let (status, _, body) = http_request(
                            &addr,
                            "POST",
                            "/api/v1/sql",
                            &[("x-tenant", "acme"), ("Authorization", "Bearer forged")],
                            b"SELECT 1",
                        )
                        .expect("forged-token reset");
                        (status, body)
                    }
                };
                assert!(
                    status < 500,
                    "client {client} request {i}: got {status}: {body}"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("a client thread panicked");
    }

    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert!(
        server.requests_served() >= total,
        "served {} of {total} requests",
        server.requests_served()
    );

    // clean shutdown: all worker + accept threads join within bounded time
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );

    // and the writes all actually landed (4 requests per client are inserts)
    let inserts = (0..CLIENTS)
        .map(|_| (0..REQUESTS_PER_CLIENT).filter(|i| i % 5 == 2).count())
        .sum::<usize>();
    let rows = platform
        .sql("acme", &token, "SELECT COUNT(id) FROM hits")
        .unwrap();
    assert_eq!(
        rows.rows[0][0],
        odbis_storage::Value::Int((inserts + 1) as i64)
    );
}

/// One keep-alive connection, many requests — including a pipelined burst
/// written before any response is read. The event loop must answer all of
/// them, in order, on the same socket.
#[test]
fn keep_alive_connection_pipelines_through_the_reactor() {
    let platform = Arc::new(OdbisPlatform::new());
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();

    // write 10 requests back-to-back without reading a single byte
    const N: usize = 10;
    let mut burst = String::new();
    for i in 0..N {
        burst.push_str(&format!(
            "GET /api/v1/health HTTP/1.1\r\nHost: t\r\nX-Request-Id: pipe-{i}\r\n\r\n"
        ));
    }
    stream.write_all(burst.as_bytes()).unwrap();

    // the responses come back in request order on the same connection
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while buf.windows(4).filter(|w| w == b"\r\n\r\n").count() < N
        || !String::from_utf8_lossy(&buf).contains(&format!("pipe-{}", N - 1))
    {
        let n = stream.read(&mut chunk).expect("read pipelined response");
        assert!(n > 0, "connection closed after {} bytes", buf.len());
        buf.extend_from_slice(&chunk[..n]);
        if String::from_utf8_lossy(&buf)
            .matches("HTTP/1.1 200")
            .count()
            >= N
        {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    assert_eq!(text.matches("HTTP/1.1 200").count(), N, "{text}");
    // responses carry the ids in the order the requests were written
    let mut last = 0;
    let mut seen = 0;
    for i in 0..N {
        let needle = format!("pipe-{i}");
        let pos = text
            .find(&needle)
            .unwrap_or_else(|| panic!("missing {needle}"));
        assert!(pos >= last, "response {i} out of order");
        last = pos;
        seen += 1;
    }
    assert_eq!(seen, N);
    assert!(server.requests_served() >= N as u64);
    server.shutdown();
}

/// Noisy-neighbor isolation: tenant A blasts far past its configured rate
/// limit while tenant B issues paced requests. A must see structured 429s
/// with Retry-After; B must never be throttled or slowed into failure;
/// the metrics scrape must count A's rejections.
#[test]
fn noisy_tenant_throttled_while_quiet_tenant_sails_through() {
    let platform = Arc::new(OdbisPlatform::new());
    for t in ["noisy", "quiet"] {
        platform
            .provision_tenant(t, t, SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
    }
    // only the noisy tenant is rate-limited: 5 rps, burst 5, queue 2
    platform
        .admin
        .config
        .set_for_tenant("noisy", "limits.rate", 5i64.into())
        .unwrap();
    platform
        .admin
        .config
        .set_for_tenant("noisy", "limits.burst", 5i64.into())
        .unwrap();
    platform
        .admin
        .config
        .set_for_tenant("noisy", "limits.queue_depth", 2i64.into())
        .unwrap();

    // the admission-aware server entry point
    let server = serve_platform(&platform, 4).unwrap();
    let addr = server.addr().to_string();

    // eight parallel clients push the noisy tenant far past rate + queue
    let noisy: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (mut ok, mut throttled) = (0u32, 0u32);
                for _ in 0..20 {
                    let (status, headers, body) = http_request(
                        &addr,
                        "GET",
                        "/api/v1/health",
                        &[("x-tenant", "noisy")],
                        b"",
                    )
                    .expect("noisy reset");
                    match status {
                        200 => ok += 1,
                        429 => {
                            throttled += 1;
                            assert!(
                                headers.contains_key("retry-after"),
                                "429 must carry Retry-After: {headers:?}"
                            );
                            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
                            assert_eq!(v["error"]["kind"], "rate_limited", "{body}");
                            assert!(
                                v["error"]["request_id"].as_str().is_some(),
                                "429 envelope carries the request id: {body}"
                            );
                        }
                        other => panic!("noisy got {other}: {body}"),
                    }
                }
                (ok, throttled)
            })
        })
        .collect();
    let quiet = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            for i in 0..20 {
                let (status, _, body) = http_request(
                    &addr,
                    "GET",
                    "/api/v1/health",
                    &[("x-tenant", "quiet")],
                    b"",
                )
                .expect("quiet reset");
                assert_eq!(status, 200, "quiet request {i} throttled: {body}");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };

    let (mut ok, mut throttled) = (0u32, 0u32);
    for h in noisy {
        let (o, t) = h.join().expect("noisy thread panicked");
        ok += o;
        throttled += t;
    }
    quiet.join().expect("quiet thread panicked");
    assert!(
        ok >= 5,
        "the burst allowance admits the first requests: {ok}"
    );
    assert!(
        throttled >= 10,
        "blasting past the limit must throttle: ok={ok} throttled={throttled}"
    );

    // rejections are visible on the scrape, labelled by tenant
    let (status, body) = http_get(&addr, "/api/v1/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("odbis_admission_rejected_total{tenant=\"noisy\"}"),
        "scrape must count noisy rejections"
    );
    assert!(
        !body.contains("odbis_admission_rejected_total{tenant=\"quiet\"}")
            || body.contains("odbis_admission_rejected_total{tenant=\"quiet\"} 0"),
        "quiet tenant must have no rejections: {body}"
    );
    server.shutdown();
}

/// 100 parked long-poll watchers on a 2-worker reactor must not starve
/// the pool: a parked watcher costs a file descriptor, not a worker
/// thread, so unrelated requests keep flowing underneath, and one commit
/// wakes every watcher with the same new cursor.
#[test]
fn hundred_parked_watchers_do_not_starve_the_worker_pool() {
    use odbis_metadata::DataSet;
    use odbis_web::Backend;

    const WATCHERS: usize = 100;

    let platform = Arc::new(OdbisPlatform::new());
    platform
        .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = platform.login("acme", "root", "pw").unwrap();
    platform
        .sql("acme", &token, "CREATE TABLE ticks (id INT, v INT)")
        .unwrap();
    platform
        .define_dataset(
            "acme",
            &token,
            DataSet {
                name: "tick_sum".into(),
                source: "warehouse".into(),
                sql: "SELECT SUM(v) AS s FROM ticks".into(),
                description: String::new(),
            },
        )
        .unwrap();

    // the reactor backend is the one that parks watchers off-thread; two
    // workers would deadlock immediately if watchers held worker threads
    let server = odbis_web::HttpServer::builder(build_router(Arc::clone(&platform)))
        .workers(2)
        .backend(Backend::Reactor)
        .start()
        .unwrap();
    let addr = server.addr().to_string();

    let hub = Arc::clone(&platform.workspace("acme").unwrap().watch);
    let cursor = hub.cursor();
    let watchers: Vec<_> = (0..WATCHERS)
        .map(|i| {
            let addr = addr.clone();
            let bearer = format!("Bearer {token}");
            std::thread::spawn(move || {
                let (status, headers, body) = http_request(
                    &addr,
                    "GET",
                    &format!("/api/v1/datasets/tick_sum/watch?cursor={cursor}&timeout_ms=30000"),
                    &[("x-tenant", "acme"), ("Authorization", bearer.as_str())],
                    b"",
                )
                .unwrap_or_else(|e| panic!("watcher {i} reset: {e}"));
                (status, headers, body)
            })
        })
        .collect();

    // all 100 must park (none served a premature answer, none rejected)
    let parked_deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while hub.parked() < WATCHERS {
        assert!(
            std::time::Instant::now() < parked_deadline,
            "only {} of {WATCHERS} watchers parked",
            hub.parked()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // the pool is not starved: unrelated traffic is served while every
    // watcher is parked
    for i in 0..10 {
        let (status, body) = http_get(&addr, "/api/v1/health").unwrap();
        assert_eq!(status, 200, "probe {i} starved: {body}");
    }

    // one commit wakes the whole crowd
    platform
        .sql("acme", &token, "INSERT INTO ticks VALUES (1, 7)")
        .unwrap();
    let mut cursors = std::collections::BTreeSet::new();
    for (i, w) in watchers.into_iter().enumerate() {
        let (status, headers, body) = w.join().expect("watcher panicked");
        assert_eq!(status, 200, "watcher {i}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["changed"], true, "watcher {i}: {body}");
        let c = v["cursor"].as_u64().unwrap();
        assert!(c > cursor, "watcher {i} got a stale cursor {c}");
        assert_eq!(headers["x-watch-cursor"], c.to_string(), "watcher {i}");
        cursors.insert(c);
    }
    assert_eq!(
        cursors.len(),
        1,
        "every watcher sees the same committed version: {cursors:?}"
    );
    assert_eq!(hub.parked(), 0, "no watcher left behind");
    server.shutdown();
}
