//! Concurrency smoke test: many client threads hammer one platform server
//! with mixed traffic (reads, writes, bad requests, metrics scrapes) and
//! every response must come back — no connection resets, no 5xx, and the
//! server must shut down cleanly (bounded join) afterwards.

use std::sync::Arc;

use odbis::{build_router, OdbisPlatform};
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_get, http_request, HttpServer};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 25;

#[test]
fn many_clients_no_resets_no_5xx_clean_shutdown() {
    let platform = Arc::new(OdbisPlatform::new());
    platform
        .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = platform.login("acme", "root", "pw").unwrap();
    platform
        .sql("acme", &token, "CREATE TABLE hits (id INT, who TEXT)")
        .unwrap();
    platform
        .sql("acme", &token, "INSERT INTO hits VALUES (0, 'seed')")
        .unwrap();

    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4).unwrap();
    let addr = server.addr().to_string();

    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let addr = addr.clone();
        let token = token.clone();
        handles.push(std::thread::spawn(move || {
            let bearer = format!("Bearer {token}");
            for i in 0..REQUESTS_PER_CLIENT {
                let (status, body) = match i % 5 {
                    // unauthenticated surface
                    0 => http_get(&addr, "/api/v1/health").expect("health reset"),
                    1 => http_get(&addr, "/api/v1/metrics").expect("metrics reset"),
                    // authenticated write + read traffic
                    2 | 3 => {
                        let sql = if i % 5 == 2 {
                            format!(
                                "INSERT INTO hits VALUES ({}, 'c{client}')",
                                client * 1000 + i
                            )
                        } else {
                            "SELECT COUNT(id) FROM hits".to_string()
                        };
                        let (status, _, body) = http_request(
                            &addr,
                            "POST",
                            "/api/v1/sql",
                            &[("x-tenant", "acme"), ("Authorization", bearer.as_str())],
                            sql.as_bytes(),
                        )
                        .expect("sql reset");
                        (status, body)
                    }
                    // a client error: must be a clean 4xx envelope, not 5xx
                    _ => {
                        let (status, _, body) = http_request(
                            &addr,
                            "POST",
                            "/api/v1/sql",
                            &[("x-tenant", "acme"), ("Authorization", "Bearer forged")],
                            b"SELECT 1",
                        )
                        .expect("forged-token reset");
                        (status, body)
                    }
                };
                assert!(
                    status < 500,
                    "client {client} request {i}: got {status}: {body}"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("a client thread panicked");
    }

    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert!(
        server.requests_served() >= total,
        "served {} of {total} requests",
        server.requests_served()
    );

    // clean shutdown: all worker + accept threads join within bounded time
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );

    // and the writes all actually landed (4 requests per client are inserts)
    let inserts = (0..CLIENTS)
        .map(|_| (0..REQUESTS_PER_CLIENT).filter(|i| i % 5 == 2).count())
        .sum::<usize>();
    let rows = platform
        .sql("acme", &token, "SELECT COUNT(id) FROM hits")
        .unwrap();
    assert_eq!(
        rows.rows[0][0],
        odbis_storage::Value::Int((inserts + 1) as i64)
    );
}
