//! Concurrency smoke test: many client threads hammer one platform server
//! with mixed traffic (reads, writes, bad requests, metrics scrapes) and
//! every response must come back — no connection resets, no 5xx, and the
//! server must shut down cleanly (bounded join) afterwards.

use std::sync::Arc;

use odbis::{build_router, OdbisPlatform};
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_get, http_request, HttpServer};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 25;

/// Multi-tenant reader/writer stress over HTTP: per tenant, one writer
/// bulk-inserts into `events` while one reader repeatedly aggregates the
/// untouched `ref_data` table. With per-table locking the reader's answer
/// must be the same every time (one consistent cut, never a torn or
/// blocked read), every response must stay under 500, and the usage meter
/// must tick monotonically while traffic flows.
#[test]
fn tenants_read_consistently_while_bulk_inserts_run() {
    const TENANTS: [&str; 2] = ["acme", "beta"];
    const REF_ROWS: i64 = 100;
    const ROUNDS: usize = 30;

    let platform = Arc::new(OdbisPlatform::new());
    let mut tokens = Vec::new();
    for t in TENANTS {
        platform
            .provision_tenant(t, t, SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = platform.login(t, "root", "pw").unwrap();
        platform
            .sql(t, &token, "CREATE TABLE ref_data (id INT, v INT)")
            .unwrap();
        let rows: Vec<String> = (0..REF_ROWS).map(|i| format!("({i}, {})", i * 3)).collect();
        platform
            .sql(
                t,
                &token,
                &format!("INSERT INTO ref_data VALUES {}", rows.join(", ")),
            )
            .unwrap();
        platform
            .sql(t, &token, "CREATE TABLE events (id INT, payload TEXT)")
            .unwrap();
        tokens.push(token);
    }
    let expected_sum: i64 = (0..REF_ROWS).map(|i| i * 3).sum();

    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4).unwrap();
    let addr = server.addr().to_string();

    let mut handles = Vec::new();
    for (ti, tenant) in TENANTS.iter().enumerate() {
        // writer: bulk inserts, 20 rows per statement
        {
            let addr = addr.clone();
            let bearer = format!("Bearer {}", tokens[ti]);
            let tenant = tenant.to_string();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let base = (round * 20) as i64;
                    let rows: Vec<String> = (0..20)
                        .map(|j| format!("({}, 'p{round}')", base + j))
                        .collect();
                    let sql = format!("INSERT INTO events VALUES {}", rows.join(", "));
                    let (status, _, body) = http_request(
                        &addr,
                        "POST",
                        "/api/v1/sql",
                        &[
                            ("x-tenant", tenant.as_str()),
                            ("Authorization", bearer.as_str()),
                        ],
                        sql.as_bytes(),
                    )
                    .expect("writer reset");
                    assert!(
                        status < 500,
                        "{tenant} writer round {round}: {status}: {body}"
                    );
                }
            }));
        }
        // reader: the aggregate over ref_data must never waver
        {
            let addr = addr.clone();
            let bearer = format!("Bearer {}", tokens[ti]);
            let tenant = tenant.to_string();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let (status, _, body) = http_request(
                        &addr,
                        "POST",
                        "/api/v1/sql",
                        &[
                            ("x-tenant", tenant.as_str()),
                            ("Authorization", bearer.as_str()),
                        ],
                        b"SELECT COUNT(id), SUM(v) FROM ref_data",
                    )
                    .expect("reader reset");
                    assert!(
                        status < 500,
                        "{tenant} reader round {round}: {status}: {body}"
                    );
                    assert_eq!(status, 200, "{tenant} reader round {round}: {body}");
                    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
                    assert_eq!(
                        v["rows"][0][0].as_str(),
                        Some(REF_ROWS.to_string().as_str()),
                        "{tenant} round {round}: torn count: {body}"
                    );
                    assert_eq!(
                        v["rows"][0][1].as_str(),
                        Some(expected_sum.to_string().as_str()),
                        "{tenant} round {round}: torn sum: {body}"
                    );
                }
            }));
        }
    }

    // meter sampler: total usage units only ever grow while traffic flows
    let sampler = {
        let platform = Arc::clone(&platform);
        std::thread::spawn(move || {
            let mut last = 0u64;
            for _ in 0..40 {
                let total: u64 = platform.admin.usage_report().iter().map(|l| l.units).sum();
                assert!(
                    total >= last,
                    "usage meter went backwards: {last} -> {total}"
                );
                last = total;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };

    for h in handles {
        h.join().expect("a stress thread panicked");
    }
    sampler.join().expect("sampler panicked");

    // after the dust settles: every bulk insert landed, in both tenants
    for (ti, tenant) in TENANTS.iter().enumerate() {
        let rows = platform
            .sql(tenant, &tokens[ti], "SELECT COUNT(id) FROM events")
            .unwrap();
        assert_eq!(
            rows.rows[0][0],
            odbis_storage::Value::Int((ROUNDS * 20) as i64),
            "{tenant} lost inserts"
        );
    }
    server.shutdown();
}

#[test]
fn many_clients_no_resets_no_5xx_clean_shutdown() {
    let platform = Arc::new(OdbisPlatform::new());
    platform
        .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = platform.login("acme", "root", "pw").unwrap();
    platform
        .sql("acme", &token, "CREATE TABLE hits (id INT, who TEXT)")
        .unwrap();
    platform
        .sql("acme", &token, "INSERT INTO hits VALUES (0, 'seed')")
        .unwrap();

    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4).unwrap();
    let addr = server.addr().to_string();

    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let addr = addr.clone();
        let token = token.clone();
        handles.push(std::thread::spawn(move || {
            let bearer = format!("Bearer {token}");
            for i in 0..REQUESTS_PER_CLIENT {
                let (status, body) = match i % 5 {
                    // unauthenticated surface
                    0 => http_get(&addr, "/api/v1/health").expect("health reset"),
                    1 => http_get(&addr, "/api/v1/metrics").expect("metrics reset"),
                    // authenticated write + read traffic
                    2 | 3 => {
                        let sql = if i % 5 == 2 {
                            format!(
                                "INSERT INTO hits VALUES ({}, 'c{client}')",
                                client * 1000 + i
                            )
                        } else {
                            "SELECT COUNT(id) FROM hits".to_string()
                        };
                        let (status, _, body) = http_request(
                            &addr,
                            "POST",
                            "/api/v1/sql",
                            &[("x-tenant", "acme"), ("Authorization", bearer.as_str())],
                            sql.as_bytes(),
                        )
                        .expect("sql reset");
                        (status, body)
                    }
                    // a client error: must be a clean 4xx envelope, not 5xx
                    _ => {
                        let (status, _, body) = http_request(
                            &addr,
                            "POST",
                            "/api/v1/sql",
                            &[("x-tenant", "acme"), ("Authorization", "Bearer forged")],
                            b"SELECT 1",
                        )
                        .expect("forged-token reset");
                        (status, body)
                    }
                };
                assert!(
                    status < 500,
                    "client {client} request {i}: got {status}: {body}"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("a client thread panicked");
    }

    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert!(
        server.requests_served() >= total,
        "served {} of {total} requests",
        server.requests_served()
    );

    // clean shutdown: all worker + accept threads join within bounded time
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );

    // and the writes all actually landed (4 requests per client are inserts)
    let inserts = (0..CLIENTS)
        .map(|_| (0..REQUESTS_PER_CLIENT).filter(|i| i % 5 == 2).count())
        .sum::<usize>();
    let rows = platform
        .sql("acme", &token, "SELECT COUNT(id) FROM hits")
        .unwrap();
    assert_eq!(
        rows.rows[0][0],
        odbis_storage::Value::Int((inserts + 1) as i64)
    );
}
