//! Differential harness for the columnar data plane: every query in the
//! corpus runs through the row-at-a-time executor and the vectorized
//! batch path, and the results must be identical — same columns, same
//! rows, same order.

use std::sync::Arc;

use odbis_bench::workloads;
use odbis_sql::{Engine, QueryResult};
use odbis_storage::Database;

/// A database mixing the generated healthcare star schema with a small
/// hand-built table exercising NULLs, booleans, dates, negative numbers
/// and mixed-case text.
fn corpus_db() -> Arc<Database> {
    let db = workloads::healthcare_db(500, 42);
    Engine::new()
        .execute_script(
            &db,
            "CREATE TABLE edge (id INT PRIMARY KEY, grp TEXT, val INT, score DOUBLE,
                                flag BOOLEAN, label TEXT, d DATE);
             CREATE INDEX idx_edge_val ON edge (val);
             INSERT INTO edge VALUES
               (1, 'a', 10, 1.5, TRUE, 'alpha', DATE '2020-01-01'),
               (2, 'a', NULL, 2.5, FALSE, 'beta', DATE '2020-02-01'),
               (3, 'b', 30, NULL, NULL, NULL, NULL),
               (4, NULL, 40, 4.0, TRUE, 'delta', DATE '2021-01-01'),
               (5, 'b', 0, 0.0, FALSE, 'Epsilon', DATE '2019-06-15'),
               (6, 'c', -7, -1.25, TRUE, 'zeta', DATE '2020-01-01');",
        )
        .expect("corpus DDL");
    Arc::new(db)
}

/// The query corpus: scans, filters with three-valued logic, expression
/// projections, string/date functions, IN/BETWEEN/LIKE/CASE, joins,
/// grouped aggregates with HAVING, DISTINCT, ORDER BY with LIMIT/OFFSET,
/// index-friendly point and range predicates, and FROM-less selects.
const CORPUS: &[&str] = &[
    // plain scans and projections
    "SELECT * FROM edge",
    "SELECT id, label FROM edge",
    "SELECT id, val * 2 AS double_val, score + 1.0 AS bumped FROM edge",
    "SELECT id, -val AS neg, NOT flag AS unflag FROM edge",
    "SELECT * FROM fact_admission",
    "SELECT id, cost, stay_days FROM fact_admission",
    // filters, including 3VL around NULLs
    "SELECT id FROM edge WHERE val > 5",
    "SELECT id FROM edge WHERE val > 5 AND score < 3.0",
    "SELECT id FROM edge WHERE val > 5 OR score IS NULL",
    "SELECT id FROM edge WHERE grp IS NULL",
    "SELECT id FROM edge WHERE grp IS NOT NULL AND flag",
    "SELECT id FROM edge WHERE NOT (val >= 10)",
    "SELECT id FROM edge WHERE val <> 0 AND 100 / val > 5",
    "SELECT id FROM fact_admission WHERE cost > 1500.0 AND stay_days < 10",
    "SELECT id FROM fact_admission WHERE year = 2009 AND month >= 6",
    // arithmetic mixing ints and floats
    "SELECT id, val + score AS mixed, val % 3 AS rem FROM edge WHERE val IS NOT NULL",
    "SELECT id, cost / stay_days AS per_day FROM fact_admission WHERE stay_days > 0",
    // LIKE / IN / BETWEEN / CASE
    "SELECT id FROM edge WHERE label LIKE '%eta'",
    "SELECT id FROM edge WHERE label LIKE '_lpha'",
    "SELECT id FROM edge WHERE grp IN ('a', 'c')",
    "SELECT id FROM edge WHERE val IN (10, NULL, 40)",
    "SELECT id FROM edge WHERE val BETWEEN 0 AND 30",
    "SELECT id, CASE WHEN val > 20 THEN 'big' WHEN val > 0 THEN 'small' ELSE 'other' END AS size FROM edge",
    "SELECT id, CASE WHEN val <> 0 THEN 100 / val ELSE 0 END AS guarded FROM edge WHERE val IS NOT NULL",
    // scalar functions
    "SELECT id, UPPER(label) AS up, LENGTH(label) AS n FROM edge",
    "SELECT id, COALESCE(grp, 'none') AS g FROM edge",
    "SELECT id, ABS(val) AS a, ROUND(score) AS r FROM edge",
    // date handling
    "SELECT id FROM edge WHERE d >= DATE '2020-01-01'",
    "SELECT id, d FROM edge WHERE d IS NOT NULL ORDER BY d, id",
    // joins
    "SELECT f.id, d.name FROM fact_admission f JOIN dim_department d ON f.dept_id = d.dept_id WHERE f.cost > 2000.0 ORDER BY f.id",
    "SELECT e.id, f.id FROM edge e JOIN fact_admission f ON e.id = f.id ORDER BY e.id",
    "SELECT e.id, e2.label FROM edge e LEFT JOIN edge e2 ON e.val = e2.val ORDER BY e.id, e2.id",
    // grouped aggregates
    "SELECT grp, COUNT(*) AS n FROM edge GROUP BY grp",
    "SELECT grp, COUNT(val) AS n, SUM(val) AS s, AVG(score) AS m FROM edge GROUP BY grp",
    "SELECT dept_id, COUNT(*) AS n, SUM(cost) AS total, AVG(cost) AS mean FROM fact_admission GROUP BY dept_id",
    "SELECT year, month, SUM(cost) AS total FROM fact_admission GROUP BY year, month ORDER BY year, month",
    "SELECT dept_id, SUM(cost) AS total FROM fact_admission GROUP BY dept_id HAVING SUM(cost) > 10000.0",
    "SELECT COUNT(*) AS n, MIN(cost) AS lo, MAX(cost) AS hi FROM fact_admission",
    "SELECT COUNT(DISTINCT dept_id) AS depts FROM fact_admission",
    "SELECT COUNT(*) AS n FROM edge WHERE val > 1000",
    // DISTINCT / ORDER BY / LIMIT / OFFSET
    "SELECT DISTINCT grp FROM edge",
    "SELECT DISTINCT year FROM fact_admission ORDER BY year",
    "SELECT id, cost FROM fact_admission ORDER BY cost DESC, id LIMIT 7",
    "SELECT id FROM fact_admission ORDER BY id LIMIT 5 OFFSET 490",
    "SELECT id FROM fact_admission ORDER BY id LIMIT 5 OFFSET 1000",
    // index-friendly predicates (point + range on PK / secondary index)
    "SELECT * FROM edge WHERE id = 3",
    "SELECT id FROM edge WHERE val >= 10 AND val <= 40 ORDER BY id",
    "SELECT id FROM fact_admission WHERE id BETWEEN 100 AND 110",
    // FROM-less
    "SELECT 1 + 2 AS three, UPPER('ok') AS ok",
];

fn assert_same(sql: &str, reference: &QueryResult, candidate: &QueryResult, label: &str) {
    assert_eq!(
        reference.columns, candidate.columns,
        "column mismatch ({label}) for: {sql}"
    );
    assert_eq!(
        reference.rows, candidate.rows,
        "row mismatch ({label}) for: {sql}"
    );
}

/// Like [`assert_same`] but tolerant of row order when the query has no
/// `ORDER BY` — used when reference and candidate run different plan
/// shapes (index scan vs table scan), where unordered results may come
/// back in different but equally valid orders.
fn assert_same_unordered(sql: &str, reference: &QueryResult, candidate: &QueryResult, label: &str) {
    if sql.to_ascii_uppercase().contains("ORDER BY") {
        return assert_same(sql, reference, candidate, label);
    }
    assert_eq!(
        reference.columns, candidate.columns,
        "column mismatch ({label}) for: {sql}"
    );
    let canonical = |r: &QueryResult| {
        let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(
        canonical(reference),
        canonical(candidate),
        "row multiset mismatch ({label}) for: {sql}"
    );
}

#[test]
fn vectorized_path_matches_row_path() {
    let db = corpus_db();
    let row_engine = Engine::with_row_execution();
    let vec_engine = Engine::new();
    for sql in CORPUS {
        let reference = row_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("row path failed for {sql}: {e}"));
        let candidate = vec_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("vectorized path failed for {sql}: {e}"));
        assert_same(sql, &reference, &candidate, "vectorized+indexes");
    }
}

#[test]
fn vectorized_path_matches_row_path_without_indexes() {
    // Index selection changes the plan shape (IndexScan vs filtered
    // TableScan); results must not depend on it on either path.
    let db = corpus_db();
    let row_engine = Engine::with_row_execution();
    let vec_engine = Engine::without_index_selection();
    for sql in CORPUS {
        let reference = row_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("row path failed for {sql}: {e}"));
        let candidate = vec_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("vectorized (no index) path failed for {sql}: {e}"));
        assert_same_unordered(sql, &reference, &candidate, "vectorized-no-indexes");
    }
}

#[test]
fn both_paths_agree_on_errors() {
    // The vectorized path may surface a *different* failing row than the
    // row-at-a-time path (it evaluates column-wise), so messages are not
    // compared — but whether a query errors must match.
    let db = corpus_db();
    let row_engine = Engine::with_row_execution();
    let vec_engine = Engine::new();
    let failing = [
        "SELECT 1 / 0",
        "SELECT id, 100 / val AS q FROM edge", // val = 0 on one row
        "SELECT -label FROM edge",             // negate text
        "SELECT id, val % 0 AS m FROM edge",   // modulo by zero
        "SELECT ghost FROM edge",              // unknown column
        "SELECT id FROM edge WHERE label + 1 > 0", // text arithmetic
    ];
    for sql in &failing {
        let row = row_engine.execute(&db, sql);
        let vec = vec_engine.execute(&db, sql);
        assert!(row.is_err(), "row path unexpectedly succeeded for: {sql}");
        assert!(
            vec.is_err(),
            "vectorized path unexpectedly succeeded for: {sql}"
        );
    }
}

#[test]
fn batch_entry_point_matches_row_pivoted_result() {
    let db = corpus_db();
    let engine = Engine::new();
    for sql in CORPUS.iter().filter(|s| s.starts_with("SELECT")) {
        let result = engine.execute(&db, sql).unwrap();
        let (columns, batch) = engine.execute_select_batch(&db, sql).unwrap();
        assert_eq!(result.columns, columns, "columns for: {sql}");
        assert_eq!(result.rows, batch.to_rows(), "rows for: {sql}");
    }
}
