//! Differential harness for the columnar data plane: every query in the
//! corpus runs through the row-at-a-time executor and the vectorized
//! batch path, and the results must be identical — same columns, same
//! rows, same order.

use std::sync::Arc;

use odbis_bench::workloads;
use odbis_sql::{Engine, QueryResult};
use odbis_storage::Database;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A database mixing the generated healthcare star schema with a small
/// hand-built table exercising NULLs, booleans, dates, negative numbers
/// and mixed-case text.
fn corpus_db() -> Arc<Database> {
    let db = workloads::healthcare_db(500, 42);
    Engine::new()
        .execute_script(
            &db,
            "CREATE TABLE edge (id INT PRIMARY KEY, grp TEXT, val INT, score DOUBLE,
                                flag BOOLEAN, label TEXT, d DATE);
             CREATE INDEX idx_edge_val ON edge (val);
             INSERT INTO edge VALUES
               (1, 'a', 10, 1.5, TRUE, 'alpha', DATE '2020-01-01'),
               (2, 'a', NULL, 2.5, FALSE, 'beta', DATE '2020-02-01'),
               (3, 'b', 30, NULL, NULL, NULL, NULL),
               (4, NULL, 40, 4.0, TRUE, 'delta', DATE '2021-01-01'),
               (5, 'b', 0, 0.0, FALSE, 'Epsilon', DATE '2019-06-15'),
               (6, 'c', -7, -1.25, TRUE, 'zeta', DATE '2020-01-01');",
        )
        .expect("corpus DDL");
    Arc::new(db)
}

/// The query corpus: scans, filters with three-valued logic, expression
/// projections, string/date functions, IN/BETWEEN/LIKE/CASE, joins,
/// grouped aggregates with HAVING, DISTINCT, ORDER BY with LIMIT/OFFSET,
/// index-friendly point and range predicates, and FROM-less selects.
const CORPUS: &[&str] = &[
    // plain scans and projections
    "SELECT * FROM edge",
    "SELECT id, label FROM edge",
    "SELECT id, val * 2 AS double_val, score + 1.0 AS bumped FROM edge",
    "SELECT id, -val AS neg, NOT flag AS unflag FROM edge",
    "SELECT * FROM fact_admission",
    "SELECT id, cost, stay_days FROM fact_admission",
    // filters, including 3VL around NULLs
    "SELECT id FROM edge WHERE val > 5",
    "SELECT id FROM edge WHERE val > 5 AND score < 3.0",
    "SELECT id FROM edge WHERE val > 5 OR score IS NULL",
    "SELECT id FROM edge WHERE grp IS NULL",
    "SELECT id FROM edge WHERE grp IS NOT NULL AND flag",
    "SELECT id FROM edge WHERE NOT (val >= 10)",
    "SELECT id FROM edge WHERE val <> 0 AND 100 / val > 5",
    "SELECT id FROM fact_admission WHERE cost > 1500.0 AND stay_days < 10",
    "SELECT id FROM fact_admission WHERE year = 2009 AND month >= 6",
    // arithmetic mixing ints and floats
    "SELECT id, val + score AS mixed, val % 3 AS rem FROM edge WHERE val IS NOT NULL",
    "SELECT id, cost / stay_days AS per_day FROM fact_admission WHERE stay_days > 0",
    // LIKE / IN / BETWEEN / CASE
    "SELECT id FROM edge WHERE label LIKE '%eta'",
    "SELECT id FROM edge WHERE label LIKE '_lpha'",
    "SELECT id FROM edge WHERE grp IN ('a', 'c')",
    "SELECT id FROM edge WHERE val IN (10, NULL, 40)",
    "SELECT id FROM edge WHERE val BETWEEN 0 AND 30",
    "SELECT id, CASE WHEN val > 20 THEN 'big' WHEN val > 0 THEN 'small' ELSE 'other' END AS size FROM edge",
    "SELECT id, CASE WHEN val <> 0 THEN 100 / val ELSE 0 END AS guarded FROM edge WHERE val IS NOT NULL",
    // scalar functions
    "SELECT id, UPPER(label) AS up, LENGTH(label) AS n FROM edge",
    "SELECT id, COALESCE(grp, 'none') AS g FROM edge",
    "SELECT id, ABS(val) AS a, ROUND(score) AS r FROM edge",
    // date handling
    "SELECT id FROM edge WHERE d >= DATE '2020-01-01'",
    "SELECT id, d FROM edge WHERE d IS NOT NULL ORDER BY d, id",
    // joins
    "SELECT f.id, d.name FROM fact_admission f JOIN dim_department d ON f.dept_id = d.dept_id WHERE f.cost > 2000.0 ORDER BY f.id",
    "SELECT e.id, f.id FROM edge e JOIN fact_admission f ON e.id = f.id ORDER BY e.id",
    "SELECT e.id, e2.label FROM edge e LEFT JOIN edge e2 ON e.val = e2.val ORDER BY e.id, e2.id",
    // grouped aggregates
    "SELECT grp, COUNT(*) AS n FROM edge GROUP BY grp",
    "SELECT grp, COUNT(val) AS n, SUM(val) AS s, AVG(score) AS m FROM edge GROUP BY grp",
    "SELECT dept_id, COUNT(*) AS n, SUM(cost) AS total, AVG(cost) AS mean FROM fact_admission GROUP BY dept_id",
    "SELECT year, month, SUM(cost) AS total FROM fact_admission GROUP BY year, month ORDER BY year, month",
    "SELECT dept_id, SUM(cost) AS total FROM fact_admission GROUP BY dept_id HAVING SUM(cost) > 10000.0",
    "SELECT COUNT(*) AS n, MIN(cost) AS lo, MAX(cost) AS hi FROM fact_admission",
    "SELECT COUNT(DISTINCT dept_id) AS depts FROM fact_admission",
    "SELECT COUNT(*) AS n FROM edge WHERE val > 1000",
    // DISTINCT / ORDER BY / LIMIT / OFFSET
    "SELECT DISTINCT grp FROM edge",
    "SELECT DISTINCT year FROM fact_admission ORDER BY year",
    "SELECT id, cost FROM fact_admission ORDER BY cost DESC, id LIMIT 7",
    "SELECT id FROM fact_admission ORDER BY id LIMIT 5 OFFSET 490",
    "SELECT id FROM fact_admission ORDER BY id LIMIT 5 OFFSET 1000",
    // index-friendly predicates (point + range on PK / secondary index)
    "SELECT * FROM edge WHERE id = 3",
    "SELECT id FROM edge WHERE val >= 10 AND val <= 40 ORDER BY id",
    "SELECT id FROM fact_admission WHERE id BETWEEN 100 AND 110",
    // FROM-less
    "SELECT 1 + 2 AS three, UPPER('ok') AS ok",
];

fn assert_same(sql: &str, reference: &QueryResult, candidate: &QueryResult, label: &str) {
    assert_eq!(
        reference.columns, candidate.columns,
        "column mismatch ({label}) for: {sql}"
    );
    assert_eq!(
        reference.rows, candidate.rows,
        "row mismatch ({label}) for: {sql}"
    );
}

/// Like [`assert_same`] but tolerant of row order when the query has no
/// `ORDER BY` — used when reference and candidate run different plan
/// shapes (index scan vs table scan), where unordered results may come
/// back in different but equally valid orders.
fn assert_same_unordered(sql: &str, reference: &QueryResult, candidate: &QueryResult, label: &str) {
    if sql.to_ascii_uppercase().contains("ORDER BY") {
        return assert_same(sql, reference, candidate, label);
    }
    assert_eq!(
        reference.columns, candidate.columns,
        "column mismatch ({label}) for: {sql}"
    );
    let canonical = |r: &QueryResult| {
        let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(
        canonical(reference),
        canonical(candidate),
        "row multiset mismatch ({label}) for: {sql}"
    );
}

#[test]
fn vectorized_path_matches_row_path() {
    let db = corpus_db();
    let row_engine = Engine::with_row_execution();
    let vec_engine = Engine::new();
    for sql in CORPUS {
        let reference = row_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("row path failed for {sql}: {e}"));
        let candidate = vec_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("vectorized path failed for {sql}: {e}"));
        assert_same(sql, &reference, &candidate, "vectorized+indexes");
    }
}

#[test]
fn vectorized_path_matches_row_path_without_indexes() {
    // Index selection changes the plan shape (IndexScan vs filtered
    // TableScan); results must not depend on it on either path.
    let db = corpus_db();
    let row_engine = Engine::with_row_execution();
    let vec_engine = Engine::without_index_selection();
    for sql in CORPUS {
        let reference = row_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("row path failed for {sql}: {e}"));
        let candidate = vec_engine
            .execute(&db, sql)
            .unwrap_or_else(|e| panic!("vectorized (no index) path failed for {sql}: {e}"));
        assert_same_unordered(sql, &reference, &candidate, "vectorized-no-indexes");
    }
}

#[test]
fn both_paths_agree_on_errors() {
    // The vectorized path may surface a *different* failing row than the
    // row-at-a-time path (it evaluates column-wise), so messages are not
    // compared — but whether a query errors must match.
    let db = corpus_db();
    let row_engine = Engine::with_row_execution();
    let vec_engine = Engine::new();
    let failing = [
        "SELECT 1 / 0",
        "SELECT id, 100 / val AS q FROM edge", // val = 0 on one row
        "SELECT -label FROM edge",             // negate text
        "SELECT id, val % 0 AS m FROM edge",   // modulo by zero
        "SELECT ghost FROM edge",              // unknown column
        "SELECT id FROM edge WHERE label + 1 > 0", // text arithmetic
    ];
    for sql in &failing {
        let row = row_engine.execute(&db, sql);
        let vec = vec_engine.execute(&db, sql);
        assert!(row.is_err(), "row path unexpectedly succeeded for: {sql}");
        assert!(
            vec.is_err(),
            "vectorized path unexpectedly succeeded for: {sql}"
        );
    }
}

// ---------------------------------------------------------------------------
// Seeded random-query generator: star-schema queries (joins, group-by,
// order/limit) checked across four engine configurations. The seeds are the
// chaos suite's replay constants — rerun a failure by grepping the printed
// query.
// ---------------------------------------------------------------------------

const GENERATOR_SEEDS: [u64; 2] = [3_405_691_582, 195_948_557];
const QUERIES_PER_SEED: usize = 60;

/// One random star-schema SELECT. Joins, filters, grouped aggregates and
/// ORDER BY/LIMIT are all drawn independently; column references are
/// qualified whenever the dimension table is in scope so nothing is
/// ambiguous.
fn gen_query(rng: &mut StdRng) -> String {
    let join = rng.random_bool(0.5);
    let group = rng.random_bool(0.5);

    let mut filters: Vec<String> = Vec::new();
    if rng.random_bool(0.6) {
        filters.push(format!("f.cost > {}.0", rng.random_range(500..2500i64)));
    }
    if rng.random_bool(0.4) {
        filters.push(format!("f.year = {}", rng.random_range(2008..=2010i64)));
    }
    if rng.random_bool(0.3) {
        let lo = rng.random_range(1..=10i64);
        filters.push(format!(
            "f.stay_days BETWEEN {lo} AND {}",
            lo + rng.random_range(0..=11i64)
        ));
    }
    if rng.random_bool(0.25) {
        filters.push(format!("f.dept_id = {}", rng.random_range(0..7i64)));
    }
    if join && rng.random_bool(0.3) {
        filters.push(format!("d.head_count > {}", rng.random_range(20..200i64)));
    }

    let from = if join {
        "fact_admission f JOIN dim_department d ON f.dept_id = d.dept_id"
    } else {
        "fact_admission f"
    };
    let where_clause = if filters.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", filters.join(" AND "))
    };

    if group {
        let keys: &[&str] = if join {
            &["d.name", "f.year", "f.month"]
        } else {
            &["f.dept_id", "f.year", "f.month"]
        };
        let n_keys = rng.random_range(1..=2usize);
        let mut chosen: Vec<&str> = Vec::new();
        while chosen.len() < n_keys {
            let k = keys[rng.random_range(0..keys.len())];
            if !chosen.contains(&k) {
                chosen.push(k);
            }
        }
        let aggs = [
            "COUNT(*) AS n",
            "SUM(f.cost) AS total",
            "AVG(f.cost) AS mean",
            "MIN(f.stay_days) AS lo",
            "MAX(f.stay_days) AS hi",
        ];
        let agg = aggs[rng.random_range(0..aggs.len())];
        let having = if rng.random_bool(0.25) {
            format!(" HAVING COUNT(*) > {}", rng.random_range(1..10i64))
        } else {
            String::new()
        };
        let key_list = chosen.join(", ");
        format!(
            "SELECT {key_list}, {agg} FROM {from}{where_clause} \
             GROUP BY {key_list}{having} ORDER BY {key_list}"
        )
    } else {
        let cols: &[&str] = if join {
            &["f.id", "f.cost", "f.stay_days", "d.name", "f.year"]
        } else {
            &["f.id", "f.cost", "f.stay_days", "f.dept_id", "f.year"]
        };
        let n_cols = rng.random_range(1..=3usize);
        let mut chosen: Vec<&str> = vec!["f.id"];
        while chosen.len() < n_cols {
            let c = cols[rng.random_range(0..cols.len())];
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        let limit = if rng.random_bool(0.5) {
            let mut l = format!(" LIMIT {}", rng.random_range(1..50i64));
            if rng.random_bool(0.4) {
                l.push_str(&format!(" OFFSET {}", rng.random_range(0..100i64)));
            }
            l
        } else {
            String::new()
        };
        format!(
            "SELECT {} FROM {from}{where_clause} ORDER BY f.id{limit}",
            chosen.join(", ")
        )
    }
}

/// Every generated query must agree across all four engine configurations:
/// row-at-a-time reference, serial vectorized, morsel-parallel vectorized,
/// and vectorized with the whole optimizer pipeline disabled.
#[test]
fn random_star_queries_agree_across_engine_configs() {
    let db = corpus_db();
    let row_engine = Engine::with_row_execution();
    let serial = Engine::new().with_parallelism(1);
    let parallel = Engine::new().with_parallelism(4);
    let unoptimized = Engine::new().with_optimizer_rules("none");
    for seed in GENERATOR_SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..QUERIES_PER_SEED {
            let sql = gen_query(&mut rng);
            let reference = row_engine
                .execute(&db, &sql)
                .unwrap_or_else(|e| panic!("row path failed (seed {seed}, #{i}) for {sql}: {e}"));
            for (engine, label) in [
                (&serial, "serial-vectorized"),
                (&parallel, "parallel-vectorized"),
                (&unoptimized, "optimizer-disabled"),
            ] {
                let candidate = engine.execute(&db, &sql).unwrap_or_else(|e| {
                    panic!("{label} failed (seed {seed}, #{i}) for {sql}: {e}")
                });
                assert_same_unordered(&sql, &reference, &candidate, label);
            }
        }
    }
}

/// Multi-morsel check: at 20k fact rows the scan splits into several
/// morsels, exercising the per-worker partial accumulators and the ordered
/// merge. Integer aggregates (COUNT/SUM-of-INT/MIN/MAX) must be *exactly*
/// equal across every configuration; float SUM/AVG are checked to a
/// relative tolerance because the merge-tree shape changes with the worker
/// count and float addition is not associative.
#[test]
fn multi_morsel_aggregates_agree_across_parallelism() {
    let db = Arc::new(workloads::healthcare_db(20_000, 11));
    let reference = Engine::new().with_parallelism(1);
    let exact_queries = [
        "SELECT dept_id, COUNT(*) AS n, SUM(stay_days) AS days, MIN(id) AS lo, MAX(id) AS hi \
         FROM fact_admission GROUP BY dept_id ORDER BY dept_id",
        "SELECT year, COUNT(*) AS n FROM fact_admission WHERE stay_days > 7 \
         GROUP BY year ORDER BY year",
    ];
    let float_queries = ["SELECT dept_id, SUM(cost) AS total, AVG(cost) AS mean \
         FROM fact_admission GROUP BY dept_id ORDER BY dept_id"];
    for workers in [2usize, 4, 8] {
        let engine = Engine::new().with_parallelism(workers);
        for sql in exact_queries {
            let expected = reference.execute(&db, sql).unwrap();
            let got = engine.execute(&db, sql).unwrap();
            assert_eq!(expected.rows, got.rows, "workers={workers} for: {sql}");
        }
        for sql in float_queries {
            let expected = reference.execute(&db, sql).unwrap();
            let got = engine.execute(&db, sql).unwrap();
            assert_eq!(
                expected.rows.len(),
                got.rows.len(),
                "workers={workers} for: {sql}"
            );
            for (e, g) in expected.rows.iter().zip(&got.rows) {
                for (a, b) in e.iter().zip(g) {
                    match (a, b) {
                        (odbis_storage::Value::Float(x), odbis_storage::Value::Float(y)) => {
                            let scale = x.abs().max(y.abs()).max(1.0);
                            assert!(
                                (x - y).abs() <= 1e-9 * scale,
                                "workers={workers}: {x} vs {y} for: {sql}"
                            );
                        }
                        _ => assert_eq!(a, b, "workers={workers} for: {sql}"),
                    }
                }
            }
        }
    }
}

#[test]
fn batch_entry_point_matches_row_pivoted_result() {
    let db = corpus_db();
    let engine = Engine::new();
    for sql in CORPUS.iter().filter(|s| s.starts_with("SELECT")) {
        let result = engine.execute(&db, sql).unwrap();
        let (columns, batch) = engine.execute_select_batch(&db, sql).unwrap();
        assert_eq!(result.columns, columns, "columns for: {sql}");
        assert_eq!(result.rows, batch.to_rows(), "rows for: {sql}");
    }
}
