//! E5 (Figure 5): every box of the ODBIS technical architecture has a
//! working substitute, exercised together in one wired scenario —
//! PostgreSQL→storage, JPA/Hibernate→ORM, JMI/MDR→metamodel repository,
//! Drools→rules, Spring integration→ESB, Spring Security→security,
//! JSF/Tomcat→web.

use std::sync::Arc;

use odbis_esb::{Endpoint, Message, MessageBus};
use odbis_metamodel::{cwm, AttrValue, ModelRepository};
use odbis_orm::{Entity, EntityMeta, OrmResult, Repository};
use odbis_rules::{tconst, tvar, Action, Fact, Pattern, Rule, RuleEngine, TestOp, WorkingMemory};
use odbis_security::{Role, SecurityManager};
use odbis_storage::{DataType, Database, Value};
use odbis_web::{http_get, HttpResponse, HttpServer, Method, Router};

/// A domain object persisted through the ORM (the domain-model layer of
/// Figure 4).
#[derive(Debug, Clone, PartialEq)]
struct ReportEntity {
    id: i64,
    name: String,
    owner: String,
}

impl Entity for ReportEntity {
    fn meta() -> EntityMeta {
        EntityMeta::new("Report", "reports")
            .id_field("id")
            .required_field("name", DataType::Text)
            .required_field("owner", DataType::Text)
    }
    fn to_row(&self) -> Vec<Value> {
        vec![
            Value::Int(self.id),
            Value::Text(self.name.clone()),
            Value::Text(self.owner.clone()),
        ]
    }
    fn from_row(row: &[Value]) -> OrmResult<Self> {
        Ok(ReportEntity {
            id: row[0].as_i64().unwrap_or_default(),
            name: row[1].as_str().unwrap_or_default().to_string(),
            owner: row[2].as_str().unwrap_or_default().to_string(),
        })
    }
}

#[test]
fn all_stack_boxes_work_together() {
    // -- data layer (PostgreSQL substitute) + persistence layer (JPA) -----
    let db = Arc::new(Database::new());
    let repo: Repository<ReportEntity> = Repository::new(Arc::clone(&db)).unwrap();
    repo.insert(&ReportEntity {
        id: 1,
        name: "monthly-costs".into(),
        owner: "ana".into(),
    })
    .unwrap();

    // -- domain model on CWM via the metamodel repository (JMI/MDR) -------
    let mut models = ModelRepository::new("stack", cwm::cwm());
    let col = models
        .create(
            "RelationalColumn",
            vec![("name", "cost".into()), ("sqlType", "DOUBLE".into())],
        )
        .unwrap();
    models
        .create(
            "RelationalTable",
            vec![
                ("name", "fact_costs".into()),
                ("columns", AttrValue::RefList(vec![col])),
            ],
        )
        .unwrap();
    assert!(models.validate().is_empty());

    // -- security (Spring Security substitute) ----------------------------
    let sm = Arc::new(SecurityManager::new());
    sm.create_role(Role::new("ROLE_VIEWER").grant("REPORT_VIEW"))
        .unwrap();
    sm.create_user("ana", "pw").unwrap();
    sm.assign_role("ana", "ROLE_VIEWER").unwrap();
    let session = sm.login("ana", "pw").unwrap();

    // -- business rules (Drools substitute): flag expensive reports -------
    let mut rules = RuleEngine::new();
    rules
        .add_rule(
            Rule::new("flag-expensive")
                .when(
                    Pattern::on("ReportRun")
                        .test("cost", TestOp::Gt, 1000i64)
                        .bind("r", "report"),
                )
                .then(Action::Assert {
                    fact_type: "Alert".into(),
                    fields: vec![
                        ("report".into(), tvar("r")),
                        ("level".into(), tconst("WARN")),
                    ],
                }),
        )
        .unwrap();
    let mut wm = WorkingMemory::new();
    wm.insert(
        Fact::new("ReportRun")
            .with("report", "monthly-costs")
            .with("cost", 2500i64),
    );
    let fired = rules.run(&mut wm).unwrap();
    assert_eq!(fired.firings(), 1);

    // -- ESB (Spring Integration substitute): alerts flow to an audit sink
    let bus = MessageBus::new();
    bus.create_channel("alerts").unwrap();
    let audit: Arc<std::sync::Mutex<Vec<String>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&audit);
    bus.subscribe(
        "alerts",
        Endpoint::ServiceActivator(Box::new(move |m| {
            sink.lock()
                .unwrap()
                .push(m.payload.as_text().unwrap_or("").to_string());
            Ok(())
        })),
    )
    .unwrap();
    for id in wm.ids_of_type("Alert").to_vec() {
        let alert = wm.get(id).unwrap();
        bus.send(
            "alerts",
            Message::text(format!("alert for {}", alert.get("report").render())),
        )
        .unwrap();
    }
    bus.pump().unwrap();
    assert_eq!(audit.lock().unwrap().len(), 1);

    // -- web tier (Tomcat/JSF substitute): serve the report over HTTP -----
    let mut router = Router::new();
    let web_sm = Arc::clone(&sm);
    let web_repo = repo.clone();
    router.filter(move |req| {
        let Some(token) = req.header("x-token").map(str::to_string) else {
            return Some(HttpResponse::unauthorized("x-token header required"));
        };
        match web_sm.authenticate(&token) {
            Ok(user) => {
                req.attributes.insert("user".into(), user);
                None
            }
            Err(_) => Some(HttpResponse::unauthorized("bad token")),
        }
    });
    router.route(Method::Get, "/reports/:id", move |req, params| {
        let id: i64 = match params["id"].parse() {
            Ok(i) => i,
            Err(_) => return HttpResponse::bad_request("bad id"),
        };
        match web_repo.find(id) {
            Ok(Some(r)) => HttpResponse::json(format!(
                "{{\"name\":\"{}\",\"owner\":\"{}\",\"viewer\":\"{}\"}}",
                r.name,
                r.owner,
                req.attributes.get("user").cloned().unwrap_or_default()
            )),
            Ok(None) => HttpResponse::not_found(),
            Err(e) => HttpResponse::server_error(&e.to_string()),
        }
    });
    let server = HttpServer::start(router, 2).unwrap();
    let addr = server.addr().to_string();
    // no token → 401 (filter short-circuit); the filter closure returns
    // None for missing header which falls through — so check real cases:
    let (status, body) = {
        let (s, _, b) = odbis_web::http_request(
            &addr,
            "GET",
            "/reports/1",
            &[("x-token", session.token.as_str())],
            b"",
        )
        .unwrap();
        (s, b)
    };
    assert_eq!(status, 200);
    assert!(body.contains("monthly-costs"));
    assert!(body.contains("\"viewer\":\"ana\""));
    // missing token header → rejected by the security filter
    let (status, _) = http_get(&addr, "/reports/1").unwrap();
    assert_eq!(status, 401);
    // authenticated but unknown id → 404 from the handler
    let (status, _, _) = odbis_web::http_request(
        &addr,
        "GET",
        "/reports/999",
        &[("x-token", session.token.as_str())],
        b"",
    )
    .unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}
