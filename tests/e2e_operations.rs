//! Operational end-to-end scenarios: scheduled ETL refresh feeding live
//! dashboards, warehouse snapshot/restore, and subscription bursting.

use std::sync::Arc;

use odbis_delivery::{Channel, ReportPayload};
use odbis_etl::{
    EtlJob, Extractor, JobRunner, JobScheduler, LoadMode, Loader, Schedule, Transform,
};
use odbis_metadata::{DataSet, DataSource, MetadataService};
use odbis_reporting::{Dashboard, KpiSpec, ReportingService, Widget};
use odbis_sql::Engine;
use odbis_storage::{load_snapshot, save_snapshot, Database, Value};

/// The nightly-refresh loop: a scheduled job rebuilds a mart; the
/// dashboard reads the mart through a data set and sees fresh numbers
/// after each tick.
#[test]
fn scheduled_refresh_feeds_live_dashboard() {
    let warehouse = Arc::new(Database::new());
    let engine = Engine::new();
    engine
        .execute_script(
            &warehouse,
            "CREATE TABLE raw (amount DOUBLE);
             INSERT INTO raw VALUES (10), (20);",
        )
        .unwrap();

    let runner = Arc::new(JobRunner::new(Arc::clone(&warehouse)));
    let scheduler = JobScheduler::new(Arc::clone(&runner));
    scheduler.schedule(
        EtlJob {
            name: "refresh-mart".into(),
            extractor: Extractor::Query("SELECT SUM(amount) AS total FROM raw".into()),
            transforms: vec![Transform::Derive {
                column: "total_cents".into(),
                expression: "total * 100".into(),
            }],
            loader: Loader {
                table: "mart_total".into(),
                mode: LoadMode::Replace,
            },
        },
        Schedule::Every(1),
    );
    scheduler.tick();

    let mds = Arc::new(MetadataService::new());
    mds.register_source(
        DataSource {
            name: "warehouse".into(),
            url: "odbis://wh".into(),
            user: "svc".into(),
            password: String::new(),
            driver: "odbis-storage".into(),
        },
        Arc::clone(&warehouse),
    )
    .unwrap();
    mds.define_dataset(DataSet {
        name: "headline".into(),
        source: "warehouse".into(),
        sql: "SELECT total, total_cents FROM mart_total".into(),
        description: String::new(),
    })
    .unwrap();
    let rs = ReportingService::new(mds);
    let dash = Dashboard {
        name: "ops".into(),
        title: "Ops".into(),
        rows: vec![vec![Widget::Kpi {
            dataset: "headline".into(),
            spec: KpiSpec {
                title: "Total".into(),
                value_column: "total".into(),
                unit: String::new(),
            },
        }]],
    };
    let before = rs.render_dashboard(&dash).unwrap();
    assert!(before.contains("30.0"), "{before}");

    // new raw data arrives; the next scheduled tick refreshes the mart
    engine
        .execute(&warehouse, "INSERT INTO raw VALUES (70)")
        .unwrap();
    scheduler.tick();
    let after = rs.render_dashboard(&dash).unwrap();
    assert!(after.contains("100.0"), "{after}");
    assert_eq!(scheduler.history("refresh-mart").len(), 2);
}

/// Checkpoint a tenant warehouse to disk and restore it byte-identically —
/// the platform's persistence story.
#[test]
fn warehouse_snapshot_round_trip() {
    let warehouse = Database::new();
    let engine = Engine::new();
    engine
        .execute_script(
            &warehouse,
            "CREATE TABLE facts (id INT PRIMARY KEY, v DOUBLE, label TEXT);
             CREATE INDEX ix_label ON facts (label);
             INSERT INTO facts VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, NULL, NULL);",
        )
        .unwrap();
    let path = std::env::temp_dir().join(format!("odbis-e2e-snap-{}.json", std::process::id()));
    save_snapshot(&warehouse, &path).unwrap();
    let restored = load_snapshot(&path).unwrap();
    assert_eq!(
        restored.scan("facts").unwrap(),
        warehouse.scan("facts").unwrap()
    );
    // secondary index was rebuilt and still answers queries via the planner
    let explain = engine
        .explain(&restored, "SELECT id FROM facts WHERE label = 'a'")
        .unwrap();
    assert!(explain.contains("IndexScan"), "{explain}");
    let r = engine
        .execute(&restored, "SELECT id FROM facts WHERE label = 'b'")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    // uniqueness survives the round trip
    assert!(engine
        .execute(&restored, "INSERT INTO facts VALUES (1, 9.9, 'dup')")
        .is_err());
    let _ = std::fs::remove_file(&path);
}

/// Subscription bursting: one report event fans out to every subscriber on
/// their preferred channel, with correct per-channel formats.
#[test]
fn burst_formats_per_channel() {
    let bus = Arc::new(odbis_esb::MessageBus::new());
    let ids = odbis_delivery::DeliveryService::new(bus).unwrap();
    ids.subscribe("ceo", "weekly", Channel::Email);
    ids.subscribe("analyst", "weekly", Channel::WebService);
    ids.subscribe("field-rep", "weekly", Channel::Mobile);
    ids.subscribe("accountant", "weekly", Channel::OfficeTool);

    let payload = ReportPayload {
        title: "Weekly numbers".into(),
        data: odbis_sql::QueryResult {
            columns: vec!["kpi".into(), "value".into()],
            rows: (0..30)
                .map(|i| vec![Value::from(format!("kpi{i}")), Value::Int(i)])
                .collect(),
            rows_affected: 0,
        },
    };
    assert_eq!(ids.burst("weekly", &payload).unwrap(), 4);
    let outbox = ids.outbox();
    assert_eq!(outbox.len(), 4);
    let by_user = |u: &str| {
        outbox
            .iter()
            .find(|e| e.user == u)
            .unwrap_or_else(|| panic!("missing delivery for {u}"))
    };
    assert!(by_user("ceo")
        .delivered
        .body
        .starts_with("== Weekly numbers =="));
    let api: serde_json::Value = serde_json::from_str(&by_user("analyst").delivered.body).unwrap();
    assert_eq!(api["rowCount"], 30);
    assert_eq!(api["truncated"], false);
    let mobile: serde_json::Value =
        serde_json::from_str(&by_user("field-rep").delivered.body).unwrap();
    assert_eq!(mobile["truncated"], true);
    assert_eq!(
        mobile["rows"].as_array().unwrap().len(),
        odbis_delivery::MOBILE_ROW_CAP
    );
    assert!(by_user("accountant")
        .delivered
        .body
        .starts_with("kpi,value\n"));
}
