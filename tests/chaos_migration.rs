//! Migration chaos suite: live tenant migration driven under injected
//! faults at every protocol phase (`migrate.*` failpoints) plus the
//! storage sites the shipped bytes travel through, with concurrent
//! acked writes in flight. The cluster-level invariants, asserted
//! throughout:
//!
//! 1. **No acknowledged write is lost** — every SQL write acknowledged
//!    `Ok`, before or during a migration (failed or successful), is
//!    present on whichever node owns the tenant afterwards.
//! 2. **Abort keeps source ownership** — a fault at any phase before
//!    the cutover flip leaves the source owning and serving the tenant,
//!    the target without a workspace, and the staging directory wiped.
//! 3. **No double-ownership window** — at no observable point do both
//!    nodes hold a workspace for the tenant.
//! 4. **Metering stays monotonic across the move** — the cluster-wide
//!    usage sum never decreases (counters are per-node and never copied,
//!    so the sum is the invoiceable quantity).
//! 5. **Failures are structured** — an aborted migration surfaces as a
//!    typed platform error (a retryable 503 over HTTP), never a panic
//!    or a wedged fence.
//!
//! Each test prints its seed; rerun with `ODBIS_CHAOS_SEED=<seed>`.
//! CI pins seeds 3405691582 and 195948557 (same as the storage suite).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use odbis::{Cluster, OdbisPlatform};
use odbis_storage::Value;
use odbis_tenancy::SubscriptionPlan;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "odbis-chaos-mig-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seed() -> u64 {
    std::env::var("ODBIS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0DB15C4A05)
}

const TENANT: &str = "acme";

/// A two-node cluster with the tenant provisioned (identity everywhere,
/// workspace on the map's owner) and a logged-in admin token.
fn boot_cluster(
    root: &std::path::Path,
) -> (
    Arc<Cluster>,
    Arc<OdbisPlatform>,
    Arc<OdbisPlatform>,
    String,
    String,
) {
    let fabric = Cluster::new();
    let a = fabric.add_node("node-a", root.join("a")).unwrap();
    let b = fabric.add_node("node-b", root.join("b")).unwrap();
    let owner = fabric
        .provision_tenant(TENANT, "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let (src, dst) = if owner == "node-a" {
        (Arc::clone(&a), Arc::clone(&b))
    } else {
        (Arc::clone(&b), Arc::clone(&a))
    };
    let token = src.login(TENANT, "root", "pw").unwrap();
    (fabric, src, dst, token, owner)
}

/// Ids visible in table `t` on `p` (empty when the table — or the whole
/// workspace — is not there).
fn present_ids(p: &OdbisPlatform, token: &str) -> BTreeSet<i64> {
    match p.sql(TENANT, token, "SELECT id FROM t") {
        Ok(r) => r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Int(v) => *v,
                other => panic!("non-int id: {other:?}"),
            })
            .collect(),
        Err(_) => BTreeSet::new(),
    }
}

/// Cluster-wide metered units for the tenant: the sum over both nodes.
/// Neither side resets at cutover, so this is the monotonic quantity.
fn cluster_units(nodes: &[&OdbisPlatform]) -> u64 {
    nodes
        .iter()
        .flat_map(|p| p.admin.usage_report())
        .filter(|l| l.tenant == TENANT)
        .map(|l| l.units)
        .sum()
}

/// Insert one row, returning whether the platform acknowledged it.
fn insert(p: &OdbisPlatform, token: &str, id: i64) -> bool {
    p.sql(TENANT, token, &format!("INSERT INTO t VALUES ({id})"))
        .is_ok()
}

/// Every pre-cutover phase, in protocol order. `migrate.finalize` is
/// deliberately absent: it runs after the flip and is best-effort.
const ABORT_PHASES: [&str; 7] = [
    "migrate.begin",
    "migrate.checkpoint",
    "migrate.ship.image",
    "migrate.ship.tail",
    "migrate.drain",
    "migrate.import",
    "migrate.cutover",
];

/// A migration aborted at every single phase leaves the source owning
/// and serving every acknowledged write, the target empty, and the
/// fence released (proved by writing again after each abort).
#[test]
fn abort_at_every_phase_keeps_source_ownership_and_all_acked_writes() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let root = tmp_dir("abort");
    let (fabric, src, dst, token, owner) = boot_cluster(&root);
    let dst_id = if owner == "node-a" { "node-b" } else { "node-a" };

    src.sql(TENANT, &token, "CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap();
    let mut shadow: BTreeSet<i64> = BTreeSet::new();
    let mut next_id = 0i64;
    for _ in 0..10 {
        assert!(insert(&src, &token, next_id));
        shadow.insert(next_id);
        next_id += 1;
    }
    let mut floor = cluster_units(&[&src, &dst]);

    for site in ABORT_PHASES {
        odbis_chaos::apply_spec(&format!("{site}=return-err")).unwrap();
        let err = fabric
            .migrate(TENANT, dst_id)
            .expect_err(&format!("{site} fault must abort the migration"));
        // structured + retryable: the HTTP layer renders this as a 503
        assert_eq!(err.http_status(), 503, "{site}: {err:?}");
        odbis_chaos::clear();

        // source still owns and serves; target never saw the tenant
        assert_eq!(fabric.map().owner(TENANT).unwrap(), owner, "{site}");
        assert!(src.workspace(TENANT).is_ok(), "{site}: source detached");
        assert!(
            dst.workspace(TENANT).is_err(),
            "{site}: double ownership — target has a workspace after abort"
        );
        assert_eq!(present_ids(&src, &token), shadow, "{site}: lost writes");
        // staging is wiped so a half-copy can never be recovered later
        assert!(
            !dst.data_dir().unwrap().join(TENANT).exists(),
            "{site}: staging directory left behind"
        );
        // the fence must be released: the very next write is acknowledged
        assert!(insert(&src, &token, next_id), "{site}: fence wedged");
        shadow.insert(next_id);
        next_id += 1;
        let units = cluster_units(&[&src, &dst]);
        assert!(units >= floor, "{site}: metering went backwards");
        floor = units;
    }

    // with the faults gone the same migration succeeds, carries every
    // acknowledged write, and a finalize fault cannot un-happen it
    odbis_chaos::apply_spec("migrate.finalize=return-err").unwrap();
    let report = fabric.migrate(TENANT, dst_id).unwrap();
    odbis_chaos::clear();
    assert_eq!(report.to, dst_id);
    assert_eq!(fabric.map().owner(TENANT).unwrap(), dst_id);
    assert!(src.workspace(TENANT).is_err(), "source still attached");
    assert_eq!(present_ids(&dst, &token), shadow, "writes lost in the move");
    let units = cluster_units(&[&src, &dst]);
    assert!(units >= floor, "metering went backwards across the cutover");

    let _ = std::fs::remove_dir_all(&root);
}

/// Writer threads race a live migration: each thread resolves the
/// current owner through the shared map before every insert, retries
/// the handful of requests that land in the cutover window, and records
/// only acknowledged ids. Zero acked writes may be missing afterwards.
#[test]
fn concurrent_writers_lose_nothing_across_a_live_migration() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let root = tmp_dir("load");
    let (fabric, src, _dst, token, owner) = boot_cluster(&root);
    let dst_id = if owner == "node-a" { "node-b" } else { "node-a" };
    src.sql(TENANT, &token, "CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap();

    let acked: Arc<std::sync::Mutex<BTreeSet<i64>>> = Arc::default();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..3i64)
        .map(|w| {
            let fabric = Arc::clone(&fabric);
            let token = token.clone();
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut id = w * 1_000_000;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // route like the shard filter does: map → owner node
                    let ok = fabric
                        .map()
                        .owner(TENANT)
                        .and_then(|n| fabric.node(&n))
                        .map(|p| insert(&p, &token, id))
                        .unwrap_or(false);
                    if ok {
                        acked.lock().unwrap().insert(id);
                    }
                    // a miss here is a request caught mid-cutover (old
                    // owner already detached); the client retries a new
                    // id — the protocol only promises *acked* durability
                    id += 1;
                }
            })
        })
        .collect();

    // let the writers get going, then move the tenant under them
    while acked.lock().unwrap().len() < 50 {
        std::thread::yield_now();
    }
    let report = fabric.migrate(TENANT, dst_id).unwrap();
    assert_eq!(report.to, dst_id);
    // keep writing on the new owner for a bit before stopping
    let after_flip = acked.lock().unwrap().len();
    while acked.lock().unwrap().len() < after_flip + 50 {
        std::thread::yield_now();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    let new_owner = fabric.node(dst_id).unwrap();
    let present = present_ids(&new_owner, &token);
    let acked = acked.lock().unwrap();
    let lost: Vec<_> = acked.difference(&present).collect();
    assert!(lost.is_empty(), "acked writes lost in migration: {lost:?}");
    assert!(acked.len() >= 100, "load generator barely ran");

    let _ = std::fs::remove_dir_all(&root);
}

/// A tenant checkpoint that lands between the ship phase and the drain
/// truncates the WAL at a newer cut, so the frames acked in between
/// exist only in the newer checkpoint artifact — not in the shipped
/// image, not in the final tail. The protocol must detect the advanced
/// stamp under the fence and re-ship the image, or those acked writes
/// are silently dropped at cutover.
#[test]
fn checkpoint_racing_the_ship_phase_loses_no_acked_writes() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let root = tmp_dir("ckpt-race");
    let (fabric, src, dst, token, owner) = boot_cluster(&root);
    let dst_id = if owner == "node-a" { "node-b" } else { "node-a" };

    src.sql(TENANT, &token, "CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap();
    let mut shadow: BTreeSet<i64> = BTreeSet::new();
    for id in 0..10 {
        assert!(insert(&src, &token, id));
        shadow.insert(id);
    }

    // park the migration between staging the warm-up copy and taking the
    // drain fence — the widest version of the window the race needs
    odbis_chaos::apply_spec("migrate.drain=delay(600)").unwrap();
    let migration = {
        let fabric = Arc::clone(&fabric);
        std::thread::spawn(move || fabric.migrate(TENANT, dst_id))
    };
    // while it sleeps: acknowledge more writes, then checkpoint — the
    // WAL is truncated past them, so only a re-shipped image carries them
    std::thread::sleep(std::time::Duration::from_millis(150));
    for id in 100..110 {
        assert!(insert(&src, &token, id));
        shadow.insert(id);
    }
    src.checkpoint_tenant(TENANT, &token).unwrap();

    let report = migration.join().unwrap().unwrap();
    odbis_chaos::clear();
    assert_eq!(report.to, dst_id);
    assert_eq!(fabric.map().owner(TENANT).unwrap(), dst_id);
    assert!(
        report.checkpoint_lsn > 0,
        "the re-shipped image must carry the racing checkpoint's stamp"
    );
    assert_eq!(
        present_ids(&dst, &token),
        shadow,
        "writes acked during the ship phase were dropped at cutover"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// Seeded ping-pong migrations under probabilistic faults on every
/// migration phase plus the WAL sites the shipped bytes cross, with
/// writes interleaved between attempts. Attempts repeat (bounded) until
/// one lands — transient faults abort, they must never corrupt.
fn run_migration_case(case: &str, spec_template: &str, rounds: usize, seed: u64) {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    eprintln!("chaos-migration case {case} seed={seed} (rerun: ODBIS_CHAOS_SEED={seed})");
    let root = tmp_dir(case);
    let (fabric, src, dst, token, owner) = boot_cluster(&root);
    let mut rng = StdRng::seed_from_u64(seed);

    src.sql(TENANT, &token, "CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap();
    let mut shadow: BTreeSet<i64> = BTreeSet::new();
    let mut attempted: BTreeSet<i64> = BTreeSet::new();
    let mut next_id = 0i64;
    let mut floor = 0u64;
    // home holds the workspace right now; away is the migration target
    let (mut home, mut away) = (Arc::clone(&src), Arc::clone(&dst));
    let mut away_id = if owner == "node-a" { "node-b" } else { "node-a" };

    for round in 0..rounds {
        let spec = spec_template.replace("{r}", &rng.random_range(1..u64::MAX >> 1).to_string());
        odbis_chaos::apply_spec(&spec).unwrap();

        // interleave writes with (possibly failing) migration attempts
        let mut migrated = false;
        for burst in 0..24 {
            for _ in 0..rng.random_range(1..4) {
                attempted.insert(next_id);
                if insert(&home, &token, next_id) {
                    shadow.insert(next_id);
                }
                next_id += 1;
            }
            if !migrated && burst % 6 == 5 {
                match fabric.migrate(TENANT, away_id) {
                    Ok(report) => {
                        assert_eq!(report.to, away_id, "round {round}");
                        migrated = true;
                        std::mem::swap(&mut home, &mut away);
                    }
                    Err(e) => {
                        // an abort is a structured, retryable failure...
                        assert_eq!(e.http_status(), 503, "round {round}: {e:?}");
                        // ...that leaves exactly one owner serving
                        assert!(home.workspace(TENANT).is_ok(), "round {round}");
                        assert!(away.workspace(TENANT).is_err(), "round {round}");
                    }
                }
            }
        }
        odbis_chaos::clear();
        if !migrated {
            // faults blocked every attempt this round: one clean retry
            // must land (chaos is off now)
            fabric.migrate(TENANT, away_id).unwrap();
            std::mem::swap(&mut home, &mut away);
        }
        away_id = if away_id == "node-a" { "node-b" } else { "node-a" };

        // invariants at the end of every round
        let present = present_ids(&home, &token);
        assert!(
            present.is_superset(&shadow),
            "round {round}: acked writes lost: {:?}",
            shadow.difference(&present).collect::<Vec<_>>()
        );
        assert!(
            present.is_subset(&attempted),
            "round {round}: phantom rows appeared"
        );
        assert!(
            away.workspace(TENANT).is_err(),
            "round {round}: double ownership after round"
        );
        let units = cluster_units(&[&src, &dst]);
        assert!(units >= floor, "round {round}: metering went backwards");
        floor = units;
        // unacknowledged writes with an ambiguous commit point (a fault
        // hit after the WAL frame went down) are now settled by what the
        // move carried: adopt reality into the shadow
        shadow = present;
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn migration_survives_phase_faults_under_load() {
    run_migration_case(
        "phases",
        "migrate.drain=err-with-prob(0.4,{r});migrate.cutover=err-with-prob(0.3,{r});migrate.import=err-with-prob(0.3,{r})",
        3,
        seed(),
    );
}

#[test]
fn migration_survives_transport_and_wal_faults() {
    run_migration_case(
        "transport",
        "migrate.ship.image=err-with-prob(0.3,{r});migrate.ship.tail=err-with-prob(0.3,{r});wal.write=err-with-prob(0.05,{r})",
        3,
        seed(),
    );
}

#[test]
fn migration_survives_checkpoint_and_export_faults() {
    run_migration_case(
        "checkpoint",
        "migrate.checkpoint=err-with-prob(0.4,{r});checkpoint.begin=err-every-nth(3);migrate.export.image=err-with-prob(0.2,{r});migrate.export.tail=err-with-prob(0.2,{r})",
        3,
        seed(),
    );
}

/// Heavier sweep for the CI chaos job: the matrix under derived seeds.
/// `cargo test --test chaos_migration -- --ignored`.
#[test]
#[ignore]
fn chaos_migration_sweep_many_seeds() {
    let base = seed();
    for i in 0..3u64 {
        let s = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        run_migration_case(
            "sweep-phases",
            "migrate.drain=err-with-prob(0.4,{r});migrate.cutover=err-with-prob(0.3,{r})",
            2,
            s,
        );
        run_migration_case(
            "sweep-transport",
            "migrate.ship.image=err-with-prob(0.3,{r});wal.write=err-with-prob(0.05,{r})",
            2,
            s,
        );
    }
}
