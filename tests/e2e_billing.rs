//! C2 (§2 claim): "costs are directly aligned with usage" — metering is
//! exact (billed units = actual service activity) and invoices follow the
//! pay-as-you-go plan math.

use odbis::OdbisPlatform;
use odbis_metadata::DataSet;
use odbis_tenancy::{Invoice, ServiceKind, SubscriptionPlan};

#[test]
fn billed_units_match_actual_service_calls_exactly() {
    let p = OdbisPlatform::new();
    p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
        .unwrap();
    let token = p.login("acme", "root", "pw").unwrap();

    // a known workload: 1 DDL + 10 inserts + 1 dataset definition + 5 runs
    p.sql("acme", &token, "CREATE TABLE events (id INT, v INT)")
        .unwrap();
    for i in 0..10 {
        p.sql(
            "acme",
            &token,
            &format!("INSERT INTO events VALUES ({i}, {i})"),
        )
        .unwrap();
    }
    p.define_dataset(
        "acme",
        &token,
        DataSet {
            name: "all_events".into(),
            source: "warehouse".into(),
            sql: "SELECT id, v FROM events".into(),
            description: String::new(),
        },
    )
    .unwrap();
    for _ in 0..5 {
        p.execute_dataset("acme", &token, "all_events").unwrap();
    }

    // expected MDS units:
    //   1 DDL statement (1 call + 0 rows)            = 1
    //   10 inserts x (1 call + 1 row affected)       = 20
    //   1 dataset definition                         = 1
    //   5 dataset runs x (1 call + 10 rows)          = 55
    let expected = 1 + 20 + 1 + 5 * 11;
    assert_eq!(
        p.admin.meter().usage("acme", ServiceKind::Metadata),
        expected
    );

    // plan math: under the allowance, the invoice is exactly the base fee
    let invoices = p.admin.billing_run();
    assert_eq!(invoices.len(), 1);
    assert_eq!(invoices[0].units, expected);
    assert_eq!(invoices[0].overage_cents, 0);
    assert_eq!(invoices[0].total_cents, 9_900);
}

#[test]
fn overage_is_billed_and_cost_is_monotonic_in_usage() {
    let plan = SubscriptionPlan::standard();
    let mut last = 0;
    for units in [0u64, 50_000, 100_000, 100_001, 150_000, 1_000_000] {
        let invoice = Invoice::compute("t", &plan, units);
        assert!(
            invoice.total_cents >= last,
            "cost must not decrease with usage"
        );
        assert_eq!(
            invoice.total_cents,
            invoice.base_cents + invoice.overage_cents
        );
        last = invoice.total_cents;
    }
    // crossing the allowance starts charging
    let at = Invoice::compute("t", &plan, plan.included_units);
    let over = Invoice::compute("t", &plan, plan.included_units + 10_000);
    assert_eq!(at.overage_cents, 0);
    assert!(over.overage_cents > 0);
}

#[test]
fn billing_periods_are_disjoint() {
    let p = OdbisPlatform::new();
    p.provision_tenant("t", "T", SubscriptionPlan::standard(), "a", "pw")
        .unwrap();
    let token = p.login("t", "a", "pw").unwrap();
    p.sql("t", &token, "CREATE TABLE x (a INT)").unwrap();
    let first = p.admin.billing_run();
    assert!(first[0].units > 0);
    // the meter was reset: an immediate second run bills zero units
    let second = p.admin.billing_run();
    assert_eq!(second[0].units, 0);
    assert_eq!(second[0].total_cents, second[0].base_cents);
}
