//! C3 (§3.1 claim): the core BI services are *integrated* over shared
//! metadata — a DataSet defined once in the MDS is reused by the
//! integration, analysis and reporting services without redefinition.

use std::sync::Arc;

use odbis_etl::{EtlJob, Extractor, JobRunner, LoadMode, Loader, Transform};
use odbis_metadata::{DataSet, DataSource, Glossary, MetadataService};
use odbis_olap::{
    Aggregator, CubeDef, CubeEngine, CubeQuery, DimensionDef, LevelDef, LevelRef, MeasureDef,
};
use odbis_reporting::{ChartKind, ChartSpec, Dashboard, ReportingService, TableSpec, Widget};
use odbis_sql::Engine;
use odbis_storage::{Database, Value};

#[test]
fn one_dataset_feeds_etl_olap_and_reporting() {
    // shared technical resources: one warehouse
    let warehouse = Arc::new(Database::new());
    Engine::new()
        .execute_script(
            &warehouse,
            "CREATE TABLE raw_sales (region TEXT, amount DOUBLE, y INT);
             INSERT INTO raw_sales VALUES
               ('EU', 10, 2009), ('EU', 20, 2010), ('US', 30, 2010), ('EU', -1, 2010);",
        )
        .unwrap();

    // MDS: the single shared definition layer
    let mds = Arc::new(MetadataService::new());
    mds.register_source(
        DataSource {
            name: "warehouse".into(),
            url: "odbis://wh".into(),
            user: "svc".into(),
            password: "p".into(),
            driver: "odbis-storage".into(),
        },
        Arc::clone(&warehouse),
    )
    .unwrap();
    mds.define_dataset(DataSet {
        name: "clean_sales".into(),
        source: "warehouse".into(),
        sql: "SELECT region, amount, y FROM raw_sales WHERE amount > 0".into(),
        description: "validated sales".into(),
    })
    .unwrap();

    // IS reuses the data set as its extractor (via the MDS-stored SQL)
    let ds = mds.dataset("clean_sales").unwrap();
    let runner = JobRunner::new(Arc::clone(&warehouse));
    let report = runner
        .run(&EtlJob {
            name: "load-mart".into(),
            extractor: Extractor::Query(ds.sql.clone()),
            transforms: vec![Transform::Derive {
                column: "amount_cents".into(),
                expression: "amount * 100".into(),
            }],
            loader: Loader {
                table: "mart_sales".into(),
                mode: LoadMode::Replace,
            },
        })
        .unwrap();
    assert_eq!(report.extracted, 3); // negative row filtered by the dataset
    assert_eq!(report.loaded, 3);

    // AS builds a cube over the ETL-loaded mart
    let cube = CubeDef {
        name: "mart".into(),
        fact_table: "mart_sales".into(),
        dimensions: vec![
            DimensionDef {
                name: "geo".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![LevelDef {
                    name: "region".into(),
                    column: "region".into(),
                }],
            },
            DimensionDef {
                name: "time".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![LevelDef {
                    name: "year".into(),
                    column: "y".into(),
                }],
            },
        ],
        measures: vec![MeasureDef {
            name: "revenue".into(),
            column: "amount".into(),
            aggregator: Aggregator::Sum,
        }],
    };
    cube.validate(&warehouse).unwrap();
    let engine = CubeEngine::new(Arc::clone(&warehouse));
    let cells = engine
        .query(
            &cube,
            &CubeQuery {
                axes: vec![LevelRef::new("geo", "region")],
                slices: vec![],
                measures: vec!["revenue".into()],
            },
        )
        .unwrap();
    assert_eq!(cells.cell(&["EU".into()]).unwrap(), &[Value::Float(30.0)]);

    // the cube aggregation agrees with the SQL view of the same data set
    let sql_total = Engine::new()
        .execute(
            &warehouse,
            "SELECT SUM(amount) FROM mart_sales WHERE region = 'EU'",
        )
        .unwrap();
    assert_eq!(sql_total.rows[0][0], Value::Float(30.0));

    // RS renders a dashboard over the *same* data set, by name
    let rs = ReportingService::new(Arc::clone(&mds));
    let dashboard = Dashboard {
        name: "sales".into(),
        title: "Shared-metadata dashboard".into(),
        rows: vec![vec![
            Widget::Chart {
                dataset: "clean_sales".into(),
                spec: ChartSpec {
                    title: "Sales".into(),
                    kind: ChartKind::Bar,
                    category: "region".into(),
                    series: vec!["amount".into()],
                },
            },
            Widget::Table {
                dataset: "clean_sales".into(),
                spec: TableSpec {
                    title: "Rows".into(),
                    columns: vec![],
                    max_rows: None,
                },
            },
        ]],
    };
    let html = rs.render_dashboard(&dashboard).unwrap();
    assert!(html.contains("<svg"));
    assert!(html.contains("odbis-table"));

    // the business glossary links the business term to the same data set
    let mut glossary = Glossary::new();
    glossary
        .define_term(
            "Net Sales",
            "validated sales after filtering",
            Some("clean_sales"),
        )
        .unwrap();
    assert_eq!(glossary.mapped_dataset("Net Sales").unwrap(), "clean_sales");

    // lineage ties the shared data set back to the raw table
    assert_eq!(mds.lineage("clean_sales").unwrap(), vec!["raw_sales"]);
    // and search finds it from the business description
    assert!(!mds.search("validated").is_empty());
}
