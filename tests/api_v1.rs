//! Versioned-API + telemetry-spine end-to-end: drive every service of the
//! platform (SQL, ETL, OLAP/MDX, reporting, delivery) through the gate,
//! then read the telemetry back out through the `/api/v1` surface — the
//! Prometheus metrics scrape and the pay-as-you-go invoice.

use std::sync::Arc;

use odbis::{build_router, OdbisPlatform};
use odbis_delivery::Channel;
use odbis_metadata::DataSet;
use odbis_olap::{Aggregator, CubeDef, DimensionDef, LevelDef, MeasureDef};
use odbis_reporting::{Dashboard, KpiSpec, Widget};
use odbis_sql::QueryResult;
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_get, http_request, HttpServer};

fn auth(
    addr: &str,
    method: &str,
    path: &str,
    token: &str,
    body: &str,
) -> (u16, std::collections::BTreeMap<String, String>, String) {
    let bearer = format!("Bearer {token}");
    http_request(
        addr,
        method,
        path,
        &[("x-tenant", "clinic"), ("Authorization", bearer.as_str())],
        body.as_bytes(),
    )
    .unwrap()
}

/// Provision a tenant and push one request through every platform service
/// so each ServiceKind accrues both meter units and telemetry.
fn drive_traffic(platform: &Arc<OdbisPlatform>) -> String {
    platform
        .provision_tenant(
            "clinic",
            "City Clinic",
            SubscriptionPlan::standard(),
            "cio",
            "pw",
        )
        .unwrap();
    let token = platform.login("clinic", "cio", "pw").unwrap();

    // MDS: SQL + data set
    platform
        .sql(
            "clinic",
            &token,
            "CREATE TABLE admissions (dept TEXT, year INT, cost DOUBLE)",
        )
        .unwrap();
    platform
        .sql(
            "clinic",
            &token,
            "INSERT INTO admissions VALUES ('Cardiology', 2010, 1200), ('Oncology', 2010, 3400), ('Cardiology', 2009, 800)",
        )
        .unwrap();
    platform
        .define_dataset(
            "clinic",
            &token,
            DataSet {
                name: "total_cost".into(),
                source: "warehouse".into(),
                sql: "SELECT SUM(cost) AS total FROM admissions".into(),
                description: String::new(),
            },
        )
        .unwrap();
    platform
        .execute_dataset("clinic", &token, "total_cost")
        .unwrap();

    // IS: an ETL job loading a CSV extract
    platform
        .run_etl(
            "clinic",
            &token,
            &odbis_etl::EtlJob {
                name: "load-referrals".into(),
                extractor: odbis_etl::Extractor::Csv("dept,n\nCardiology,4\nOncology,2\n".into()),
                transforms: vec![],
                loader: odbis_etl::Loader {
                    table: "referrals".into(),
                    mode: odbis_etl::LoadMode::Replace,
                },
            },
        )
        .unwrap();

    // AS: cube + MDX
    platform
        .register_cube(
            "clinic",
            &token,
            CubeDef {
                name: "adm".into(),
                fact_table: "admissions".into(),
                dimensions: vec![DimensionDef {
                    name: "org".into(),
                    table: None,
                    fact_fk: String::new(),
                    dim_key: String::new(),
                    levels: vec![LevelDef {
                        name: "dept".into(),
                        column: "dept".into(),
                    }],
                }],
                measures: vec![MeasureDef {
                    name: "cost".into(),
                    column: "cost".into(),
                    aggregator: Aggregator::Sum,
                }],
            },
        )
        .unwrap();
    platform
        .mdx("clinic", &token, "SELECT cost BY org.dept FROM adm")
        .unwrap();

    // RS: a dashboard over the data set
    platform
        .render_dashboard(
            "clinic",
            &token,
            &Dashboard {
                name: "exec".into(),
                title: "Exec".into(),
                rows: vec![vec![Widget::Kpi {
                    dataset: "total_cost".into(),
                    spec: KpiSpec {
                        title: "Total cost".into(),
                        value_column: "total".into(),
                        unit: "€".into(),
                    },
                }]],
            },
        )
        .unwrap();

    // IDS: deliver a payload by e-mail
    platform
        .deliver(
            "clinic",
            &token,
            "cio",
            "exec",
            Channel::Email,
            &odbis_delivery::ReportPayload {
                title: "Exec".into(),
                data: QueryResult {
                    columns: vec!["total".into()],
                    rows: vec![vec![odbis_storage::Value::Float(5400.0)]],
                    rows_affected: 0,
                },
            },
        )
        .unwrap();

    token
}

#[test]
fn metrics_scrape_covers_every_service() {
    let platform = Arc::new(OdbisPlatform::new());
    drive_traffic(&platform);
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    // the scrape is public (monitoring agents hold no tenant session)
    let (status, body) = http_get(&addr, "/api/v1/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE odbis_requests_total counter"));
    assert!(body.contains("# TYPE odbis_latency_seconds histogram"));
    // every gate service shows up with the tenant label
    for service in ["MDS", "IS", "AS", "RS", "IDS"] {
        assert!(
            body.contains(&format!("tenant=\"clinic\",service=\"{service}\"")),
            "metrics must cover service {service}: {body}"
        );
    }
    // the layer-level child spans are labelled too
    assert!(body.contains("service=\"sql\""));
    // rows flowed through the SQL layer
    assert!(body.contains("odbis_rows_total"));
    server.shutdown();
}

#[test]
fn invoice_prices_all_services_and_needs_admin() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    let (status, _, body) = auth(&addr, "GET", "/api/v1/admin/invoice", &token, "");
    assert_eq!(status, 200);
    let lines: serde_json::Value = serde_json::from_str(&body).unwrap();
    let lines = lines.as_array().unwrap().clone();
    for service in ["MDS", "IS", "AS", "RS", "IDS"] {
        let line = lines
            .iter()
            .find(|l| l["tenant"] == "clinic" && l["service"] == service)
            .unwrap_or_else(|| panic!("invoice must have a {service} line: {body}"));
        assert!(line["millicents"].as_i64().unwrap() > 0);
        assert!(line["requests"].as_i64().unwrap() >= 1);
    }

    // a non-admin analyst cannot read invoices
    platform
        .create_user("clinic", &token, "analyst", "pw", "ROLE_ANALYST")
        .unwrap();
    let analyst = platform.login("clinic", "analyst", "pw").unwrap();
    let (status, _, body) = auth(&addr, "GET", "/api/v1/admin/invoice", &analyst, "");
    assert_eq!(status, 403);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["kind"], "security");
    server.shutdown();
}

#[test]
fn api_v1_and_legacy_paths_serve_the_same_routes() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    // the canonical path answers without deprecation headers
    let (status, headers, v1_body) = auth(&addr, "GET", "/api/v1/datasets", &token, "");
    assert_eq!(status, 200);
    assert!(!headers.contains_key("deprecation"));

    // the legacy alias returns the same payload, flagged deprecated
    let (status, headers, legacy_body) = auth(&addr, "GET", "/datasets", &token, "");
    assert_eq!(status, 200);
    assert_eq!(headers.get("deprecation").map(String::as_str), Some("true"));
    assert!(headers["link"].contains("/api/v1/datasets"));
    assert_eq!(v1_body, legacy_body);

    // JSON login on the canonical path
    let (status, _, body) = http_request(
        &addr,
        "POST",
        "/api/v1/login",
        &[],
        b"{\"tenant\":\"clinic\",\"user\":\"cio\",\"password\":\"pw\"}",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("token"));

    // the error envelope rides the versioned surface: unknown data set is 404
    let (status, _, body) = auth(&addr, "GET", "/api/v1/datasets/ghost", &token, "");
    assert_eq!(status, 404);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["kind"], "not_found");
    server.shutdown();
}

#[test]
fn self_description_index_advertises_the_route_table() {
    let platform = Arc::new(OdbisPlatform::new());
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    // the index is public: clients discover the surface before they log in
    let (status, body) = http_get(&addr, "/api/v1").unwrap();
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["api"], "v1");
    let routes = v["routes"].as_array().unwrap();

    let find = |method: &str, path: &str| {
        routes
            .iter()
            .find(|r| r["method"] == method && r["path"] == path)
            .unwrap_or_else(|| panic!("index must list {method} {path}: {body}"))
    };
    // canonical routes advertise their auth requirement
    assert_eq!(find("GET", "/api/v1/health")["auth"], "public");
    assert_eq!(find("GET", "/api/v1/datasets")["auth"], "DATASET_RUN");
    assert_eq!(find("POST", "/api/v1/sql")["auth"], "ETL_DESIGN");
    assert_eq!(find("GET", "/api/v1/admin/slowlog")["auth"], "ADMIN_USERS");
    assert_eq!(
        find("POST", "/api/v1/admin/failpoints")["auth"],
        "ADMIN_CONFIG"
    );
    assert_eq!(find("GET", "/api/v1/datasets")["deprecated"], false);
    // legacy aliases are flagged deprecated and point at their successor
    let legacy = find("GET", "/datasets");
    assert_eq!(legacy["deprecated"], true);
    assert_eq!(legacy["successor"], "/api/v1/datasets");
    // the index lists itself
    assert_eq!(find("GET", "/api/v1")["auth"], "public");

    // every advertised canonical GET route actually resolves (anything but
    // 404/405 proves the route is wired; most answer 401 without a session)
    for r in routes.iter().filter(|r| r["method"] == "GET") {
        let path = r["path"].as_str().unwrap();
        if path.contains(':') {
            continue; // parameterized paths need a concrete segment
        }
        let (status, _) = http_get(&addr, path).unwrap();
        assert!(
            status != 404 && status != 405,
            "advertised route GET {path} is not wired: {status}"
        );
    }
    server.shutdown();
}

#[test]
fn collection_pagination_pages_and_validates_cursors() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    // four more data sets on top of drive_traffic's `total_cost`
    for i in 0..4 {
        platform
            .define_dataset(
                "clinic",
                &token,
                DataSet {
                    name: format!("extra_{i}"),
                    source: "warehouse".into(),
                    sql: "SELECT dept FROM admissions".into(),
                    description: String::new(),
                },
            )
            .unwrap();
    }
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    // unpaged keeps the original bare-array shape
    let (status, _, body) = auth(&addr, "GET", "/api/v1/datasets", &token, "");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v.as_array().unwrap().len(), 5, "bare shape: {body}");

    // paged: walk the whole collection two items at a time
    let mut seen = Vec::new();
    let mut cursor = String::new();
    loop {
        let path = if cursor.is_empty() {
            "/api/v1/datasets?limit=2".to_string()
        } else {
            format!("/api/v1/datasets?limit=2&cursor={cursor}")
        };
        let (status, _, body) = auth(&addr, "GET", &path, &token, "");
        assert_eq!(status, 200, "{path}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let items = v["items"].as_array().unwrap();
        assert!(items.len() <= 2);
        seen.extend(items.iter().map(|i| i.as_str().unwrap().to_string()));
        match v["next_cursor"].as_str() {
            Some(c) => cursor = c.to_string(),
            None => break,
        }
    }
    assert_eq!(
        seen.len(),
        5,
        "pagination lost or duplicated items: {seen:?}"
    );

    // a cursor past the end is an empty page, not an error
    let (status, _, body) = auth(&addr, "GET", "/api/v1/datasets?cursor=999", &token, "");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(v["items"].as_array().unwrap().is_empty());
    assert!(v["next_cursor"].is_null());

    // malformed cursor and out-of-range limit are 400 envelopes
    for path in [
        "/api/v1/datasets?cursor=abc",
        "/api/v1/datasets?limit=0",
        "/api/v1/datasets?limit=100000",
    ] {
        let (status, _, body) = auth(&addr, "GET", path, &token, "");
        assert_eq!(status, 400, "{path}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["kind"], "bad_request", "{path}: {body}");
        assert!(
            v["error"]["request_id"]
                .as_str()
                .is_some_and(|s| !s.is_empty()),
            "envelope must carry the request id: {body}"
        );
    }

    // the same paging contract holds on the admin collections
    let (status, _, body) = auth(&addr, "GET", "/api/v1/admin/usage?limit=3", &token, "");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(v["items"].as_array().unwrap().len() <= 3, "{body}");
    server.shutdown();
}

#[test]
fn request_ids_ride_responses_envelopes_and_the_slowlog() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    // everything slower than 0ms is "slow": every traced call lands in the log
    platform
        .admin
        .config
        .set_for_tenant("clinic", "telemetry.slow_ms", 1i64.into())
        .unwrap();
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();
    let bearer = format!("Bearer {token}");

    // a client-supplied id is adopted and echoed
    let mut insert = String::from("INSERT INTO admissions VALUES ('Gen', 2012, 1)");
    for i in 0..20_000 {
        insert.push_str(&format!(", ('Gen', 2012, {i})"));
    }
    let (status, headers, _) = http_request(
        &addr,
        "POST",
        "/api/v1/sql",
        &[
            ("x-tenant", "clinic"),
            ("Authorization", bearer.as_str()),
            ("X-Request-Id", "e2e-slow-insert-1"),
        ],
        insert.as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("x-request-id").map(String::as_str),
        Some("e2e-slow-insert-1")
    );

    // ... and shows up on the slow-log entry for that statement
    let (status, _, body) = auth(&addr, "GET", "/api/v1/admin/slowlog", &token, "");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    let entries = v.as_array().unwrap();
    assert!(
        entries
            .iter()
            .any(|e| e["requestId"] == "e2e-slow-insert-1"),
        "slow log must link the request id: {body}"
    );

    // a request without an id gets a minted one, echoed on the response
    let (_, headers, _) = auth(&addr, "GET", "/api/v1/datasets", &token, "");
    let minted = headers.get("x-request-id").expect("id must be minted");
    assert!(minted.starts_with("req-"), "minted id: {minted}");

    // error envelopes embed the id that the response header carries
    let (status, headers, body) = http_request(
        &addr,
        "GET",
        "/api/v1/datasets/ghost",
        &[
            ("x-tenant", "clinic"),
            ("Authorization", bearer.as_str()),
            ("X-Request-Id", "e2e-miss-7"),
        ],
        b"",
    )
    .unwrap();
    assert_eq!(status, 404);
    assert_eq!(
        headers.get("x-request-id").map(String::as_str),
        Some("e2e-miss-7")
    );
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["request_id"], "e2e-miss-7", "{body}");
    server.shutdown();
}

#[test]
fn dataset_downloads_negotiate_csv_and_json() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();
    let bearer = format!("Bearer {token}");
    let hdrs = |accept: &'static str| {
        [
            ("x-tenant", "clinic"),
            ("Authorization", bearer.as_str()),
            ("Accept", accept),
        ]
    };

    // text/csv streams straight from the columnar batch
    let (status, headers, body) = http_request(
        &addr,
        "GET",
        "/api/v1/datasets/total_cost",
        &hdrs("text/csv"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(headers["content-type"].starts_with("text/csv"));
    assert_eq!(body, "total\r\n5400.0\r\n");

    // JSON stays the default shape
    let (status, headers, body) = http_request(
        &addr,
        "GET",
        "/api/v1/datasets/total_cost",
        &hdrs("application/json"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(headers["content-type"].starts_with("application/json"));
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["columns"][0], "total");

    // an unsupported type is a 406 envelope, not a silent JSON fallback
    let (status, _, body) = http_request(
        &addr,
        "GET",
        "/api/v1/datasets/total_cost",
        &hdrs("application/xml"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 406, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["kind"], "not_acceptable");

    // a missing data set under CSV negotiation still errors as JSON envelope
    let (status, _, body) = http_request(
        &addr,
        "GET",
        "/api/v1/datasets/ghost",
        &hdrs("text/csv"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 404);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["kind"], "not_found");
    server.shutdown();
}

#[test]
fn slowlog_endpoint_exposes_slow_operations() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    // retroactively making everything >1ms slow: run one more heavy statement
    platform
        .admin
        .config
        .set_for_tenant("clinic", "telemetry.slow_ms", 1i64.into())
        .unwrap();
    let mut insert = String::from("INSERT INTO admissions VALUES ('Generated', 2011, 1)");
    for i in 0..20_000 {
        insert.push_str(&format!(", ('Generated', 2011, {i})"));
    }
    platform.sql("clinic", &token, &insert).unwrap();

    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();
    let (status, _, body) = auth(&addr, "GET", "/api/v1/admin/slowlog", &token, "");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    let entries = v.as_array().unwrap();
    assert!(!entries.is_empty(), "slow log must have entries: {body}");
    assert_eq!(entries[0]["tenant"], "clinic");
    assert!(entries[0]["durationMicros"].as_i64().unwrap() >= 1000);
    server.shutdown();
}

// --------------------------------------------------------------- watch API
//
// `GET /api/v1/datasets/:name/watch`: long-poll push delivery. The client
// passes the version cursor from its previous poll; the response is 200
// `{"dataset","changed":true,"cursor"}` as soon as any table the dataset
// reads changes past that cursor, or 204 with the client's own cursor
// echoed when the timeout lapses. Both shapes carry `X-Watch-Cursor`.

#[test]
fn watch_long_poll_returns_when_a_watched_table_changes() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    // park strictly after "now": past writes must not complete this poll
    let hub = Arc::clone(&platform.workspace("clinic").unwrap().watch);
    let cursor = hub.cursor();
    let poller = {
        let addr = addr.clone();
        let token = token.clone();
        std::thread::spawn(move || {
            auth(
                &addr,
                "GET",
                &format!("/api/v1/datasets/total_cost/watch?cursor={cursor}&timeout_ms=10000"),
                &token,
                "",
            )
        })
    };
    // wait until the watcher is actually parked, then commit a write to
    // the table the dataset reads
    for _ in 0..200 {
        if hub.parked() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(hub.parked() > 0, "watcher never parked");
    platform
        .sql(
            "clinic",
            &token,
            "INSERT INTO admissions VALUES ('Radiology', 2011, 500)",
        )
        .unwrap();

    let (status, headers, body) = poller.join().unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["dataset"], "total_cost");
    assert_eq!(v["changed"], true);
    let new_cursor = v["cursor"].as_u64().unwrap();
    assert!(new_cursor > cursor, "cursor must advance past {cursor}");
    assert_eq!(headers["x-watch-cursor"], new_cursor.to_string());
    server.shutdown();
}

#[test]
fn watch_cursor_replays_a_missed_update_without_parking() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    // the update happens while no watcher is connected…
    platform
        .sql(
            "clinic",
            &token,
            "INSERT INTO admissions VALUES ('Neurology', 2012, 900)",
        )
        .unwrap();
    // …and a poll from an older cursor replays it immediately (cursor 0 =
    // "anything ever"), long before the 10 s timeout
    let started = std::time::Instant::now();
    let (status, headers, body) = auth(
        &addr,
        "GET",
        "/api/v1/datasets/total_cost/watch?cursor=0&timeout_ms=10000",
        &token,
        "",
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "replay must not park"
    );
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["changed"], true);
    let replayed = v["cursor"].as_u64().unwrap();
    assert!(replayed > 0);
    assert_eq!(headers["x-watch-cursor"], replayed.to_string());

    // polling again from the replayed cursor finds nothing new: 204 with
    // the same cursor echoed back
    let (status, headers, body) = auth(
        &addr,
        "GET",
        &format!("/api/v1/datasets/total_cost/watch?cursor={replayed}&timeout_ms=100"),
        &token,
        "",
    );
    assert_eq!(status, 204, "{body}");
    assert!(body.is_empty(), "a timeout response has no body: {body}");
    assert_eq!(headers["x-watch-cursor"], replayed.to_string());
    server.shutdown();
}

#[test]
fn watch_rejects_bad_parameters_and_unknown_datasets() {
    let platform = Arc::new(OdbisPlatform::new());
    let token = drive_traffic(&platform);
    let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
    let addr = server.addr().to_string();

    for (path, kind, status) in [
        (
            "/api/v1/datasets/total_cost/watch?cursor=abc",
            "bad_request",
            400,
        ),
        (
            "/api/v1/datasets/total_cost/watch?timeout_ms=3600000",
            "bad_request",
            400,
        ),
        (
            "/api/v1/datasets/ghost/watch?timeout_ms=50",
            "not_found",
            404,
        ),
    ] {
        let (got, _, body) = auth(&addr, "GET", path, &token, "");
        assert_eq!(got, status, "{path}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["kind"], kind, "{path}");
    }
    server.shutdown();
}

// ------------------------------------------------- watch across migration
//
// The migration contract for watchers: version cursors are per-node. A
// client that kept polling across a migration carries a cursor from the
// source node's hub, which may be *ahead* of the target's fresh counter.
// Such a poll must not park until timeout — the hub answers immediately
// with `changed: true` and its own authoritative cursor, so the client
// re-reads the dataset once and is resynchronized. (Datasets themselves
// are ephemeral metadata, re-registered after a move exactly as after a
// node restart; the warehouse and the session token both migrate.)

#[test]
fn watch_contract_across_live_migration() {
    let mut root = std::env::temp_dir();
    root.push(format!("odbis-api-v1-migrate-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let fabric = odbis::Cluster::new();
    let node_a = fabric.add_node("node-a", root.join("a")).unwrap();
    let node_b = fabric.add_node("node-b", root.join("b")).unwrap();
    let srv_a = HttpServer::start(build_router(Arc::clone(&node_a)), 2).unwrap();
    let srv_b = HttpServer::start(build_router(Arc::clone(&node_b)), 2).unwrap();
    fabric.map().set_addr("node-a", &srv_a.addr().to_string());
    fabric.map().set_addr("node-b", &srv_b.addr().to_string());

    let owner = fabric
        .provision_tenant(
            "clinic",
            "City Clinic",
            SubscriptionPlan::standard(),
            "cio",
            "pw",
        )
        .unwrap();
    let (src, dst, src_addr, dst_id) = if owner == "node-a" {
        (
            Arc::clone(&node_a),
            Arc::clone(&node_b),
            srv_a.addr().to_string(),
            "node-b",
        )
    } else {
        (
            Arc::clone(&node_b),
            Arc::clone(&node_a),
            srv_b.addr().to_string(),
            "node-a",
        )
    };
    let token = src.login("clinic", "cio", "pw").unwrap();
    let dataset = DataSet {
        name: "total_cost".into(),
        source: "warehouse".into(),
        sql: "SELECT SUM(cost) AS total FROM admissions".into(),
        description: String::new(),
    };
    src.sql(
        "clinic",
        &token,
        "CREATE TABLE admissions (dept TEXT, year INT, cost DOUBLE)",
    )
    .unwrap();
    src.sql(
        "clinic",
        &token,
        "INSERT INTO admissions VALUES ('Cardiology', 2010, 1200)",
    )
    .unwrap();
    src.define_dataset("clinic", &token, dataset.clone()).unwrap();

    // the client's cursor, minted on the source hub: strictly positive
    let (status, _, body) = auth(
        &src_addr,
        "GET",
        "/api/v1/datasets/total_cost/watch?cursor=0&timeout_ms=10000",
        &token,
        "",
    );
    assert_eq!(status, 200, "{body}");
    let carried: u64 = serde_json::from_str::<serde_json::Value>(&body).unwrap()["cursor"]
        .as_u64()
        .unwrap();
    assert!(carried > 0);

    // live-migrate the tenant, then re-register the ephemeral dataset on
    // the new owner (same contract as after a restart) with the SAME
    // token — sessions were adopted by the target realm
    let report = fabric.migrate("clinic", dst_id).unwrap();
    assert_eq!(report.to, dst_id);
    dst.define_dataset("clinic", &token, dataset).unwrap();

    // the carried cursor is ahead of the target's fresh hub: the poll
    // (sent to the OLD node, which now proxies to the new owner) must
    // answer immediately with the authoritative cursor, not park 10 s
    let started = std::time::Instant::now();
    let (status, headers, body) = auth(
        &src_addr,
        "GET",
        &format!("/api/v1/datasets/total_cost/watch?cursor={carried}&timeout_ms=10000"),
        &token,
        "",
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "a future cursor must not park until timeout"
    );
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["changed"], true, "resync is signalled as a change");
    let resynced = v["cursor"].as_u64().unwrap();
    assert!(resynced < carried, "authoritative cursor comes from the target");
    assert_eq!(headers["x-watch-cursor"], resynced.to_string());

    // from the authoritative cursor the protocol is back to normal: a
    // write through the old address reaches the new owner and wakes the
    // watcher with a cursor above the resynced one
    let hub = Arc::clone(&dst.workspace("clinic").unwrap().watch);
    let poller = {
        let src_addr = src_addr.clone();
        let token = token.clone();
        std::thread::spawn(move || {
            auth(
                &src_addr,
                "GET",
                &format!(
                    "/api/v1/datasets/total_cost/watch?cursor={resynced}&timeout_ms=9000"
                ),
                &token,
                "",
            )
        })
    };
    for _ in 0..400 {
        if hub.parked() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(hub.parked() > 0, "watcher never parked on the target hub");
    let (status, _, body) = auth(
        &src_addr,
        "POST",
        "/api/v1/sql",
        &token,
        "INSERT INTO admissions VALUES ('Oncology', 2011, 700)",
    );
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = poller.join().unwrap();
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["changed"], true);
    assert!(v["cursor"].as_u64().unwrap() > resynced);

    srv_a.shutdown();
    srv_b.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

// A request that clears the shard-router filter just before a migration
// cutover flip resumes with the workspace already detached from the node
// it landed on. The dispatch must not surface a raw tenancy error: the
// gated call re-checks the cluster route under the fence and answers
// 307 with a Location at the new owner, so the client replays the very
// same request there.

#[test]
fn request_racing_a_cutover_gets_a_redirect_not_an_error() {
    let _x = odbis_chaos::exclusive();
    odbis_chaos::clear();
    let mut root = std::env::temp_dir();
    root.push(format!("odbis-api-v1-cutover-307-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let fabric = odbis::Cluster::new();
    let node_a = fabric.add_node("node-a", root.join("a")).unwrap();
    let node_b = fabric.add_node("node-b", root.join("b")).unwrap();
    let srv_a = HttpServer::start(build_router(Arc::clone(&node_a)), 2).unwrap();
    let srv_b = HttpServer::start(build_router(Arc::clone(&node_b)), 2).unwrap();
    fabric.map().set_addr("node-a", &srv_a.addr().to_string());
    fabric.map().set_addr("node-b", &srv_b.addr().to_string());
    let owner = fabric
        .provision_tenant(
            "clinic",
            "City Clinic",
            SubscriptionPlan::standard(),
            "cio",
            "pw",
        )
        .unwrap();
    let (src, dst, src_addr, dst_addr, dst_id) = if owner == "node-a" {
        (
            Arc::clone(&node_a),
            Arc::clone(&node_b),
            srv_a.addr().to_string(),
            srv_b.addr().to_string(),
            "node-b",
        )
    } else {
        (
            Arc::clone(&node_b),
            Arc::clone(&node_a),
            srv_b.addr().to_string(),
            srv_a.addr().to_string(),
            "node-a",
        )
    };
    let token = src.login("clinic", "cio", "pw").unwrap();
    src.sql("clinic", &token, "CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap();

    // park gated dispatches between the routing filter and the fence,
    // pinning the in-flight request inside the cutover window
    odbis_chaos::apply_spec("platform.fence=delay(600)").unwrap();
    let racer = {
        let src_addr = src_addr.clone();
        let token = token.clone();
        std::thread::spawn(move || {
            auth(&src_addr, "POST", "/api/v1/sql", &token, "INSERT INTO t VALUES (7)")
        })
    };
    // the filter routes the request Local, then it sleeps; flip ownership
    // underneath it
    std::thread::sleep(std::time::Duration::from_millis(150));
    let report = fabric.migrate("clinic", dst_id).unwrap();
    assert_eq!(report.to, dst_id);

    let (status, headers, body) = racer.join().unwrap();
    odbis_chaos::clear();
    assert_eq!(status, 307, "stale dispatch must redirect, got: {body}");
    assert_eq!(headers["x-odbis-owner"], dst_id);
    assert_eq!(headers["location"], format!("http://{dst_addr}/api/v1/sql"));
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["kind"], "moved");

    // replaying the same request at the Location target succeeds, and
    // the row is the new owner's
    let (status, _, body) = auth(
        &dst_addr,
        "POST",
        "/api/v1/sql",
        &token,
        "INSERT INTO t VALUES (7)",
    );
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = auth(&dst_addr, "POST", "/api/v1/sql", &token, "SELECT id FROM t");
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["rows"].as_array().unwrap().len(), 1);
    assert!(dst.workspace("clinic").is_ok());

    srv_a.shutdown();
    srv_b.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
