//! Differential harness for incremental view maintenance: seeded random
//! insert/load/mutate sequences run against randomly-shaped materialized
//! aggregates, and after *every* step the delta-maintained cells must
//! equal a from-scratch rebuild — integers exactly, floats to a 1e-9
//! relative tolerance. The AVG measure rides along in the shape pool so
//! its SUM+COUNT decomposition is exercised throughout, and dedicated
//! tests pin the decomposition and the forced-rebuild fallback path.
//!
//! The seeds are the chaos suite's replay constants; a failure prints the
//! seed, sequence and step so it can be replayed exactly.

use std::sync::Arc;

use odbis_olap::{
    AggregateCache, Aggregator, CellSet, CubeDef, CubeEngine, CubeQuery, DimensionDef, LevelDef,
    LevelRef, MaterializedAggregate, MeasureDef, TableDelta,
};
use odbis_sql::Engine;
use odbis_storage::{Database, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SEEDS: [u64; 2] = [3_405_691_582, 195_948_557];
/// Sequences per seed — ≥100 total across both seeds.
const SEQUENCES_PER_SEED: usize = 60;
/// Warehouse writes per sequence, each followed by a full differential
/// check of every registered aggregate.
const STEPS_PER_SEQUENCE: usize = 6;

// ---------------------------------------------------------------- schema

fn star_db() -> Database {
    let db = Database::new();
    Engine::new()
        .execute_script(
            &db,
            "CREATE TABLE dim_store (store_id INT PRIMARY KEY, region TEXT, country TEXT, city TEXT);
             CREATE TABLE fact_sales (id INT PRIMARY KEY, store_id INT, year INT, month INT, amount DOUBLE, qty INT);
             INSERT INTO dim_store VALUES
               (1, 'EU', 'FR', 'Paris'), (2, 'EU', 'DE', 'Berlin'), (3, 'US', 'US', 'NYC');",
        )
        .expect("star schema DDL");
    db
}

/// The cube over [`star_db`], under a caller-chosen name so each random
/// shape is addressable in the cache independently.
fn star_cube(name: &str) -> CubeDef {
    CubeDef {
        name: name.into(),
        fact_table: "fact_sales".into(),
        dimensions: vec![
            DimensionDef {
                name: "store".into(),
                table: Some("dim_store".into()),
                fact_fk: "store_id".into(),
                dim_key: "store_id".into(),
                levels: vec![
                    LevelDef {
                        name: "region".into(),
                        column: "region".into(),
                    },
                    LevelDef {
                        name: "city".into(),
                        column: "city".into(),
                    },
                ],
            },
            DimensionDef {
                name: "time".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![
                    LevelDef {
                        name: "year".into(),
                        column: "year".into(),
                    },
                    LevelDef {
                        name: "month".into(),
                        column: "month".into(),
                    },
                ],
            },
        ],
        measures: vec![
            MeasureDef {
                name: "revenue".into(),
                column: "amount".into(),
                aggregator: Aggregator::Sum,
            },
            MeasureDef {
                name: "units".into(),
                column: "qty".into(),
                aggregator: Aggregator::Sum,
            },
            MeasureDef {
                name: "orders".into(),
                column: "id".into(),
                aggregator: Aggregator::Count,
            },
            MeasureDef {
                name: "peak".into(),
                column: "amount".into(),
                aggregator: Aggregator::Max,
            },
            MeasureDef {
                name: "low".into(),
                column: "qty".into(),
                aggregator: Aggregator::Min,
            },
            MeasureDef {
                name: "avg_amount".into(),
                column: "amount".into(),
                aggregator: Aggregator::Avg,
            },
        ],
    }
}

// ------------------------------------------------------------ generators

const AXIS_POOL: [(&str, &str); 4] = [
    ("time", "year"),
    ("time", "month"),
    ("store", "region"),
    ("store", "city"),
];
const MEASURE_POOL: [&str; 6] = ["revenue", "units", "orders", "peak", "low", "avg_amount"];

/// One random preagg shape: 1–3 distinct axes (snowflaked and degenerate
/// mixed freely) and 1–3 distinct measures drawn from the full aggregator
/// set, AVG included.
fn gen_shape(rng: &mut StdRng) -> (Vec<LevelRef>, Vec<String>) {
    let n_axes = rng.random_range(1..=3usize);
    let mut axes: Vec<LevelRef> = Vec::new();
    while axes.len() < n_axes {
        let (d, l) = AXIS_POOL[rng.random_range(0..AXIS_POOL.len())];
        if !axes.iter().any(|a| a.dimension == d && a.level == l) {
            axes.push(LevelRef::new(d, l));
        }
    }
    let n_measures = rng.random_range(1..=3usize);
    let mut measures: Vec<String> = Vec::new();
    while measures.len() < n_measures {
        let m = MEASURE_POOL[rng.random_range(0..MEASURE_POOL.len())];
        if !measures.iter().any(|x| x == m) {
            measures.push(m.into());
        }
    }
    (axes, measures)
}

/// A random fact row in schema order. Six percent of rows carry a foreign
/// key with no dimension match (invisible to the inner join on both the
/// fold and the rebuild path); amounts and quantities are occasionally
/// NULL so the NULL-skipping fold rules are exercised.
fn gen_fact_row(rng: &mut StdRng, id: i64, max_store: i64) -> Vec<Value> {
    let store = if rng.random_bool(0.06) {
        999
    } else {
        rng.random_range(1..=max_store)
    };
    let amount = if rng.random_bool(0.1) {
        Value::Null
    } else {
        Value::Float(rng.random_range(10..50_000i64) as f64 / 10.0)
    };
    let qty = if rng.random_bool(0.1) {
        Value::Null
    } else {
        Value::Int(rng.random_range(1..20i64))
    };
    vec![
        Value::Int(id),
        Value::Int(store),
        Value::Int(rng.random_range(2008..=2012i64)),
        Value::Int(rng.random_range(1..=12i64)),
        amount,
        qty,
    ]
}

fn lit(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Text(s) => format!("'{s}'"),
        other => panic!("unexpected literal {other:?}"),
    }
}

fn insert_sql(table: &str, rows: &[Vec<Value>]) -> String {
    let tuples: Vec<String> = rows
        .iter()
        .map(|r| {
            let vals: Vec<String> = r.iter().map(lit).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    format!("INSERT INTO {table} VALUES {}", tuples.join(", "))
}

// ------------------------------------------------------------ comparison

fn assert_cells_match(ctx: &str, maintained: &CellSet, rebuilt: &CellSet) {
    assert_eq!(
        maintained.cells.len(),
        rebuilt.cells.len(),
        "cell count diverged ({ctx}): {maintained:?} vs {rebuilt:?}"
    );
    for ((mk, mv), (rk, rv)) in maintained.cells.iter().zip(&rebuilt.cells) {
        assert_eq!(mk, rk, "cell coordinates diverged ({ctx})");
        for (a, b) in mv.iter().zip(rv) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= 1e-9 * scale,
                        "float cell diverged ({ctx}) at {mk:?}: {x} vs {y}"
                    );
                }
                _ => assert_eq!(a, b, "cell value diverged ({ctx}) at {mk:?}"),
            }
        }
    }
}

/// Every registered shape must answer its exact-match query identically
/// to a from-scratch [`MaterializedAggregate::build`].
fn verify_all(
    ctx: &str,
    cache: &AggregateCache,
    engine: &CubeEngine,
    shapes: &[(CubeDef, Vec<LevelRef>, Vec<String>)],
) {
    for (cube, axes, measures) in shapes {
        let q = CubeQuery {
            axes: axes.clone(),
            slices: vec![],
            measures: measures.clone(),
        };
        let maintained = cache
            .try_answer(&cube.name, &q)
            .unwrap_or_else(|| panic!("cache refused covered query ({ctx}, cube {})", cube.name));
        let rebuilt = MaterializedAggregate::build(engine, cube, axes.clone(), measures.clone())
            .unwrap_or_else(|e| panic!("rebuild failed ({ctx}, cube {}): {e}", cube.name))
            .execute(&q)
            .unwrap_or_else(|e| panic!("rebuilt execute failed ({ctx}, cube {}): {e}", cube.name));
        assert_cells_match(&format!("{ctx}, cube {}", cube.name), &maintained, &rebuilt);
    }
}

// -------------------------------------------------------- the sequences

/// One random warehouse-write sequence: fresh star schema, 1–3 random
/// aggregate shapes, then [`STEPS_PER_SEQUENCE`] random writes, each
/// applied to the warehouse *and* propagated as a sequenced delta, each
/// followed by a full differential check.
fn run_sequence(seed: u64, sequence: usize, rng: &mut StdRng) {
    let db = Arc::new(star_db());
    let sql = Engine::new();
    let engine = CubeEngine::new(Arc::clone(&db));

    let mut next_id: i64 = 1;
    let mut next_store: i64 = 4;
    let mut max_store: i64 = 3;

    // a few initial fact rows so the aggregates start non-trivial
    let initial: Vec<Vec<Value>> = (0..rng.random_range(2..6usize))
        .map(|_| {
            let row = gen_fact_row(rng, next_id, max_store);
            next_id += 1;
            row
        })
        .collect();
    sql.execute(&db, &insert_sql("fact_sales", &initial))
        .unwrap();

    let n_shapes = rng.random_range(1..=3usize);
    let mut shapes = Vec::with_capacity(n_shapes);
    let mut cache = AggregateCache::new();
    for s in 0..n_shapes {
        let (axes, measures) = gen_shape(rng);
        let cube = star_cube(&format!("cube_{seed}_{sequence}_{s}"));
        cache.add(
            MaterializedAggregate::build(&engine, &cube, axes.clone(), measures.clone()).unwrap(),
        );
        shapes.push((cube, axes, measures));
    }

    let mut seq: u64 = 0;
    for step in 0..STEPS_PER_SEQUENCE {
        let roll = rng.random_range(0..100i64);
        let delta = if roll < 50 {
            // single-row (or small) INSERT — the hot fold path
            let rows: Vec<Vec<Value>> = (0..rng.random_range(1..=3usize))
                .map(|_| {
                    let row = gen_fact_row(rng, next_id, max_store);
                    next_id += 1;
                    row
                })
                .collect();
            sql.execute(&db, &insert_sql("fact_sales", &rows)).unwrap();
            TableDelta::Insert {
                table: "fact_sales".into(),
                rows,
            }
        } else if roll < 65 {
            // bulk load: one delta event carrying many rows
            let rows: Vec<Vec<Value>> = (0..rng.random_range(10..=30usize))
                .map(|_| {
                    let row = gen_fact_row(rng, next_id, max_store);
                    next_id += 1;
                    row
                })
                .collect();
            sql.execute(&db, &insert_sql("fact_sales", &rows)).unwrap();
            TableDelta::Insert {
                table: "fact_sales".into(),
                rows,
            }
        } else if roll < 75 {
            // UPDATE: not foldable, dependent aggregates must rebuild
            let id = rng.random_range(1..next_id.max(2));
            let amount = rng.random_range(10..50_000i64) as f64 / 10.0;
            sql.execute(
                &db,
                &format!("UPDATE fact_sales SET amount = {amount:?} WHERE id = {id}"),
            )
            .unwrap();
            TableDelta::Mutate {
                table: "fact_sales".into(),
            }
        } else if roll < 85 {
            // DELETE: likewise rebuild-only
            let id = rng.random_range(1..next_id.max(2));
            sql.execute(&db, &format!("DELETE FROM fact_sales WHERE id = {id}"))
                .unwrap();
            TableDelta::Mutate {
                table: "fact_sales".into(),
            }
        } else {
            // dimension-table insert: rebuilds snowflaked aggregates,
            // leaves purely degenerate ones untouched
            let row = vec![
                Value::Int(next_store),
                Value::Text(["EU", "US", "APAC"][rng.random_range(0..3usize)].into()),
                Value::Text(format!("C{next_store}")),
                Value::Text(format!("City{next_store}")),
            ];
            sql.execute(&db, &insert_sql("dim_store", std::slice::from_ref(&row)))
                .unwrap();
            max_store = next_store;
            next_store += 1;
            TableDelta::Insert {
                table: "dim_store".into(),
                rows: vec![row],
            }
        };
        seq += 1;
        cache.apply_delta(&engine, seq, &delta);
        verify_all(
            &format!("seed {seed}, sequence {sequence}, step {step}"),
            &cache,
            &engine,
            &shapes,
        );
    }
}

#[test]
fn delta_maintained_cells_match_full_rebuild_after_every_step() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        for sequence in 0..SEQUENCES_PER_SEED {
            run_sequence(seed, sequence, &mut rng);
        }
    }
}

// ----------------------------------------------- pinned protocol details

/// The AVG decomposition: folds keep the internal SUM+COUNT pair, and the
/// rendered mean matches both a fresh rebuild and the live SQL engine.
#[test]
fn avg_decomposition_folds_and_matches_live_engine() {
    let db = Arc::new(star_db());
    let sql = Engine::new();
    let engine = CubeEngine::new(Arc::clone(&db));
    let cube = star_cube("avg_pin");
    sql.execute(
        &db,
        "INSERT INTO fact_sales VALUES (1, 1, 2009, 1, 10.5, 1), (2, 2, 2009, 2, 20.25, 2)",
    )
    .unwrap();
    let axes = vec![LevelRef::new("store", "region")];
    let mut cache = AggregateCache::new();
    cache.add(
        MaterializedAggregate::build(&engine, &cube, axes.clone(), vec!["avg_amount".into()])
            .unwrap(),
    );
    // three inserts: an existing cell, a NULL amount (must not shift the
    // mean), and a brand-new cell
    let rows = vec![
        vec![
            Value::Int(3),
            Value::Int(1),
            Value::Int(2010),
            Value::Int(1),
            Value::Float(39.25),
            Value::Int(1),
        ],
        vec![
            Value::Int(4),
            Value::Int(2),
            Value::Int(2010),
            Value::Int(2),
            Value::Null,
            Value::Int(5),
        ],
        vec![
            Value::Int(5),
            Value::Int(3),
            Value::Int(2010),
            Value::Int(3),
            Value::Float(7.75),
            Value::Int(1),
        ],
    ];
    sql.execute(&db, &insert_sql("fact_sales", &rows)).unwrap();
    let report = cache.apply_delta(
        &engine,
        1,
        &TableDelta::Insert {
            table: "fact_sales".into(),
            rows,
        },
    );
    assert_eq!(report.folded, 1, "AVG insert must fold, not rebuild");
    let q = CubeQuery {
        axes: axes.clone(),
        slices: vec![],
        measures: vec!["avg_amount".into()],
    };
    let maintained = cache.try_answer("avg_pin", &q).unwrap();
    let rebuilt = MaterializedAggregate::build(&engine, &cube, axes, vec!["avg_amount".into()])
        .unwrap()
        .execute(&q)
        .unwrap();
    assert_cells_match("avg pin vs rebuild", &maintained, &rebuilt);
    let live = engine.query(&cube, &q).unwrap();
    assert_cells_match("avg pin vs live engine", &maintained, &live);
}

/// The forced-rebuild fallback: a delta the fold cannot express (here a
/// ragged batch whose rows disagree on arity) must degrade to a rebuild —
/// never a wrong fold, never a panic — and still converge.
#[test]
fn unfoldable_delta_falls_back_to_rebuild_and_converges() {
    let db = Arc::new(star_db());
    let sql = Engine::new();
    let engine = CubeEngine::new(Arc::clone(&db));
    let cube = star_cube("fallback_pin");
    sql.execute(
        &db,
        "INSERT INTO fact_sales VALUES (1, 1, 2009, 1, 10.0, 1)",
    )
    .unwrap();
    let axes = vec![LevelRef::new("time", "year")];
    let mut cache = AggregateCache::new();
    cache.add(
        MaterializedAggregate::build(
            &engine,
            &cube,
            axes.clone(),
            vec!["revenue".into(), "orders".into()],
        )
        .unwrap(),
    );
    // the warehouse gets a real row, but the delta event is ragged
    sql.execute(
        &db,
        "INSERT INTO fact_sales VALUES (2, 2, 2011, 1, 55.0, 2)",
    )
    .unwrap();
    let ragged = TableDelta::Insert {
        table: "fact_sales".into(),
        rows: vec![
            vec![
                Value::Int(2),
                Value::Int(2),
                Value::Int(2011),
                Value::Int(1),
                Value::Float(55.0),
                Value::Int(2),
            ],
            vec![Value::Int(99)], // arity mismatch: Batch construction fails
        ],
    };
    let report = cache.apply_delta(&engine, 1, &ragged);
    assert_eq!(report.folded, 0, "a ragged delta must not fold");
    assert_eq!(report.rebuilt, 1, "fallback must rebuild the aggregate");
    let q = CubeQuery {
        axes: axes.clone(),
        slices: vec![],
        measures: vec!["revenue".into(), "orders".into()],
    };
    let maintained = cache.try_answer("fallback_pin", &q).unwrap();
    let rebuilt = MaterializedAggregate::build(
        &engine,
        &cube,
        axes,
        vec!["revenue".into(), "orders".into()],
    )
    .unwrap()
    .execute(&q)
    .unwrap();
    assert_cells_match("fallback pin", &maintained, &rebuilt);
}
