//! # odbis-platform
//!
//! Umbrella crate for the ODBIS reproduction — re-exports every subsystem
//! so examples and integration tests can depend on one crate.
//!
//! See the workspace `README.md` for the architecture overview, and
//! `DESIGN.md` / `EXPERIMENTS.md` for the paper-reproduction inventory.

pub use odbis;
pub use odbis_admin as admin;
pub use odbis_delivery as delivery;
pub use odbis_esb as esb;
pub use odbis_etl as etl;
pub use odbis_mddws as mddws;
pub use odbis_metadata as metadata;
pub use odbis_metamodel as metamodel;
pub use odbis_olap as olap;
pub use odbis_orm as orm;
pub use odbis_reporting as reporting;
pub use odbis_rules as rules;
pub use odbis_security as security;
pub use odbis_sql as sql;
pub use odbis_storage as storage;
pub use odbis_tenancy as tenancy;
pub use odbis_web as web;
