//! Figure 6 reproduction: the healthcare dashboard built with ODBIS's
//! ad-hoc reporting module — charts, a data table and KPI tiles over a
//! synthetic hospital warehouse, via ETL, OLAP and the reporting service.
//!
//! Run with: `cargo run --example healthcare_dashboard`
//! The dashboard HTML is written to the system temp directory.

use std::sync::Arc;

use odbis_bench::workloads;
use odbis_etl::{AggOp, EtlJob, Extractor, JobRunner, LoadMode, Loader, Transform};
use odbis_metadata::{DataSet, DataSource, MetadataService};
use odbis_olap::{
    parse_mdx, Aggregator, CubeDef, CubeEngine, CubeView, DimensionDef, LevelDef, LevelRef,
    MeasureDef,
};
use odbis_reporting::{
    ChartKind, ChartSpec, Dashboard, KpiSpec, ReportingService, TableSpec, Widget,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // synthetic hospital warehouse: 20k admissions over 2008-2010
    let warehouse = Arc::new(workloads::healthcare_db(20_000, 42));
    println!(
        "healthcare warehouse: {} admissions across {} departments",
        warehouse.row_count("fact_admission")?,
        warehouse.row_count("dim_department")?
    );

    // Integration Service: derive a monthly summary mart
    let runner = JobRunner::new(Arc::clone(&warehouse));
    let report = runner.run(&EtlJob {
        name: "monthly-mart".into(),
        extractor: Extractor::Table("fact_admission".into()),
        transforms: vec![
            Transform::Filter("cost > 0".into()),
            Transform::Aggregate {
                group_by: vec!["year".into(), "month".into()],
                aggs: vec![
                    (AggOp::Count, "id".into(), "admissions".into()),
                    (AggOp::Sum, "cost".into(), "total_cost".into()),
                    (AggOp::Avg, "stay_days".into(), "avg_stay".into()),
                ],
            },
        ],
        loader: Loader {
            table: "mart_monthly".into(),
            mode: LoadMode::Replace,
        },
    })?;
    println!(
        "ETL: extracted {} rows, loaded {} monthly summaries",
        report.extracted, report.loaded
    );

    // Analysis Service: a cube over the admissions star schema
    let cube = CubeDef {
        name: "admissions".into(),
        fact_table: "fact_admission".into(),
        dimensions: vec![
            DimensionDef {
                name: "department".into(),
                table: Some("dim_department".into()),
                fact_fk: "dept_id".into(),
                dim_key: "dept_id".into(),
                levels: vec![LevelDef {
                    name: "name".into(),
                    column: "name".into(),
                }],
            },
            DimensionDef {
                name: "time".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![
                    LevelDef {
                        name: "year".into(),
                        column: "year".into(),
                    },
                    LevelDef {
                        name: "month".into(),
                        column: "month".into(),
                    },
                ],
            },
        ],
        measures: vec![
            MeasureDef {
                name: "total_cost".into(),
                column: "cost".into(),
                aggregator: Aggregator::Sum,
            },
            MeasureDef {
                name: "admissions".into(),
                column: "id".into(),
                aggregator: Aggregator::Count,
            },
        ],
    };
    cube.validate(&warehouse)?;
    let engine = Arc::new(CubeEngine::new(Arc::clone(&warehouse)));

    // MDX-lite and interactive navigation
    let stmt = parse_mdx("SELECT total_cost, admissions BY department.name FROM admissions")?;
    let by_dept = engine.query(&cube, &stmt.query)?;
    println!("\ncost by department (MDX-lite):");
    for (coords, measures) in &by_dept.cells {
        println!(
            "  {:<12} cost={:>12}  admissions={}",
            coords[0].render(),
            measures[0].render(),
            measures[1].render()
        );
    }
    let mut view = CubeView::new(
        Arc::clone(&engine),
        cube.clone(),
        vec![LevelRef::new("time", "year")],
        vec!["total_cost".into()],
    );
    println!("\ncost by year, then drill down into 2010 months:");
    for (coords, m) in &view.cells()?.cells {
        println!("  {}: {}", coords[0].render(), m[0].render());
    }
    view.drill_down("time")?;
    view.slice("time", "year", 2010i64);
    println!("  2010 monthly cells: {}", view.cells()?.len());

    // Meta-Data Service: data sets feeding the dashboard widgets
    let mds = Arc::new(MetadataService::new());
    mds.register_source(
        DataSource {
            name: "warehouse".into(),
            url: "odbis://hospital/warehouse".into(),
            user: "bi".into(),
            password: "secret".into(),
            driver: "odbis-storage".into(),
        },
        Arc::clone(&warehouse),
    )?;
    for (name, sql) in [
        (
            "cost_by_department",
            "SELECT d.name AS department, SUM(f.cost) AS total_cost \
             FROM fact_admission f JOIN dim_department d ON f.dept_id = d.dept_id \
             GROUP BY d.name ORDER BY total_cost DESC",
        ),
        (
            "admissions_by_year",
            "SELECT year, COUNT(*) AS admissions FROM fact_admission GROUP BY year ORDER BY year",
        ),
        (
            "monthly_trend",
            "SELECT month, SUM(total_cost) AS cost FROM mart_monthly GROUP BY month ORDER BY month",
        ),
        (
            "headline",
            "SELECT COUNT(*) AS total_admissions, ROUND(SUM(cost), 0) AS total_cost, \
             ROUND(AVG(stay_days), 2) AS avg_stay FROM fact_admission",
        ),
    ] {
        mds.define_dataset(DataSet {
            name: name.into(),
            source: "warehouse".into(),
            sql: sql.into(),
            description: format!("figure-6 dashboard feed: {name}"),
        })?;
    }

    // Reporting Service: the Figure 6 dashboard
    let rs = ReportingService::new(mds);
    let dashboard = Dashboard {
        name: "healthcare".into(),
        title: "Hospital Performance Dashboard (ODBIS Figure 6)".into(),
        rows: vec![
            vec![
                Widget::Kpi {
                    dataset: "headline".into(),
                    spec: KpiSpec {
                        title: "Total admissions".into(),
                        value_column: "total_admissions".into(),
                        unit: String::new(),
                    },
                },
                Widget::Kpi {
                    dataset: "headline".into(),
                    spec: KpiSpec {
                        title: "Total cost".into(),
                        value_column: "total_cost".into(),
                        unit: " EUR".into(),
                    },
                },
                Widget::Kpi {
                    dataset: "headline".into(),
                    spec: KpiSpec {
                        title: "Avg stay (days)".into(),
                        value_column: "avg_stay".into(),
                        unit: String::new(),
                    },
                },
            ],
            vec![
                Widget::Chart {
                    dataset: "cost_by_department".into(),
                    spec: ChartSpec {
                        title: "Cost by department".into(),
                        kind: ChartKind::Bar,
                        category: "department".into(),
                        series: vec!["total_cost".into()],
                    },
                },
                Widget::Chart {
                    dataset: "admissions_by_year".into(),
                    spec: ChartSpec {
                        title: "Admissions by year".into(),
                        kind: ChartKind::Pie,
                        category: "year".into(),
                        series: vec!["admissions".into()],
                    },
                },
            ],
            vec![
                Widget::Chart {
                    dataset: "monthly_trend".into(),
                    spec: ChartSpec {
                        title: "Monthly cost trend".into(),
                        kind: ChartKind::Line,
                        category: "month".into(),
                        series: vec!["cost".into()],
                    },
                },
                Widget::Table {
                    dataset: "cost_by_department".into(),
                    spec: TableSpec {
                        title: "Department detail".into(),
                        columns: vec![],
                        max_rows: Some(10),
                    },
                },
            ],
        ],
    };
    let html = rs.render_dashboard(&dashboard)?;
    let out = std::env::temp_dir().join("odbis-healthcare-dashboard.html");
    std::fs::write(&out, &html)?;
    println!(
        "\ndashboard rendered: {} widgets, {} bytes of HTML -> {}",
        dashboard.widget_count(),
        html.len(),
        out.display()
    );
    Ok(())
}
