//! Multi-tenant SaaS scenario (ODBIS §2): three retailers share one
//! platform instance; each gets logically-isolated data, its own users and
//! a pay-as-you-go invoice aligned with its actual usage.
//!
//! Run with: `cargo run --example retail_saas`

use odbis::OdbisPlatform;
use odbis_bench::workloads;
use odbis_metadata::DataSet;
use odbis_tenancy::{ServiceKind, SubscriptionPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = OdbisPlatform::new();

    // three tenants on three different plans
    let tenants = [
        (
            "nordwind",
            "Nordwind Traders",
            SubscriptionPlan::enterprise(),
            12_000usize,
        ),
        (
            "contoso",
            "Contoso Retail",
            SubscriptionPlan::standard(),
            3_000,
        ),
        ("tailspin", "Tailspin Toys", SubscriptionPlan::free(), 200),
    ];

    for (i, (id, name, plan, orders)) in tenants.iter().enumerate() {
        platform.provision_tenant(id, name, plan.clone(), "admin", "pw")?;
        let token = platform.login(id, "admin", "pw")?;
        platform.sql(
            id,
            &token,
            "CREATE TABLE orders (region TEXT, product_id INT, amount DOUBLE)",
        )?;
        // bulk-load synthetic orders (each tenant gets a distinct seed)
        for chunk in workloads::retail_orders(*orders, 100 + i as u64).chunks(500) {
            let values: Vec<String> = chunk
                .iter()
                .map(|(r, p, a)| format!("('{r}', {p}, {a})"))
                .collect();
            platform.sql(
                id,
                &token,
                &format!("INSERT INTO orders VALUES {}", values.join(", ")),
            )?;
        }
        platform.define_dataset(
            id,
            &token,
            DataSet {
                name: "revenue_by_region".into(),
                source: "warehouse".into(),
                sql: "SELECT region, ROUND(SUM(amount), 2) AS revenue, COUNT(*) AS orders \
                      FROM orders GROUP BY region ORDER BY revenue DESC"
                    .into(),
                description: "regional revenue".into(),
            },
        )?;
        let result = platform.execute_dataset(id, &token, "revenue_by_region")?;
        println!("=== {name} ({}, {} orders) ===", plan.name, orders);
        println!("{}", result.to_text_table());
    }

    // logically unique per tenant: identical dataset names, disjoint data
    println!(
        "tenants registered: {:?}",
        platform.admin.registry().tenant_ids()
    );

    // usage report: each tenant's metered activity differs with its load
    println!("\nplatform usage report:");
    for line in platform.admin.usage_report() {
        println!(
            "  {:<10} {:<4} {:>8} units",
            line.tenant, line.service, line.units
        );
    }
    let mds = |t: &str| platform.admin.meter().usage(t, ServiceKind::Metadata);
    assert!(mds("nordwind") > mds("contoso"));
    assert!(mds("contoso") > mds("tailspin"));

    // billing run: cost follows usage and plan
    println!("\ninvoices:");
    for invoice in platform.admin.billing_run() {
        println!(
            "  {:<10} plan={:<10} units={:>8} base=${:>8.2} overage=${:>7.2} total=${:>8.2}",
            invoice.tenant,
            invoice.plan,
            invoice.units,
            invoice.base_cents as f64 / 100.0,
            invoice.overage_cents as f64 / 100.0,
            invoice.total_cents as f64 / 100.0,
        );
    }
    Ok(())
}
