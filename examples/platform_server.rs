//! The on-demand platform over the wire: starts the ODBIS HTTP server
//! (Figure 1's end-user access layer) on a loopback port and drives it
//! with the bundled HTTP client — login, SQL, data sets, MDX, usage,
//! plus the telemetry scrape and the pay-as-you-go invoice.
//!
//! Run with: `cargo run --example platform_server`

use std::sync::Arc;

use odbis::{build_router, OdbisPlatform};
use odbis_metadata::DataSet;
use odbis_olap::{Aggregator, CubeDef, DimensionDef, LevelDef, MeasureDef};
use odbis_tenancy::SubscriptionPlan;
use odbis_web::{http_post, http_request, HttpServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Arc::new(OdbisPlatform::new());
    platform.provision_tenant(
        "clinic",
        "City Clinic",
        SubscriptionPlan::standard(),
        "cio",
        "pw",
    )?;

    let server = HttpServer::start(build_router(Arc::clone(&platform)), 4)?;
    let addr = server.addr().to_string();
    println!("ODBIS platform listening on {}", server.base_url());

    // login over HTTP
    let (status, body) = http_post(
        &addr,
        "/api/v1/login",
        "{\"tenant\":\"clinic\",\"user\":\"cio\",\"password\":\"pw\"}",
    )?;
    assert_eq!(status, 200);
    let token = serde_json::from_str::<serde_json::Value>(&body)?["token"]
        .as_str()
        .unwrap()
        .to_string();
    println!("POST /api/v1/login -> {status} (token acquired)");

    let bearer = format!("Bearer {token}");
    let call = |method: &str, path: &str, body: &str| {
        http_request(
            &addr,
            method,
            path,
            &[("x-tenant", "clinic"), ("Authorization", &bearer)],
            body.as_bytes(),
        )
        .map(|(s, _, b)| (s, b))
    };

    // build a tiny warehouse over the wire
    for stmt in [
        "CREATE TABLE visits (dept TEXT, year INT, patients INT)",
        "INSERT INTO visits VALUES ('Cardiology', 2009, 120), ('Cardiology', 2010, 150), \
         ('Oncology', 2009, 80), ('Oncology', 2010, 95)",
    ] {
        let (status, _) = call("POST", "/api/v1/sql", stmt).map_err(std::io::Error::other)?;
        println!("POST /api/v1/sql -> {status}");
    }

    // register a data set and a cube through the platform API
    platform.define_dataset(
        "clinic",
        &token,
        DataSet {
            name: "visits_by_dept".into(),
            source: "warehouse".into(),
            sql: "SELECT dept, SUM(patients) AS patients FROM visits GROUP BY dept ORDER BY dept"
                .into(),
            description: String::new(),
        },
    )?;
    platform.register_cube(
        "clinic",
        &token,
        CubeDef {
            name: "visits".into(),
            fact_table: "visits".into(),
            dimensions: vec![
                DimensionDef {
                    name: "dept".into(),
                    table: None,
                    fact_fk: String::new(),
                    dim_key: String::new(),
                    levels: vec![LevelDef {
                        name: "name".into(),
                        column: "dept".into(),
                    }],
                },
                DimensionDef {
                    name: "time".into(),
                    table: None,
                    fact_fk: String::new(),
                    dim_key: String::new(),
                    levels: vec![LevelDef {
                        name: "year".into(),
                        column: "year".into(),
                    }],
                },
            ],
            measures: vec![MeasureDef {
                name: "patients".into(),
                column: "patients".into(),
                aggregator: Aggregator::Sum,
            }],
        },
    )?;

    let (status, body) =
        call("GET", "/api/v1/datasets/visits_by_dept", "").map_err(std::io::Error::other)?;
    println!("GET /api/v1/datasets/visits_by_dept -> {status}\n  {body}");

    let (status, body) = call(
        "POST",
        "/api/v1/mdx",
        "SELECT patients BY dept.name FROM visits WHERE time.year = 2010",
    )
    .map_err(std::io::Error::other)?;
    println!("POST /api/v1/mdx -> {status}\n  {body}");

    let (status, body) = call("GET", "/api/v1/admin/usage", "").map_err(std::io::Error::other)?;
    println!("GET /api/v1/admin/usage -> {status}\n  {body}");

    // the telemetry spine: what did all of that actually cost?
    let (status, body) = call("GET", "/api/v1/admin/invoice", "").map_err(std::io::Error::other)?;
    println!("GET /api/v1/admin/invoice -> {status}\n  {body}");
    let (status, scrape) =
        odbis_web::http_get(&addr, "/api/v1/metrics").map_err(std::io::Error::other)?;
    let preview: String = scrape.lines().take(6).collect::<Vec<_>>().join("\n  ");
    println!("GET /api/v1/metrics -> {status}\n  {preview}\n  ...");

    println!("requests served: {}", server.requests_served());
    server.shutdown();
    Ok(())
}
