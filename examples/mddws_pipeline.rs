//! Figures 2 & 3 reproduction: the Model-Driven Data Warehouse Service —
//! a business model goes in, a deployed, queryable warehouse comes out,
//! driven by the 2TUP process with QVT trace links at every step.
//!
//! Run with: `cargo run --example mddws_pipeline`

use std::sync::Arc;

use odbis_mddws::{cim_metamodel, DwLayer, DwProject, Viewpoint, DISCIPLINES};
use odbis_metamodel::{export_repository, AttrValue, ModelRepository};
use odbis_sql::Engine;
use odbis_storage::Database;

/// Business analysts describe the retail domain: no tables, no types, no
/// platform — just facts, dimensions and goals.
fn retail_business_model() -> ModelRepository {
    let mut bcim = ModelRepository::new("retail-bcim", cim_metamodel());
    let mk_prop = |repo: &mut ModelRepository, name: &str, vt: &str| {
        repo.create(
            "BusinessProperty",
            vec![("name", name.into()), ("valueType", vt.into())],
        )
        .expect("valid property")
    };
    let amount = mk_prop(&mut bcim, "amount", "NUMBER");
    let discount = mk_prop(&mut bcim, "discount", "NUMBER");
    let sale_day = mk_prop(&mut bcim, "sale_day", "DATE");
    let store_name = mk_prop(&mut bcim, "store_name", "TEXT");
    let store_city = mk_prop(&mut bcim, "store_city", "TEXT");
    let product_name = mk_prop(&mut bcim, "product_name", "TEXT");
    let category = mk_prop(&mut bcim, "category", "TEXT");

    let sale = bcim
        .create(
            "BusinessConcept",
            vec![
                ("name", "sale".into()),
                ("kind", "FACT".into()),
                (
                    "properties",
                    AttrValue::RefList(vec![amount, discount, sale_day]),
                ),
            ],
        )
        .expect("fact");
    bcim.create(
        "BusinessConcept",
        vec![
            ("name", "store".into()),
            ("kind", "DIMENSION".into()),
            (
                "properties",
                AttrValue::RefList(vec![store_name, store_city]),
            ),
        ],
    )
    .expect("dimension");
    bcim.create(
        "BusinessConcept",
        vec![
            ("name", "product".into()),
            ("kind", "DIMENSION".into()),
            (
                "properties",
                AttrValue::RefList(vec![product_name, category]),
            ),
        ],
    )
    .expect("dimension");
    bcim.create(
        "BusinessGoal",
        vec![
            ("name", "increase_basket_size".into()),
            ("description", "grow average sale amount by 10%".into()),
            ("measuredBy", AttrValue::RefList(vec![sale])),
        ],
    )
    .expect("goal");
    bcim
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("2TUP disciplines (Figure 3):");
    for d in DISCIPLINES {
        println!(
            "  [{:?}] {} {}",
            d.track,
            d.name,
            d.produces
                .map(|v| format!("-> {}", v.name()))
                .unwrap_or_default()
        );
    }

    let mut project = DwProject::new("retail-dw");
    let warehouse = Arc::new(Database::new());

    // --- the iteration, step by step -----------------------------------
    project.begin_layer(DwLayer::Warehouse)?;
    project.process_mut().log_risk(
        DwLayer::Warehouse,
        "legacy POS exports have no product keys",
        4,
    )?;

    let bcim = retail_business_model();
    println!("\nBCIM: {} business objects", bcim.len());
    project.submit_bcim(DwLayer::Warehouse, bcim)?;

    let pim_objects = project.derive_pim(DwLayer::Warehouse)?;
    println!("cim2pim: {pim_objects} PIM objects derived (with trace links)");
    let pim = project
        .model(DwLayer::Warehouse, Viewpoint::Pim)
        .expect("PIM exists");
    for t in pim.instances_of("RelationalTable") {
        println!("  PIM table: {}", t.name());
    }
    // the PIM is a standard CWM model: exchangeable via XMI
    let xmi = export_repository(pim)?;
    println!("  PIM exports as XMI-JSON: {} bytes", xmi.len());

    let psm_objects = project.derive_psm(DwLayer::Warehouse, "ODBIS-STORAGE")?;
    println!("pim2psm: {psm_objects} PSM objects bound to ODBIS-STORAGE");

    let code = project.generate_code(DwLayer::Warehouse)?;
    println!("\ngenerated DDL:\n{}", code.ddl_script());
    println!(
        "\nload skeletons (code-completion TODOs): {}",
        code.load_skeletons.len()
    );

    project.test_code(DwLayer::Warehouse)?;
    println!("test discipline: DDL deploys cleanly into a scratch database");

    let created = project.deploy_layer(DwLayer::Warehouse, &warehouse)?;
    println!("deployed tables: {created:?}");

    project
        .process_mut()
        .mitigate_risk(DwLayer::Warehouse, "product keys")?;

    // --- milestone & traceability ----------------------------------------
    let iter = project.process().iteration(DwLayer::Warehouse)?;
    println!(
        "\niteration complete: {} | disciplines: {:?}",
        iter.is_done(),
        iter.completed()
    );
    println!("trace links recorded: {}", project.traces().len());
    for t in project.traces().iter().take(4) {
        println!("  {} : {} -> {}", t.rule, t.source, t.target);
    }

    // --- the deployed warehouse is live ----------------------------------
    let engine = Engine::new();
    engine.execute(
        &warehouse,
        "INSERT INTO fact_sale (amount, discount, sale_day) \
         VALUES (49.9, 0.0, DATE '2010-03-22'), (15.0, 2.5, DATE '2010-03-23')",
    )?;
    let r = engine.execute(
        &warehouse,
        "SELECT COUNT(*) AS sales, SUM(amount) AS revenue FROM fact_sale",
    )?;
    println!("\nwarehouse query after deployment:\n{}", r.to_text_table());
    Ok(())
}
