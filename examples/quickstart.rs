//! Quickstart: boot the ODBIS platform, provision a tenant, load data,
//! define a data set and render a report — the smallest end-to-end tour of
//! the on-demand BI services.
//!
//! Run with: `cargo run --example quickstart`

use odbis::OdbisPlatform;
use odbis_metadata::DataSet;
use odbis_reporting::{render_text, ChartKind, ChartSpec, Dashboard, KpiSpec, TableSpec, Widget};
use odbis_tenancy::{ServiceKind, SubscriptionPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. boot the platform and provision a tenant (SaaS layer)
    let platform = OdbisPlatform::new();
    platform.provision_tenant(
        "acme",
        "Acme Retail",
        SubscriptionPlan::standard(),
        "admin",
        "s3cret",
    )?;
    let token = platform.login("acme", "admin", "s3cret")?;
    println!("tenant 'acme' provisioned; admin logged in");

    // 2. create and load a table in the tenant warehouse (technical layer)
    platform.sql(
        "acme",
        &token,
        "CREATE TABLE sales (region TEXT, product TEXT, amount DOUBLE)",
    )?;
    platform.sql(
        "acme",
        &token,
        "INSERT INTO sales VALUES
           ('EU', 'widgets', 1200), ('EU', 'gadgets', 800),
           ('US', 'widgets', 2400), ('US', 'gadgets', 300),
           ('APAC', 'widgets', 700)",
    )?;

    // 3. define a reusable data set in the Meta-Data Service
    platform.define_dataset(
        "acme",
        &token,
        DataSet {
            name: "sales_by_region".into(),
            source: "warehouse".into(),
            sql: "SELECT region, SUM(amount) AS total FROM sales \
                  GROUP BY region ORDER BY total DESC"
                .into(),
            description: "revenue per region".into(),
        },
    )?;

    // 4. run it and print (MDS → SQL engine → storage)
    let result = platform.execute_dataset("acme", &token, "sales_by_region")?;
    println!("\n{}", render_text("Sales by region", &result));

    // 5. render a dashboard (Reporting Service)
    platform.define_dataset(
        "acme",
        &token,
        DataSet {
            name: "grand_total".into(),
            source: "warehouse".into(),
            sql: "SELECT SUM(amount) AS total FROM sales".into(),
            description: String::new(),
        },
    )?;
    let dashboard = Dashboard {
        name: "exec".into(),
        title: "Acme Executive Dashboard".into(),
        rows: vec![
            vec![Widget::Kpi {
                dataset: "grand_total".into(),
                spec: KpiSpec {
                    title: "Total revenue".into(),
                    value_column: "total".into(),
                    unit: " EUR".into(),
                },
            }],
            vec![
                Widget::Chart {
                    dataset: "sales_by_region".into(),
                    spec: ChartSpec {
                        title: "Revenue by region".into(),
                        kind: ChartKind::Bar,
                        category: "region".into(),
                        series: vec!["total".into()],
                    },
                },
                Widget::Table {
                    dataset: "sales_by_region".into(),
                    spec: TableSpec {
                        title: "Detail".into(),
                        columns: vec![],
                        max_rows: None,
                    },
                },
            ],
        ],
    };
    let html = platform.render_dashboard("acme", &token, &dashboard)?;
    let out = std::env::temp_dir().join("odbis-quickstart-dashboard.html");
    std::fs::write(&out, &html)?;
    println!(
        "dashboard written to {} ({} bytes)",
        out.display(),
        html.len()
    );

    // 6. pay-as-you-go: see what this session will be billed
    for service in ServiceKind::ALL {
        let units = platform.admin.meter().usage("acme", service);
        if units > 0 {
            println!("metered usage  {:>4}: {units} units", service.code());
        }
    }
    let invoices = platform.admin.billing_run();
    println!(
        "invoice: plan={} units={} total=${:.2}",
        invoices[0].plan,
        invoices[0].units,
        invoices[0].total_cents as f64 / 100.0
    );
    Ok(())
}
