//! Platform configuration: typed settings with defaults and per-tenant
//! overrides ("customize services configuration", ODBIS §3.1 — the
//! out-of-the-box "flexible configuration and personalization" claim).

use std::collections::BTreeMap;

use parking_lot::RwLock;

/// A typed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// String setting.
    Str(String),
    /// Integer setting.
    Int(i64),
    /// Boolean setting.
    Bool(bool),
}

impl ConfigValue {
    fn kind(&self) -> &'static str {
        match self {
            ConfigValue::Str(_) => "string",
            ConfigValue::Int(_) => "int",
            ConfigValue::Bool(_) => "bool",
        }
    }
}

impl From<&str> for ConfigValue {
    fn from(s: &str) -> Self {
        ConfigValue::Str(s.to_string())
    }
}
impl From<i64> for ConfigValue {
    fn from(i: i64) -> Self {
        ConfigValue::Int(i)
    }
}
impl From<bool> for ConfigValue {
    fn from(b: bool) -> Self {
        ConfigValue::Bool(b)
    }
}

/// Configuration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The key is not declared.
    UnknownKey(String),
    /// The value's type does not match the declaration.
    TypeMismatch {
        /// Setting key.
        key: String,
        /// Declared kind.
        expected: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownKey(k) => write!(f, "unknown configuration key {k}"),
            ConfigError::TypeMismatch { key, expected } => {
                write!(f, "configuration {key} expects a {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The declared default for `sql.vectorized`: true unless the
/// `ODBIS_SQL_VECTORIZED` environment variable opts the whole process into
/// the row-executor ablation (`off`/`0`/`false`), as the CI ablation job
/// does.
fn vectorized_default() -> bool {
    !matches!(
        std::env::var("ODBIS_SQL_VECTORIZED").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

/// The declared default for `durability.fsync`: the `ODBIS_DURABILITY_FSYNC`
/// environment variable when set (the CI durability job exports `always`),
/// otherwise `never` — crash-safe against process death, not power loss.
fn fsync_default() -> String {
    match std::env::var("ODBIS_DURABILITY_FSYNC").as_deref() {
        Ok(v) if v.eq_ignore_ascii_case("always") => "always".to_string(),
        _ => "never".to_string(),
    }
}

/// The declared default for `durability.format`: the
/// `ODBIS_DURABILITY_FORMAT` environment variable when set to `json` (the
/// CI persist job A/Bs both formats), otherwise `segments` — binary
/// columnar segments with incremental checkpoints.
fn format_default() -> String {
    match std::env::var("ODBIS_DURABILITY_FORMAT").as_deref() {
        Ok(v) if v.eq_ignore_ascii_case("json") => "json".to_string(),
        _ => "segments".to_string(),
    }
}

/// The declared default for an admission-control limit: the corresponding
/// `ODBIS_LIMITS_*` environment variable when it parses as an integer,
/// otherwise `fallback`. Admission limits default open (`limits.rate` 0 =
/// unlimited) so a bare checkout behaves exactly as before; operators and
/// the noisy-neighbor suites opt tenants in per deployment.
fn limit_default(env: &str, fallback: i64) -> i64 {
    std::env::var(env)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(fallback)
}

/// Declared-key configuration store with platform defaults and per-tenant
/// overrides. Reads resolve tenant → platform → declared default.
pub struct PlatformConfig {
    declared: BTreeMap<String, ConfigValue>,
    inner: RwLock<Overrides>,
}

#[derive(Default)]
struct Overrides {
    platform: BTreeMap<String, ConfigValue>,
    per_tenant: BTreeMap<(String, String), ConfigValue>,
}

impl PlatformConfig {
    /// Store with the platform's standard settings declared.
    pub fn with_defaults() -> Self {
        let mut declared = BTreeMap::new();
        for (k, v) in [
            ("reporting.max_rows", ConfigValue::Int(10_000)),
            ("reporting.default_chart", ConfigValue::from("bar")),
            ("etl.reject_threshold", ConfigValue::Int(1_000)),
            ("olap.preaggregation", ConfigValue::Bool(true)),
            ("sql.vectorized", ConfigValue::Bool(vectorized_default())),
            // 0 = auto: let the engine size its worker pool to the machine.
            ("sql.parallelism", ConfigValue::Int(0)),
            ("sql.optimizer_rules", ConfigValue::from("all")),
            ("durability.fsync", ConfigValue::Str(fsync_default())),
            ("durability.format", ConfigValue::Str(format_default())),
            ("telemetry.enabled", ConfigValue::Bool(true)),
            ("telemetry.slow_ms", ConfigValue::Int(250)),
            ("chaos.enabled", ConfigValue::Bool(false)),
            // per-tenant admission control (requests/second; 0 = unlimited)
            (
                "limits.rate",
                ConfigValue::Int(limit_default("ODBIS_LIMITS_RATE", 0)),
            ),
            // bucket capacity above the rate (0 = one second of rate)
            (
                "limits.burst",
                ConfigValue::Int(limit_default("ODBIS_LIMITS_BURST", 0)),
            ),
            // in-flight requests a tenant may hold past its rate before 429
            (
                "limits.queue_depth",
                ConfigValue::Int(limit_default("ODBIS_LIMITS_QUEUE_DEPTH", 64)),
            ),
            ("delivery.mobile_row_cap", ConfigValue::Int(20)),
            // shard router: answer non-local tenants with 307 + Location
            // instead of proxying to the owner node
            ("cluster.redirect", ConfigValue::Bool(false)),
            ("security.session_minutes", ConfigValue::Int(30)),
            ("platform.name", ConfigValue::from("ODBIS")),
        ] {
            declared.insert(k.to_string(), v);
        }
        PlatformConfig {
            declared,
            inner: RwLock::new(Overrides::default()),
        }
    }

    /// Declare an additional key with its default.
    pub fn declare(&mut self, key: &str, default: ConfigValue) {
        self.declared.insert(key.to_string(), default);
    }

    fn check(&self, key: &str, value: &ConfigValue) -> Result<(), ConfigError> {
        let decl = self
            .declared
            .get(key)
            .ok_or_else(|| ConfigError::UnknownKey(key.to_string()))?;
        if decl.kind() != value.kind() {
            return Err(ConfigError::TypeMismatch {
                key: key.to_string(),
                expected: decl.kind(),
            });
        }
        Ok(())
    }

    /// Set a platform-wide override.
    pub fn set(&self, key: &str, value: ConfigValue) -> Result<(), ConfigError> {
        self.check(key, &value)?;
        self.inner.write().platform.insert(key.to_string(), value);
        Ok(())
    }

    /// Set a tenant-specific override ("personalization").
    pub fn set_for_tenant(
        &self,
        tenant: &str,
        key: &str,
        value: ConfigValue,
    ) -> Result<(), ConfigError> {
        self.check(key, &value)?;
        self.inner
            .write()
            .per_tenant
            .insert((tenant.to_string(), key.to_string()), value);
        Ok(())
    }

    /// Resolve a setting for a tenant.
    pub fn get(&self, tenant: &str, key: &str) -> Result<ConfigValue, ConfigError> {
        let decl = self
            .declared
            .get(key)
            .ok_or_else(|| ConfigError::UnknownKey(key.to_string()))?;
        let inner = self.inner.read();
        if let Some(v) = inner.per_tenant.get(&(tenant.to_string(), key.to_string())) {
            return Ok(v.clone());
        }
        if let Some(v) = inner.platform.get(key) {
            return Ok(v.clone());
        }
        Ok(decl.clone())
    }

    /// Integer-setting convenience.
    pub fn get_int(&self, tenant: &str, key: &str) -> Result<i64, ConfigError> {
        match self.get(tenant, key)? {
            ConfigValue::Int(i) => Ok(i),
            _ => Err(ConfigError::TypeMismatch {
                key: key.to_string(),
                expected: "int",
            }),
        }
    }

    /// String-setting convenience.
    pub fn get_str(&self, tenant: &str, key: &str) -> Result<String, ConfigError> {
        match self.get(tenant, key)? {
            ConfigValue::Str(s) => Ok(s),
            _ => Err(ConfigError::TypeMismatch {
                key: key.to_string(),
                expected: "string",
            }),
        }
    }

    /// All declared keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.declared.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_order_tenant_platform_default() {
        let cfg = PlatformConfig::with_defaults();
        assert_eq!(cfg.get_int("t1", "reporting.max_rows").unwrap(), 10_000);
        cfg.set("reporting.max_rows", 5_000i64.into()).unwrap();
        assert_eq!(cfg.get_int("t1", "reporting.max_rows").unwrap(), 5_000);
        cfg.set_for_tenant("t1", "reporting.max_rows", 100i64.into())
            .unwrap();
        assert_eq!(cfg.get_int("t1", "reporting.max_rows").unwrap(), 100);
        // other tenants still see the platform override
        assert_eq!(cfg.get_int("t2", "reporting.max_rows").unwrap(), 5_000);
    }

    #[test]
    fn unknown_keys_and_type_mismatches() {
        let cfg = PlatformConfig::with_defaults();
        assert!(matches!(
            cfg.set("nope", 1i64.into()),
            Err(ConfigError::UnknownKey(_))
        ));
        assert!(matches!(
            cfg.set("reporting.max_rows", "lots".into()),
            Err(ConfigError::TypeMismatch { .. })
        ));
        assert!(matches!(
            cfg.get("t", "ghost.key"),
            Err(ConfigError::UnknownKey(_))
        ));
        assert!(matches!(
            cfg.get_int("t", "platform.name"),
            Err(ConfigError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn admission_limits_are_declared_with_open_defaults() {
        let cfg = PlatformConfig::with_defaults();
        assert_eq!(cfg.get_int("t", "limits.rate").unwrap(), 0);
        assert_eq!(cfg.get_int("t", "limits.burst").unwrap(), 0);
        assert_eq!(cfg.get_int("t", "limits.queue_depth").unwrap(), 64);
        // per-tenant personalization works like any other key
        cfg.set_for_tenant("noisy", "limits.rate", 50i64.into())
            .unwrap();
        assert_eq!(cfg.get_int("noisy", "limits.rate").unwrap(), 50);
        assert_eq!(cfg.get_int("quiet", "limits.rate").unwrap(), 0);
    }

    #[test]
    fn declaring_new_keys() {
        let mut cfg = PlatformConfig::with_defaults();
        cfg.declare("custom.flag", ConfigValue::Bool(false));
        assert_eq!(
            cfg.get("t", "custom.flag").unwrap(),
            ConfigValue::Bool(false)
        );
        cfg.set("custom.flag", true.into()).unwrap();
        assert_eq!(
            cfg.get("t", "custom.flag").unwrap(),
            ConfigValue::Bool(true)
        );
        assert!(cfg.keys().contains(&"custom.flag".to_string()));
    }
}
