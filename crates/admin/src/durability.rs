//! Durability administration: checkpoint control and WAL status reporting.
//!
//! The admin layer sits below the platform (the platform depends on it),
//! so it cannot reach tenant workspaces directly. Instead the platform
//! registers a [`DurabilityHook`] at construction; the admin service (and
//! the HTTP surface above it) talk to durable stores through the
//! [`DurabilityRegistry`] without knowing how tenants are laid out.

use std::sync::Arc;

use parking_lot::RwLock;

/// Point-in-time durability state of one tenant's warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Tenant id.
    pub tenant: String,
    /// Effective fsync policy (`"always"` / `"never"`).
    pub fsync: String,
    /// Effective checkpoint format (`"segments"` / `"json"`).
    pub format: String,
    /// WAL records appended since the log was opened.
    pub wal_appends: u64,
    /// WAL bytes appended since the log was opened.
    pub wal_bytes: u64,
    /// Current WAL file length in bytes.
    pub wal_file_len: u64,
    /// LSN the next append will receive.
    pub next_lsn: u64,
}

/// Result of one administrative checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// Tenant id.
    pub tenant: String,
    /// Tables captured in the checkpoint cut.
    pub tables: usize,
    /// Tables actually re-encoded to disk (fewer than `tables` when an
    /// incremental segment checkpoint skipped clean tables).
    pub tables_flushed: usize,
    /// WAL bytes folded into the checkpoint and discarded.
    pub wal_bytes_folded: u64,
    /// Checkpoint wall time in microseconds.
    pub micros: u64,
}

/// Durability administration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// No hook registered: the platform is running without durable storage.
    Unavailable,
    /// The tenant has no durable store.
    UnknownTenant(String),
    /// The underlying storage operation failed.
    Storage(String),
    /// A transient storage failure that exhausted its retry budget — the
    /// caller may retry the whole operation later (HTTP maps this to 503).
    Retryable(String),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Unavailable => write!(f, "durability is not enabled"),
            DurabilityError::UnknownTenant(t) => write!(f, "tenant {t} has no durable store"),
            DurabilityError::Storage(e) => write!(f, "storage failure: {e}"),
            DurabilityError::Retryable(e) => write!(f, "transient storage failure: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

/// Implemented by the platform layer over its tenant workspaces.
pub trait DurabilityHook: Send + Sync {
    /// Tenants with durable stores, sorted.
    fn tenants(&self) -> Vec<String>;
    /// Durability state of one tenant.
    fn status(&self, tenant: &str) -> Result<DurabilityStatus, DurabilityError>;
    /// Checkpoint one tenant's warehouse (fold WAL into snapshot).
    fn checkpoint(&self, tenant: &str) -> Result<CheckpointOutcome, DurabilityError>;
}

/// Registry the admin service exposes; empty until the platform registers
/// its hook.
#[derive(Default)]
pub struct DurabilityRegistry {
    hook: RwLock<Option<Arc<dyn DurabilityHook>>>,
}

impl DurabilityRegistry {
    /// Empty registry (durability reported unavailable).
    pub fn new() -> Self {
        DurabilityRegistry::default()
    }

    /// Install the platform's hook (replacing any previous one).
    pub fn register(&self, hook: Arc<dyn DurabilityHook>) {
        *self.hook.write() = Some(hook);
    }

    /// Whether a hook is registered.
    pub fn is_available(&self) -> bool {
        self.hook.read().is_some()
    }

    fn hook(&self) -> Result<Arc<dyn DurabilityHook>, DurabilityError> {
        self.hook.read().clone().ok_or(DurabilityError::Unavailable)
    }

    /// Durability state of one tenant.
    pub fn status(&self, tenant: &str) -> Result<DurabilityStatus, DurabilityError> {
        self.hook()?.status(tenant)
    }

    /// Durability state of every durable tenant, sorted by tenant id.
    pub fn status_all(&self) -> Result<Vec<DurabilityStatus>, DurabilityError> {
        let hook = self.hook()?;
        let mut all = Vec::new();
        for t in hook.tenants() {
            all.push(hook.status(&t)?);
        }
        all.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        Ok(all)
    }

    /// Checkpoint one tenant's warehouse.
    pub fn checkpoint(&self, tenant: &str) -> Result<CheckpointOutcome, DurabilityError> {
        self.hook()?.checkpoint(tenant)
    }

    /// Checkpoint every durable tenant, returning per-tenant outcomes in
    /// tenant order. Individual failures don't abort the sweep.
    pub fn checkpoint_all(
        &self,
    ) -> Result<Vec<Result<CheckpointOutcome, DurabilityError>>, DurabilityError> {
        let hook = self.hook()?;
        let mut tenants = hook.tenants();
        tenants.sort();
        Ok(tenants.iter().map(|t| hook.checkpoint(t)).collect())
    }
}

impl std::fmt::Debug for DurabilityRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityRegistry")
            .field("registered", &self.is_available())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeHook;

    impl DurabilityHook for FakeHook {
        fn tenants(&self) -> Vec<String> {
            vec!["beta".into(), "acme".into()]
        }
        fn status(&self, tenant: &str) -> Result<DurabilityStatus, DurabilityError> {
            if tenant == "ghost" {
                return Err(DurabilityError::UnknownTenant(tenant.into()));
            }
            Ok(DurabilityStatus {
                tenant: tenant.to_string(),
                fsync: "never".into(),
                format: "segments".into(),
                wal_appends: 3,
                wal_bytes: 120,
                wal_file_len: 120,
                next_lsn: 4,
            })
        }
        fn checkpoint(&self, tenant: &str) -> Result<CheckpointOutcome, DurabilityError> {
            Ok(CheckpointOutcome {
                tenant: tenant.to_string(),
                tables: 2,
                tables_flushed: 1,
                wal_bytes_folded: 120,
                micros: 42,
            })
        }
    }

    #[test]
    fn empty_registry_is_unavailable() {
        let r = DurabilityRegistry::new();
        assert!(!r.is_available());
        assert_eq!(r.status("acme"), Err(DurabilityError::Unavailable));
        assert_eq!(r.checkpoint("acme"), Err(DurabilityError::Unavailable));
        assert!(r.status_all().is_err());
    }

    #[test]
    fn registered_hook_serves_status_and_checkpoints() {
        let r = DurabilityRegistry::new();
        r.register(Arc::new(FakeHook));
        assert!(r.is_available());
        let all = r.status_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].tenant, "acme"); // sorted
        assert_eq!(all[1].tenant, "beta");
        assert_eq!(r.status("acme").unwrap().wal_appends, 3);
        assert!(matches!(
            r.status("ghost"),
            Err(DurabilityError::UnknownTenant(_))
        ));
        let outcomes = r.checkpoint_all().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].as_ref().unwrap().tenant, "acme");
        assert_eq!(outcomes[0].as_ref().unwrap().wal_bytes_folded, 120);
    }
}
