//! The administration service: tenant provisioning, usage and performance
//! reporting, and billing runs.

use std::sync::Arc;
use std::time::Duration;

use odbis_security::Role;
use odbis_telemetry::{CostLine, CostModel, Telemetry};
use odbis_tenancy::{
    Invoice, ServiceKind, SubscriptionPlan, TenancyError, TenantRegistry, UsageMeter,
};
use parking_lot::Mutex;

use crate::config::PlatformConfig;
use crate::durability::DurabilityRegistry;

/// A latency sample recorded by the performance monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfSample {
    /// Duration of the operation.
    pub duration: Duration,
}

/// Per-operation latency statistics ("report same information on platform
/// usage and performance", ODBIS §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Operation name.
    pub operation: String,
    /// Sample count.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// 50th percentile.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// Maximum.
    pub max: Duration,
}

/// Thread-safe latency recorder.
#[derive(Debug, Default)]
pub struct PerfMonitor {
    samples: Mutex<Vec<(String, Duration)>>,
}

impl PerfMonitor {
    /// Empty monitor.
    pub fn new() -> Self {
        PerfMonitor::default()
    }

    /// Record one operation latency.
    pub fn record(&self, operation: &str, duration: Duration) {
        self.samples.lock().push((operation.to_string(), duration));
    }

    /// Time a closure and record it.
    pub fn time<R>(&self, operation: &str, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let r = f();
        self.record(operation, start.elapsed());
        r
    }

    /// Statistics for one operation (None when no samples exist).
    pub fn report(&self, operation: &str) -> Option<PerfReport> {
        let samples = self.samples.lock();
        let mut durations: Vec<Duration> = samples
            .iter()
            .filter(|(op, _)| op == operation)
            .map(|(_, d)| *d)
            .collect();
        if durations.is_empty() {
            return None;
        }
        durations.sort();
        let count = durations.len();
        let total: Duration = durations.iter().sum();
        let pct = |p: f64| durations[(((count - 1) as f64) * p) as usize];
        Some(PerfReport {
            operation: operation.to_string(),
            count,
            mean: total / count as u32,
            p50: pct(0.50),
            p95: pct(0.95),
            max: *durations.last().expect("non-empty"),
        })
    }

    /// Names of all recorded operations, sorted and deduplicated.
    pub fn operations(&self) -> Vec<String> {
        let mut ops: Vec<String> = self
            .samples
            .lock()
            .iter()
            .map(|(op, _)| op.clone())
            .collect();
        ops.sort();
        ops.dedup();
        ops
    }
}

/// One line of the platform usage report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageLine {
    /// Tenant id.
    pub tenant: String,
    /// Service code (MDS/IS/AS/RS/IDS/ADM).
    pub service: &'static str,
    /// Metered units.
    pub units: u64,
}

/// The administration & configuration service of the ODBIS platform.
pub struct AdminService {
    registry: Arc<TenantRegistry>,
    meter: Arc<UsageMeter>,
    /// Platform configuration store — shared (`Arc`) so cross-cutting
    /// consumers like the web tier's admission-control resolver can read
    /// live limits without holding the whole service.
    pub config: Arc<PlatformConfig>,
    /// Platform performance monitor.
    pub perf: PerfMonitor,
    /// The telemetry spine: spans, histograms, slow log (shared with every
    /// layer through the thread-local trace context).
    pub telemetry: Arc<Telemetry>,
    /// The pay-as-you-go cost model joining meter units with telemetry.
    pub cost_model: CostModel,
    /// Durability administration: checkpoint control and WAL status, once
    /// the platform registers its hook.
    pub durability: DurabilityRegistry,
}

impl AdminService {
    /// Build over shared tenancy infrastructure.
    pub fn new(registry: Arc<TenantRegistry>, meter: Arc<UsageMeter>) -> Self {
        AdminService {
            registry,
            meter,
            config: Arc::new(PlatformConfig::with_defaults()),
            perf: PerfMonitor::new(),
            telemetry: Arc::new(Telemetry::new()),
            cost_model: CostModel::default(),
            durability: DurabilityRegistry::new(),
        }
    }

    /// Provision a tenant: register it, create its security realm with the
    /// standard role set, and create the tenant's first administrator.
    pub fn provision_tenant(
        &self,
        id: &str,
        display_name: &str,
        plan: SubscriptionPlan,
        admin_user: &str,
        admin_password: &str,
    ) -> Result<(), TenancyError> {
        let realm = self.registry.provision(id, display_name, plan)?;
        let wrap = |e: odbis_security::SecurityError| TenancyError::PlanLimit(e.to_string());
        realm
            .create_role(Role::new("ROLE_USER").grant("PLATFORM_LOGIN"))
            .map_err(wrap)?;
        realm
            .create_role(
                Role::new("ROLE_ANALYST")
                    .grant("REPORT_VIEW")
                    .grant("CUBE_QUERY")
                    .grant("DATASET_RUN")
                    .inherits("ROLE_USER"),
            )
            .map_err(wrap)?;
        realm
            .create_role(
                Role::new("ROLE_DESIGNER")
                    .grant("ETL_DESIGN")
                    .grant("CUBE_DESIGN")
                    .grant("REPORT_DESIGN")
                    .inherits("ROLE_ANALYST"),
            )
            .map_err(wrap)?;
        realm
            .create_role(
                Role::new("ROLE_TENANT_ADMIN")
                    .grant("ADMIN_USERS")
                    .grant("ADMIN_CONFIG")
                    .inherits("ROLE_DESIGNER"),
            )
            .map_err(wrap)?;
        realm
            .create_user(admin_user, admin_password)
            .map_err(wrap)?;
        realm
            .assign_role(admin_user, "ROLE_TENANT_ADMIN")
            .map_err(wrap)?;
        Ok(())
    }

    /// The usage report: one line per (tenant, service) with usage, sorted.
    pub fn usage_report(&self) -> Vec<UsageLine> {
        self.meter
            .summary()
            .into_iter()
            .map(|((tenant, service), units)| UsageLine {
                tenant,
                service: service.code(),
                units,
            })
            .collect()
    }

    /// Run billing for the period: one invoice per tenant from the metered
    /// usage, then reset the meters.
    pub fn billing_run(&self) -> Vec<Invoice> {
        let mut invoices = Vec::new();
        for id in self.registry.tenant_ids() {
            let Ok(tenant) = self.registry.get(&id) else {
                continue;
            };
            let units = self.meter.tenant_total(&id);
            invoices.push(Invoice::compute(&id, &tenant.plan, units));
        }
        self.meter.close_period();
        invoices
    }

    /// The pay-as-you-go invoice: an outer join of metered units
    /// (`UsageMeter`) with measured resource consumption (telemetry
    /// requests, rows, bytes, CPU time) per `(tenant, service)`, priced by
    /// the cost model. Non-destructive — neither the meter nor the
    /// telemetry registry is reset (that stays `billing_run`'s job).
    pub fn invoice_report(&self) -> Vec<CostLine> {
        let usage = self.meter.summary();
        let mut totals = self.telemetry.totals();
        let mut lines = Vec::new();
        for ((tenant, service), units) in usage {
            let code = service.code();
            let t = totals
                .remove(&(tenant.clone(), code.to_string()))
                .unwrap_or_default();
            lines.push(self.cost_model.line(&tenant, code, units, t));
        }
        // telemetry-only pairs (e.g. calls that failed before metering).
        // Child spans carry layer labels (`sql`, `olap`, ...) whose time is
        // already inside the gate-level root spans — only gate service
        // codes become invoice lines.
        for ((tenant, service), t) in totals {
            if ServiceKind::ALL.iter().any(|k| k.code() == service) {
                lines.push(self.cost_model.line(&tenant, &service, 0, t));
            }
        }
        lines.sort_by(|a, b| (&a.tenant, &a.service).cmp(&(&b.tenant, &b.service)));
        lines
    }

    /// Record usage on behalf of a service (the platform layer calls this
    /// on every service invocation).
    pub fn meter_usage(&self, tenant: &str, service: ServiceKind, units: u64) {
        self.meter.record(tenant, service, units);
    }

    /// Shared registry handle.
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// Shared meter handle.
    pub fn meter(&self) -> &Arc<UsageMeter> {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admin() -> AdminService {
        AdminService::new(Arc::new(TenantRegistry::new()), Arc::new(UsageMeter::new()))
    }

    #[test]
    fn provisioning_creates_realm_with_roles_and_admin() {
        let a = admin();
        a.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let realm = a.registry().realm("acme").unwrap();
        let session = realm.login("root", "pw").unwrap();
        assert_eq!(realm.authenticate(&session.token).unwrap(), "root");
        // the tenant admin transitively holds every standard authority
        for auth in ["PLATFORM_LOGIN", "REPORT_VIEW", "ETL_DESIGN", "ADMIN_USERS"] {
            assert!(realm.has_authority("root", auth), "missing {auth}");
        }
        assert!(matches!(
            a.provision_tenant("acme", "again", SubscriptionPlan::free(), "x", "y"),
            Err(TenancyError::AlreadyExists(_))
        ));
    }

    #[test]
    fn usage_report_and_billing_run() {
        let a = admin();
        a.provision_tenant("t1", "T1", SubscriptionPlan::standard(), "a", "p")
            .unwrap();
        a.provision_tenant("t2", "T2", SubscriptionPlan::free(), "a", "p")
            .unwrap();
        a.meter_usage("t1", ServiceKind::Reporting, 150_000);
        a.meter_usage("t1", ServiceKind::Analysis, 10);
        a.meter_usage("t2", ServiceKind::Reporting, 5);
        let report = a.usage_report();
        assert_eq!(report.len(), 3);
        assert!(report
            .iter()
            .any(|l| l.tenant == "t1" && l.service == "RS" && l.units == 150_000));
        let invoices = a.billing_run();
        assert_eq!(invoices.len(), 2);
        let t1 = invoices.iter().find(|i| i.tenant == "t1").unwrap();
        assert_eq!(t1.units, 150_010);
        assert!(t1.overage_cents > 0);
        let t2 = invoices.iter().find(|i| i.tenant == "t2").unwrap();
        assert_eq!(t2.total_cents, 0);
        // meters reset after the run
        assert!(a.usage_report().is_empty());
    }

    #[test]
    fn invoice_report_joins_meter_and_telemetry() {
        let a = admin();
        a.provision_tenant("t1", "T1", SubscriptionPlan::standard(), "u", "p")
            .unwrap();
        a.meter_usage("t1", ServiceKind::Metadata, 100);
        {
            let mut span = a.telemetry.span("t1", "MDS", "sql", 0);
            span.set_rows(50);
            // a child span must NOT produce its own invoice line
            let _child = odbis_telemetry::child_span("sql", "execute");
        }
        // telemetry-only service for another tenant
        drop(a.telemetry.span("t2", "AS", "mdx", 0));
        let lines = a.invoice_report();
        assert_eq!(lines.len(), 2);
        let t1 = &lines[0];
        assert_eq!((t1.tenant.as_str(), t1.service.as_str()), ("t1", "MDS"));
        assert_eq!(t1.units, 100);
        assert_eq!(t1.requests, 1);
        assert_eq!(t1.rows, 50);
        assert!(t1.millicents >= 100 * a.cost_model.millicents_per_unit);
        let t2 = &lines[1];
        assert_eq!((t2.tenant.as_str(), t2.service.as_str()), ("t2", "AS"));
        assert_eq!(t2.units, 0);
        assert_eq!(t2.requests, 1);
        // the meter is untouched by the report
        assert_eq!(a.meter().usage("t1", ServiceKind::Metadata), 100);
    }

    #[test]
    fn perf_monitor_percentiles() {
        let m = PerfMonitor::new();
        for ms in 1..=100u64 {
            m.record("query", Duration::from_millis(ms));
        }
        m.record("other", Duration::from_millis(5));
        let r = m.report("query").unwrap();
        assert_eq!(r.count, 100);
        assert_eq!(r.p50, Duration::from_millis(50));
        assert_eq!(r.p95, Duration::from_millis(95));
        assert_eq!(r.max, Duration::from_millis(100));
        assert!(m.report("missing").is_none());
        assert_eq!(
            m.operations(),
            vec!["other".to_string(), "query".to_string()]
        );
        let out = m.time("timed", || 40 + 2);
        assert_eq!(out, 42);
        assert_eq!(m.report("timed").unwrap().count, 1);
    }
}
