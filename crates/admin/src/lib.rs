//! # odbis-admin
//!
//! The infrastructure administration and configuration layer of ODBIS
//! (§3.1): "a web-based tool for administrators to manage users accounts,
//! to customize services configuration and to report same information on
//! platform usage and performance."
//!
//! * [`AdminService`] — tenant provisioning with the standard role
//!   hierarchy, usage reporting, billing runs;
//! * [`PlatformConfig`] — declared-key configuration with platform and
//!   per-tenant overrides (the paper's personalization claim);
//! * [`PerfMonitor`] — latency recording with percentile reports;
//! * [`DurabilityRegistry`] — checkpoint control and WAL status over the
//!   hook the platform registers for its durable tenant stores.

#![warn(missing_docs)]

mod config;
mod durability;
mod service;

pub use config::{ConfigError, ConfigValue, PlatformConfig};
pub use durability::{
    CheckpointOutcome, DurabilityError, DurabilityHook, DurabilityRegistry, DurabilityStatus,
};
pub use service::{AdminService, PerfMonitor, PerfReport, PerfSample, UsageLine};
