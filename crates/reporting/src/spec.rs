//! Report specifications: charts, data tables, KPIs and dashboards.

use odbis_sql::QueryResult;
use odbis_storage::Value;

/// Reporting errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// Named entity not found.
    NotFound(String),
    /// Entity already defined.
    AlreadyExists(String),
    /// A referenced column is missing from the data.
    MissingColumn(String),
    /// The data cannot be charted (empty, non-numeric series...).
    BadData(String),
    /// Template parameter problem.
    Parameter(String),
    /// Data-set execution failure.
    Execution(String),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::NotFound(e) => write!(f, "not found: {e}"),
            ReportError::AlreadyExists(e) => write!(f, "already exists: {e}"),
            ReportError::MissingColumn(c) => write!(f, "missing column: {c}"),
            ReportError::BadData(m) => write!(f, "cannot render: {m}"),
            ReportError::Parameter(m) => write!(f, "parameter error: {m}"),
            ReportError::Execution(m) => write!(f, "execution failed: {m}"),
        }
    }
}

impl std::error::Error for ReportError {}

/// Result alias for reporting operations.
pub type ReportResult<T> = Result<T, ReportError>;

/// Chart families supported by the ad-hoc reporting module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartKind {
    /// Vertical bars per category.
    Bar,
    /// Connected line per series.
    Line,
    /// Share-of-total pie.
    Pie,
}

/// An ad-hoc chart report ("an easy way to define chart reports", §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSpec {
    /// Chart title.
    pub title: String,
    /// Chart family.
    pub kind: ChartKind,
    /// Column holding category labels (x axis / pie slices).
    pub category: String,
    /// Numeric series columns (pie uses the first).
    pub series: Vec<String>,
}

/// An ad-hoc data-table report.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Table title.
    pub title: String,
    /// Columns to show (empty = all, in data order).
    pub columns: Vec<String>,
    /// Cap on rendered rows (None = all).
    pub max_rows: Option<usize>,
}

/// A single-number KPI tile.
#[derive(Debug, Clone, PartialEq)]
pub struct KpiSpec {
    /// KPI label.
    pub title: String,
    /// Column whose first value is the KPI.
    pub value_column: String,
    /// Unit suffix (e.g. `"€"`, `"%"`).
    pub unit: String,
}

/// One dashboard widget: a spec plus the data set feeding it.
#[derive(Debug, Clone, PartialEq)]
pub enum Widget {
    /// Chart widget.
    Chart {
        /// Feeding data set (resolved by the reporting service).
        dataset: String,
        /// Chart specification.
        spec: ChartSpec,
    },
    /// Table widget.
    Table {
        /// Feeding data set.
        dataset: String,
        /// Table specification.
        spec: TableSpec,
    },
    /// KPI widget.
    Kpi {
        /// Feeding data set.
        dataset: String,
        /// KPI specification.
        spec: KpiSpec,
    },
}

impl Widget {
    /// The widget's feeding data set.
    pub fn dataset(&self) -> &str {
        match self {
            Widget::Chart { dataset, .. }
            | Widget::Table { dataset, .. }
            | Widget::Kpi { dataset, .. } => dataset,
        }
    }

    /// The widget's display title.
    pub fn title(&self) -> &str {
        match self {
            Widget::Chart { spec, .. } => &spec.title,
            Widget::Table { spec, .. } => &spec.title,
            Widget::Kpi { spec, .. } => &spec.title,
        }
    }
}

/// A dashboard: a titled grid of widgets (Figure 6 of the paper is one of
/// these, built with the ad-hoc reporting module).
#[derive(Debug, Clone, PartialEq)]
pub struct Dashboard {
    /// Dashboard name (unique in its report group).
    pub name: String,
    /// Display title.
    pub title: String,
    /// Widgets per row: each inner vec renders as one grid row.
    pub rows: Vec<Vec<Widget>>,
}

impl Dashboard {
    /// All widgets in render order.
    pub fn widgets(&self) -> impl Iterator<Item = &Widget> {
        self.rows.iter().flatten()
    }

    /// Number of widgets.
    pub fn widget_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// Extract `(category, series-values)` pairs from query data for a chart.
pub fn chart_data(spec: &ChartSpec, data: &QueryResult) -> ReportResult<Vec<(String, Vec<f64>)>> {
    if spec.series.is_empty() {
        return Err(ReportError::BadData("chart has no series".into()));
    }
    let cat = data
        .column_index(&spec.category)
        .ok_or_else(|| ReportError::MissingColumn(spec.category.clone()))?;
    let series_idx: ReportResult<Vec<usize>> = spec
        .series
        .iter()
        .map(|s| {
            data.column_index(s)
                .ok_or_else(|| ReportError::MissingColumn(s.clone()))
        })
        .collect();
    let series_idx = series_idx?;
    // consume the result column-wise (one pass down the category column for
    // labels, then one per series column), matching how the vectorized
    // engine produces it
    let mut out: Vec<(String, Vec<f64>)> = data
        .column(cat)
        .map(|v| (v.render(), Vec::with_capacity(series_idx.len())))
        .collect();
    for &i in &series_idx {
        for (slot, v) in out.iter_mut().zip(data.column(i)) {
            let n = if v.is_null() {
                0.0
            } else {
                v.as_f64().ok_or_else(|| {
                    ReportError::BadData(format!("non-numeric value {} in series", v.render()))
                })?
            };
            slot.1.push(n);
        }
    }
    Ok(out)
}

/// Extract the KPI value from query data.
pub fn kpi_value(spec: &KpiSpec, data: &QueryResult) -> ReportResult<Value> {
    let i = data
        .column_index(&spec.value_column)
        .ok_or_else(|| ReportError::MissingColumn(spec.value_column.clone()))?;
    data.column(i)
        .next()
        .cloned()
        .ok_or_else(|| ReportError::BadData("KPI query returned no rows".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> QueryResult {
        QueryResult {
            columns: vec!["region".into(), "total".into(), "n".into()],
            rows: vec![
                vec!["EU".into(), Value::Float(70.0), Value::Int(3)],
                vec!["US".into(), Value::Float(30.0), Value::Int(1)],
            ],
            rows_affected: 0,
        }
    }

    #[test]
    fn chart_data_extraction() {
        let spec = ChartSpec {
            title: "t".into(),
            kind: ChartKind::Bar,
            category: "region".into(),
            series: vec!["total".into(), "n".into()],
        };
        let d = chart_data(&spec, &data()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], ("EU".to_string(), vec![70.0, 3.0]));
        let bad = ChartSpec {
            category: "ghost".into(),
            ..spec.clone()
        };
        assert!(matches!(
            chart_data(&bad, &data()),
            Err(ReportError::MissingColumn(_))
        ));
        let nonnum = ChartSpec {
            series: vec!["region".into()],
            ..spec
        };
        assert!(matches!(
            chart_data(&nonnum, &data()),
            Err(ReportError::BadData(_))
        ));
    }

    #[test]
    fn kpi_extraction() {
        let spec = KpiSpec {
            title: "Total".into(),
            value_column: "total".into(),
            unit: "€".into(),
        };
        assert_eq!(kpi_value(&spec, &data()).unwrap(), Value::Float(70.0));
        let empty = QueryResult {
            columns: vec!["total".into()],
            rows: vec![],
            rows_affected: 0,
        };
        assert!(matches!(
            kpi_value(&spec, &empty),
            Err(ReportError::BadData(_))
        ));
    }

    #[test]
    fn dashboard_widget_iteration() {
        let w = Widget::Kpi {
            dataset: "d1".into(),
            spec: KpiSpec {
                title: "K".into(),
                value_column: "v".into(),
                unit: String::new(),
            },
        };
        let dash = Dashboard {
            name: "d".into(),
            title: "D".into(),
            rows: vec![vec![w.clone(), w.clone()], vec![w]],
        };
        assert_eq!(dash.widget_count(), 3);
        assert_eq!(dash.widgets().count(), 3);
        assert_eq!(dash.rows[0][0].dataset(), "d1");
        assert_eq!(dash.rows[0][0].title(), "K");
    }
}
