//! The Reporting Service: report groups, registered reports, dashboard
//! rendering over MDS data sets.

use std::collections::BTreeMap;
use std::sync::Arc;

use odbis_metadata::MetadataService;
use odbis_sql::QueryResult;
use parking_lot::RwLock;

use crate::render::{escape_html, render_chart_svg, render_kpi_html, render_table_html};
use crate::spec::{Dashboard, ReportError, ReportResult, Widget};
use crate::template::ReportTemplate;

/// A registered report: either an ad-hoc dashboard or an uploaded template.
#[derive(Debug, Clone)]
pub enum Report {
    /// Ad-hoc dashboard built from widgets over data sets.
    Dashboard(Dashboard),
    /// Uploaded parameterized template (the BIRT slot).
    Template(ReportTemplate),
}

impl Report {
    /// The report's name.
    pub fn name(&self) -> &str {
        match self {
            Report::Dashboard(d) => &d.name,
            Report::Template(t) => &t.name,
        }
    }
}

/// The Reporting Service (RS) — manages "report-groups and reports"
/// (ODBIS §3.3) and renders them through the shared Meta-Data Service.
pub struct ReportingService {
    mds: Arc<MetadataService>,
    groups: RwLock<BTreeMap<String, BTreeMap<String, Report>>>,
}

impl ReportingService {
    /// Service over a Meta-Data Service instance (data sets are resolved
    /// there — experiment C3's shared-metadata path).
    pub fn new(mds: Arc<MetadataService>) -> Self {
        ReportingService {
            mds,
            groups: RwLock::new(BTreeMap::new()),
        }
    }

    /// Create a report group.
    pub fn create_group(&self, name: &str) -> ReportResult<()> {
        let mut groups = self.groups.write();
        if groups.contains_key(name) {
            return Err(ReportError::AlreadyExists(format!("group {name}")));
        }
        groups.insert(name.to_string(), BTreeMap::new());
        Ok(())
    }

    /// Register a report in a group.
    pub fn register(&self, group: &str, report: Report) -> ReportResult<()> {
        let mut groups = self.groups.write();
        let g = groups
            .get_mut(group)
            .ok_or_else(|| ReportError::NotFound(format!("group {group}")))?;
        let name = report.name().to_string();
        if g.contains_key(&name) {
            return Err(ReportError::AlreadyExists(format!("report {name}")));
        }
        g.insert(name, report);
        Ok(())
    }

    /// Group names.
    pub fn group_names(&self) -> Vec<String> {
        self.groups.read().keys().cloned().collect()
    }

    /// Report names within a group.
    pub fn report_names(&self, group: &str) -> ReportResult<Vec<String>> {
        self.groups
            .read()
            .get(group)
            .map(|g| g.keys().cloned().collect())
            .ok_or_else(|| ReportError::NotFound(format!("group {group}")))
    }

    /// Fetch a report.
    pub fn report(&self, group: &str, name: &str) -> ReportResult<Report> {
        self.groups
            .read()
            .get(group)
            .and_then(|g| g.get(name))
            .cloned()
            .ok_or_else(|| ReportError::NotFound(format!("report {group}/{name}")))
    }

    fn dataset_data(&self, dataset: &str) -> ReportResult<QueryResult> {
        self.mds
            .execute_dataset(dataset)
            .map_err(|e| ReportError::Execution(e.to_string()))
    }

    /// Render one widget to an HTML fragment.
    pub fn render_widget(&self, widget: &Widget) -> ReportResult<String> {
        let data = self.dataset_data(widget.dataset())?;
        match widget {
            Widget::Chart { spec, .. } => render_chart_svg(spec, &data),
            Widget::Table { spec, .. } => render_table_html(spec, &data),
            Widget::Kpi { spec, .. } => render_kpi_html(spec, &data),
        }
    }

    /// Render a dashboard to a complete HTML document (the Figure 6 path).
    pub fn render_dashboard(&self, dashboard: &Dashboard) -> ReportResult<String> {
        let mut span = odbis_telemetry::child_span("reporting", "dashboard.render");
        span.set_detail(&dashboard.title);
        let result = self.render_dashboard_inner(dashboard);
        match &result {
            Ok(html) => span.set_bytes(html.len() as u64),
            Err(_) => span.fail(),
        }
        result
    }

    fn render_dashboard_inner(&self, dashboard: &Dashboard) -> ReportResult<String> {
        let mut html = format!(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{0}</title>\n\
             <style>\n\
             body {{ font-family: sans-serif; margin: 16px; }}\n\
             .dash-row {{ display: flex; gap: 16px; margin-bottom: 16px; }}\n\
             .dash-cell {{ flex: 1; border: 1px solid #ddd; border-radius: 6px; padding: 8px; }}\n\
             .odbis-kpi .kpi-value {{ font-size: 28px; font-weight: bold; }}\n\
             .odbis-table {{ border-collapse: collapse; width: 100%; }}\n\
             .odbis-table th, .odbis-table td {{ border: 1px solid #ccc; padding: 4px 8px; }}\n\
             </style></head>\n<body>\n<h1>{0}</h1>\n",
            escape_html(&dashboard.title)
        );
        for row in &dashboard.rows {
            html.push_str("<div class=\"dash-row\">\n");
            for widget in row {
                html.push_str("<div class=\"dash-cell\">\n");
                html.push_str(&self.render_widget(widget)?);
                html.push_str("</div>\n");
            }
            html.push_str("</div>\n");
        }
        html.push_str("</body></html>\n");
        Ok(html)
    }

    /// Render a registered dashboard by name.
    pub fn render_registered(&self, group: &str, name: &str) -> ReportResult<String> {
        match self.report(group, name)? {
            Report::Dashboard(d) => self.render_dashboard(&d),
            Report::Template(_) => Err(ReportError::Parameter(
                "templates need parameters; use run_template".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChartKind, ChartSpec, KpiSpec, TableSpec};
    use odbis_metadata::{DataSet, DataSource};
    use odbis_sql::Engine;
    use odbis_storage::Database;

    fn service() -> ReportingService {
        let db = Arc::new(Database::new());
        Engine::new()
            .execute_script(
                &db,
                "CREATE TABLE sales (region TEXT, amount DOUBLE);
                 INSERT INTO sales VALUES ('EU', 70), ('US', 30);",
            )
            .unwrap();
        let mds = Arc::new(MetadataService::new());
        mds.register_source(
            DataSource {
                name: "wh".into(),
                url: "odbis://wh".into(),
                user: "u".into(),
                password: "p".into(),
                driver: "odbis".into(),
            },
            db,
        )
        .unwrap();
        mds.define_dataset(DataSet {
            name: "by_region".into(),
            source: "wh".into(),
            sql: "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY region"
                .into(),
            description: String::new(),
        })
        .unwrap();
        mds.define_dataset(DataSet {
            name: "grand_total".into(),
            source: "wh".into(),
            sql: "SELECT SUM(amount) AS total FROM sales".into(),
            description: String::new(),
        })
        .unwrap();
        ReportingService::new(mds)
    }

    fn dashboard() -> Dashboard {
        Dashboard {
            name: "exec".into(),
            title: "Executive Overview".into(),
            rows: vec![
                vec![Widget::Kpi {
                    dataset: "grand_total".into(),
                    spec: KpiSpec {
                        title: "Total revenue".into(),
                        value_column: "total".into(),
                        unit: "€".into(),
                    },
                }],
                vec![
                    Widget::Chart {
                        dataset: "by_region".into(),
                        spec: ChartSpec {
                            title: "By region".into(),
                            kind: ChartKind::Pie,
                            category: "region".into(),
                            series: vec!["total".into()],
                        },
                    },
                    Widget::Table {
                        dataset: "by_region".into(),
                        spec: TableSpec {
                            title: "Detail".into(),
                            columns: vec![],
                            max_rows: None,
                        },
                    },
                ],
            ],
        }
    }

    #[test]
    fn group_and_report_management() {
        let rs = service();
        rs.create_group("finance").unwrap();
        assert!(matches!(
            rs.create_group("finance"),
            Err(ReportError::AlreadyExists(_))
        ));
        rs.register("finance", Report::Dashboard(dashboard()))
            .unwrap();
        assert!(matches!(
            rs.register("finance", Report::Dashboard(dashboard())),
            Err(ReportError::AlreadyExists(_))
        ));
        assert!(matches!(
            rs.register("ghost", Report::Dashboard(dashboard())),
            Err(ReportError::NotFound(_))
        ));
        assert_eq!(rs.report_names("finance").unwrap(), vec!["exec"]);
        assert_eq!(rs.group_names(), vec!["finance"]);
        assert!(rs.report("finance", "exec").is_ok());
    }

    #[test]
    fn dashboard_renders_all_widgets() {
        let rs = service();
        let html = rs.render_dashboard(&dashboard()).unwrap();
        assert!(html.contains("Executive Overview"));
        assert!(html.contains("kpi-value")); // KPI
        assert!(html.contains("<svg")); // chart
        assert!(html.contains("odbis-table")); // table
        assert!(html.contains("100.0€")); // 70 + 30
        assert_eq!(html.matches("dash-row").count(), 2 + 1); // 2 rows + css rule
    }

    #[test]
    fn render_registered_dashboard() {
        let rs = service();
        rs.create_group("g").unwrap();
        rs.register("g", Report::Dashboard(dashboard())).unwrap();
        let html = rs.render_registered("g", "exec").unwrap();
        assert!(html.contains("Executive Overview"));
        assert!(rs.render_registered("g", "nope").is_err());
    }

    #[test]
    fn widget_with_missing_dataset_fails() {
        let rs = service();
        let w = Widget::Kpi {
            dataset: "ghost".into(),
            spec: KpiSpec {
                title: "x".into(),
                value_column: "v".into(),
                unit: String::new(),
            },
        };
        assert!(matches!(
            rs.render_widget(&w),
            Err(ReportError::Execution(_))
        ));
    }
}
