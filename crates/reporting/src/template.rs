//! Parameterized report templates — the BIRT-reporting slot of the RS
//! ("a BIRT reporting module that allows upload and execute BIRT reports",
//! §3.3): declarative, parameterized report definitions executed against a
//! database and rendered to HTML.

use std::collections::BTreeMap;
use std::sync::Arc;

use odbis_sql::Engine;
use odbis_storage::{DataType, Database, Value};

use crate::render::{escape_html, render_chart_svg, render_table_html};
use crate::spec::{ChartSpec, ReportError, ReportResult, TableSpec};

/// A template parameter declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Parameter name (referenced as `${name}` in section SQL).
    pub name: String,
    /// Expected type.
    pub data_type: DataType,
    /// Default when the caller omits the parameter.
    pub default: Option<Value>,
}

/// One section of a report template.
#[derive(Debug, Clone, PartialEq)]
pub enum Section {
    /// Static heading text.
    Heading(String),
    /// Static paragraph text.
    Paragraph(String),
    /// A query rendered as a table.
    QueryTable {
        /// SQL with `${param}` placeholders.
        sql: String,
        /// Table rendering spec.
        spec: TableSpec,
    },
    /// A query rendered as a chart.
    QueryChart {
        /// SQL with `${param}` placeholders.
        sql: String,
        /// Chart rendering spec.
        spec: ChartSpec,
    },
}

/// A report template: parameters + ordered sections.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportTemplate {
    /// Template name.
    pub name: String,
    /// Report title.
    pub title: String,
    /// Declared parameters.
    pub parameters: Vec<ParamDef>,
    /// Sections in render order.
    pub sections: Vec<Section>,
}

/// A fully rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedReport {
    /// Template the report came from.
    pub template: String,
    /// Complete HTML document.
    pub html: String,
    /// Number of queries executed.
    pub queries_run: usize,
}

/// Execute a template with actual parameters.
///
/// Parameter substitution is *typed and literal-quoted*: values are
/// validated against the declared type and rendered as SQL literals (text
/// values quoted and escaped), so template parameters cannot inject SQL.
pub fn run_template(
    template: &ReportTemplate,
    params: &BTreeMap<String, Value>,
    db: &Arc<Database>,
) -> ReportResult<RenderedReport> {
    let mut span = odbis_telemetry::child_span("reporting", "template.run");
    span.set_detail(&template.name);
    let result = run_template_inner(template, params, db);
    match &result {
        Ok(r) => span.set_bytes(r.html.len() as u64),
        Err(_) => span.fail(),
    }
    result
}

fn run_template_inner(
    template: &ReportTemplate,
    params: &BTreeMap<String, Value>,
    db: &Arc<Database>,
) -> ReportResult<RenderedReport> {
    // resolve parameters: defaults, presence, type check
    let mut resolved: BTreeMap<&str, Value> = BTreeMap::new();
    for def in &template.parameters {
        let value = match params.get(&def.name) {
            Some(v) => v.clone(),
            None => def.default.clone().ok_or_else(|| {
                ReportError::Parameter(format!("missing required parameter {}", def.name))
            })?,
        };
        let value = value.coerce_to(def.data_type).ok_or_else(|| {
            ReportError::Parameter(format!(
                "parameter {} must be {}, got {}",
                def.name,
                def.data_type,
                value.render()
            ))
        })?;
        resolved.insert(&def.name, value);
    }
    for name in params.keys() {
        if !template.parameters.iter().any(|d| &d.name == name) {
            return Err(ReportError::Parameter(format!("unknown parameter {name}")));
        }
    }

    let engine = Engine::new();
    let mut html = format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>{0}</title></head>\n\
         <body>\n<h1>{0}</h1>\n",
        escape_html(&template.title)
    );
    let mut queries_run = 0;
    for section in &template.sections {
        match section {
            Section::Heading(text) => {
                html.push_str(&format!("<h2>{}</h2>\n", escape_html(text)));
            }
            Section::Paragraph(text) => {
                html.push_str(&format!("<p>{}</p>\n", escape_html(text)));
            }
            Section::QueryTable { sql, spec } => {
                let result = execute(&engine, db, sql, &resolved)?;
                queries_run += 1;
                html.push_str(&render_table_html(spec, &result)?);
            }
            Section::QueryChart { sql, spec } => {
                let result = execute(&engine, db, sql, &resolved)?;
                queries_run += 1;
                html.push_str(&render_chart_svg(spec, &result)?);
            }
        }
    }
    html.push_str("</body></html>\n");
    Ok(RenderedReport {
        template: template.name.clone(),
        html,
        queries_run,
    })
}

fn execute(
    engine: &Engine,
    db: &Arc<Database>,
    sql: &str,
    params: &BTreeMap<&str, Value>,
) -> ReportResult<odbis_sql::QueryResult> {
    let substituted = substitute(sql, params)?;
    engine
        .execute(db, &substituted)
        .map_err(|e| ReportError::Execution(format!("{substituted}: {e}")))
}

/// Replace `${name}` placeholders with SQL literals.
pub fn substitute(sql: &str, params: &BTreeMap<&str, Value>) -> ReportResult<String> {
    let mut out = String::with_capacity(sql.len());
    let mut rest = sql;
    while let Some(start) = rest.find("${") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let end = after
            .find('}')
            .ok_or_else(|| ReportError::Parameter("unterminated ${ placeholder".to_string()))?;
        let name = &after[..end];
        let value = params
            .get(name)
            .ok_or_else(|| ReportError::Parameter(format!("undeclared parameter {name} in SQL")))?;
        out.push_str(&sql_literal(value));
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(_) => format!("DATE '{}'", v.render()),
        Value::Timestamp(_) => format!("TIMESTAMP '{}'", v.render()),
        other => other.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChartKind;

    fn db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        Engine::new()
            .execute_script(
                &db,
                "CREATE TABLE visits (dept TEXT, year INT, patients INT);
                 INSERT INTO visits VALUES
                   ('Cardiology', 2009, 120), ('Cardiology', 2010, 150),
                   ('Oncology', 2009, 80), ('Oncology', 2010, 95);",
            )
            .unwrap();
        db
    }

    fn template() -> ReportTemplate {
        ReportTemplate {
            name: "dept-report".into(),
            title: "Department Report".into(),
            parameters: vec![
                ParamDef {
                    name: "year".into(),
                    data_type: DataType::Int,
                    default: Some(Value::Int(2010)),
                },
                ParamDef {
                    name: "dept".into(),
                    data_type: DataType::Text,
                    default: None,
                },
            ],
            sections: vec![
                Section::Heading("Patient volume".into()),
                Section::QueryTable {
                    sql:
                        "SELECT dept, patients FROM visits WHERE year = ${year} AND dept = ${dept}"
                            .into(),
                    spec: TableSpec {
                        title: "Volume".into(),
                        columns: vec![],
                        max_rows: None,
                    },
                },
                Section::QueryChart {
                    sql: "SELECT dept, SUM(patients) AS total FROM visits GROUP BY dept".into(),
                    spec: ChartSpec {
                        title: "All departments".into(),
                        kind: ChartKind::Bar,
                        category: "dept".into(),
                        series: vec!["total".into()],
                    },
                },
            ],
        }
    }

    #[test]
    fn renders_with_params_and_defaults() {
        let mut params = BTreeMap::new();
        params.insert("dept".to_string(), Value::from("Cardiology"));
        let r = run_template(&template(), &params, &db()).unwrap();
        assert_eq!(r.queries_run, 2);
        assert!(r.html.contains("<h1>Department Report</h1>"));
        assert!(r.html.contains("150")); // 2010 default applied
        assert!(r.html.contains("<svg"));
    }

    #[test]
    fn missing_required_parameter() {
        let err = run_template(&template(), &BTreeMap::new(), &db()).unwrap_err();
        assert!(matches!(err, ReportError::Parameter(_)));
        assert!(err.to_string().contains("dept"));
    }

    #[test]
    fn wrong_type_and_unknown_params_rejected() {
        let mut params = BTreeMap::new();
        params.insert("dept".to_string(), Value::from("Oncology"));
        params.insert("year".to_string(), Value::from("not a year"));
        assert!(matches!(
            run_template(&template(), &params, &db()),
            Err(ReportError::Parameter(_))
        ));
        let mut params = BTreeMap::new();
        params.insert("dept".to_string(), Value::from("Oncology"));
        params.insert("bogus".to_string(), Value::Int(1));
        assert!(matches!(
            run_template(&template(), &params, &db()),
            Err(ReportError::Parameter(_))
        ));
    }

    #[test]
    fn injection_is_neutralized_by_literal_quoting() {
        let mut params = BTreeMap::new();
        params.insert("dept".to_string(), Value::from("x'; DROP TABLE visits; --"));
        let db = db();
        // executes fine (no rows match) and the table survives
        let r = run_template(&template(), &params, &db).unwrap();
        assert!(r.html.contains("All departments"));
        assert!(db.has_table("visits"));
    }

    #[test]
    fn substitute_edge_cases() {
        let mut p: BTreeMap<&str, Value> = BTreeMap::new();
        p.insert("a", Value::Int(1));
        assert_eq!(substitute("x = ${a}", &p).unwrap(), "x = 1");
        assert!(substitute("x = ${missing}", &p).is_err());
        assert!(substitute("x = ${unclosed", &p).is_err());
        p.insert("s", Value::from("it's"));
        assert_eq!(substitute("${s}", &p).unwrap(), "'it''s'");
    }
}
