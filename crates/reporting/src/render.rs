//! Renderers: SVG charts, HTML tables/dashboards, plain text.

use odbis_sql::QueryResult;

use crate::spec::{
    chart_data, kpi_value, ChartKind, ChartSpec, KpiSpec, ReportError, ReportResult, TableSpec,
};

/// Escape text for inclusion in HTML/SVG.
pub fn escape_html(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

const SERIES_COLORS: [&str; 6] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948",
];

/// Render a chart to a standalone SVG document.
pub fn render_chart_svg(spec: &ChartSpec, data: &QueryResult) -> ReportResult<String> {
    let rows = chart_data(spec, data)?;
    if rows.is_empty() {
        return Err(ReportError::BadData("no rows to chart".into()));
    }
    match spec.kind {
        ChartKind::Bar => render_bar(spec, &rows),
        ChartKind::Line => render_line(spec, &rows),
        ChartKind::Pie => render_pie(spec, &rows),
    }
}

const W: f64 = 480.0;
const H: f64 = 300.0;
const PAD: f64 = 40.0;

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\">\n\
         <text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        W / 2.0,
        escape_html(title)
    )
}

fn max_value(rows: &[(String, Vec<f64>)]) -> f64 {
    rows.iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-9)
}

fn render_bar(spec: &ChartSpec, rows: &[(String, Vec<f64>)]) -> ReportResult<String> {
    let mut svg = svg_header(&spec.title);
    let max = max_value(rows);
    let n_groups = rows.len() as f64;
    let n_series = spec.series.len() as f64;
    let group_w = (W - 2.0 * PAD) / n_groups;
    let bar_w = (group_w * 0.8) / n_series;
    for (gi, (label, values)) in rows.iter().enumerate() {
        for (si, v) in values.iter().enumerate() {
            let h = (v / max) * (H - 2.0 * PAD);
            let x = PAD + gi as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
            let y = H - PAD - h;
            svg.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{h:.1}\" fill=\"{}\"/>\n",
                bar_w.max(1.0),
                SERIES_COLORS[si % SERIES_COLORS.len()]
            ));
        }
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
            PAD + gi as f64 * group_w + group_w / 2.0,
            H - PAD + 14.0,
            escape_html(label)
        ));
    }
    svg.push_str(&axis_lines());
    svg.push_str(&legend(&spec.series));
    svg.push_str("</svg>\n");
    Ok(svg)
}

fn render_line(spec: &ChartSpec, rows: &[(String, Vec<f64>)]) -> ReportResult<String> {
    let mut svg = svg_header(&spec.title);
    let max = max_value(rows);
    let n = rows.len().max(2) as f64;
    let step = (W - 2.0 * PAD) / (n - 1.0);
    for si in 0..spec.series.len() {
        let points: Vec<String> = rows
            .iter()
            .enumerate()
            .map(|(i, (_, vs))| {
                let x = PAD + i as f64 * step;
                let y = H - PAD - (vs[si] / max) * (H - 2.0 * PAD);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\"/>\n",
            points.join(" "),
            SERIES_COLORS[si % SERIES_COLORS.len()]
        ));
    }
    for (i, (label, _)) in rows.iter().enumerate() {
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
            PAD + i as f64 * step,
            H - PAD + 14.0,
            escape_html(label)
        ));
    }
    svg.push_str(&axis_lines());
    svg.push_str(&legend(&spec.series));
    svg.push_str("</svg>\n");
    Ok(svg)
}

fn render_pie(spec: &ChartSpec, rows: &[(String, Vec<f64>)]) -> ReportResult<String> {
    let total: f64 = rows.iter().map(|(_, vs)| vs[0]).sum();
    if total <= 0.0 {
        return Err(ReportError::BadData("pie total must be positive".into()));
    }
    let (cx, cy, r) = (W / 2.0, H / 2.0 + 10.0, (H - 2.0 * PAD) / 2.0);
    let mut svg = svg_header(&spec.title);
    let mut angle = -std::f64::consts::FRAC_PI_2;
    for (i, (label, vs)) in rows.iter().enumerate() {
        let frac = vs[0] / total;
        let sweep = frac * std::f64::consts::TAU;
        let (x1, y1) = (cx + r * angle.cos(), cy + r * angle.sin());
        let end = angle + sweep;
        let (x2, y2) = (cx + r * end.cos(), cy + r * end.sin());
        let large = i32::from(sweep > std::f64::consts::PI);
        svg.push_str(&format!(
            "<path d=\"M{cx:.1},{cy:.1} L{x1:.1},{y1:.1} A{r:.1},{r:.1} 0 {large} 1 {x2:.1},{y2:.1} Z\" \
             fill=\"{}\"><title>{}: {:.1}%</title></path>\n",
            SERIES_COLORS[i % SERIES_COLORS.len()],
            escape_html(label),
            frac * 100.0
        ));
        angle = end;
    }
    let labels: Vec<String> = rows.iter().map(|(l, _)| l.clone()).collect();
    svg.push_str(&legend(&labels));
    svg.push_str("</svg>\n");
    Ok(svg)
}

fn axis_lines() -> String {
    format!(
        "<line x1=\"{PAD}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#333\"/>\n\
         <line x1=\"{PAD}\" y1=\"{PAD}\" x2=\"{PAD}\" y2=\"{0}\" stroke=\"#333\"/>\n",
        H - PAD,
        W - PAD
    )
}

fn legend(names: &[String]) -> String {
    let mut out = String::new();
    for (i, name) in names.iter().enumerate() {
        let y = 34.0 + i as f64 * 14.0;
        out.push_str(&format!(
            "<rect x=\"{}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{}\" y=\"{:.1}\" font-size=\"10\">{}</text>\n",
            W - 110.0,
            y,
            SERIES_COLORS[i % SERIES_COLORS.len()],
            W - 96.0,
            y + 9.0,
            escape_html(name)
        ));
    }
    out
}

/// Render a data table to an HTML fragment.
pub fn render_table_html(spec: &TableSpec, data: &QueryResult) -> ReportResult<String> {
    let idxs: Vec<usize> = if spec.columns.is_empty() {
        (0..data.columns.len()).collect()
    } else {
        spec.columns
            .iter()
            .map(|c| {
                data.column_index(c)
                    .ok_or_else(|| ReportError::MissingColumn(c.clone()))
            })
            .collect::<ReportResult<_>>()?
    };
    let mut html = format!(
        "<table class=\"odbis-table\">\n<caption>{}</caption>\n<thead><tr>",
        escape_html(&spec.title)
    );
    for &i in &idxs {
        html.push_str(&format!("<th>{}</th>", escape_html(&data.columns[i])));
    }
    html.push_str("</tr></thead>\n<tbody>\n");
    let limit = spec.max_rows.unwrap_or(data.rows.len());
    for row in data.rows.iter().take(limit) {
        html.push_str("<tr>");
        for &i in &idxs {
            html.push_str(&format!("<td>{}</td>", escape_html(&row[i].render())));
        }
        html.push_str("</tr>\n");
    }
    html.push_str("</tbody>\n</table>\n");
    Ok(html)
}

/// Render a KPI tile to an HTML fragment.
pub fn render_kpi_html(spec: &KpiSpec, data: &QueryResult) -> ReportResult<String> {
    let value = kpi_value(spec, data)?;
    Ok(format!(
        "<div class=\"odbis-kpi\"><div class=\"kpi-value\">{}{}</div>\
         <div class=\"kpi-label\">{}</div></div>\n",
        escape_html(&value.render()),
        escape_html(&spec.unit),
        escape_html(&spec.title)
    ))
}

/// Render a whole query result as a fixed-width text report (console
/// delivery channel).
pub fn render_text(title: &str, data: &QueryResult) -> String {
    format!("== {title} ==\n{}", data.to_text_table())
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbis_storage::Value;

    fn data() -> QueryResult {
        QueryResult {
            columns: vec!["region".into(), "total".into()],
            rows: vec![
                vec!["EU".into(), Value::Float(70.0)],
                vec!["US".into(), Value::Float(30.0)],
            ],
            rows_affected: 0,
        }
    }

    fn chart(kind: ChartKind) -> ChartSpec {
        ChartSpec {
            title: "Revenue <by> region".into(),
            kind,
            category: "region".into(),
            series: vec!["total".into()],
        }
    }

    #[test]
    fn bar_line_pie_render_valid_svg() {
        for kind in [ChartKind::Bar, ChartKind::Line, ChartKind::Pie] {
            let svg = render_chart_svg(&chart(kind), &data()).unwrap();
            assert!(svg.starts_with("<svg"));
            assert!(svg.ends_with("</svg>\n"));
            assert!(svg.contains("Revenue &lt;by&gt; region")); // escaped
            assert!(svg.contains("EU"));
        }
        let bar = render_chart_svg(&chart(ChartKind::Bar), &data()).unwrap();
        assert_eq!(bar.matches("<rect").count(), 2 + 1); // 2 bars + 1 legend chip
        let pie = render_chart_svg(&chart(ChartKind::Pie), &data()).unwrap();
        assert_eq!(pie.matches("<path").count(), 2);
    }

    #[test]
    fn empty_chart_is_bad_data() {
        let empty = QueryResult {
            columns: vec!["region".into(), "total".into()],
            rows: vec![],
            rows_affected: 0,
        };
        assert!(matches!(
            render_chart_svg(&chart(ChartKind::Bar), &empty),
            Err(ReportError::BadData(_))
        ));
    }

    #[test]
    fn pie_requires_positive_total() {
        let zero = QueryResult {
            columns: vec!["region".into(), "total".into()],
            rows: vec![vec!["EU".into(), Value::Float(0.0)]],
            rows_affected: 0,
        };
        assert!(render_chart_svg(&chart(ChartKind::Pie), &zero).is_err());
    }

    #[test]
    fn table_html_with_selection_and_limit() {
        let spec = TableSpec {
            title: "Regions".into(),
            columns: vec!["region".into()],
            max_rows: Some(1),
        };
        let html = render_table_html(&spec, &data()).unwrap();
        assert!(html.contains("<caption>Regions</caption>"));
        assert!(html.contains("<th>region</th>"));
        assert!(!html.contains("total"));
        assert_eq!(html.matches("<tr>").count(), 2); // header + 1 row
        let bad = TableSpec {
            columns: vec!["ghost".into()],
            ..spec
        };
        assert!(render_table_html(&bad, &data()).is_err());
    }

    #[test]
    fn kpi_html() {
        let spec = KpiSpec {
            title: "EU Revenue".into(),
            value_column: "total".into(),
            unit: "€".into(),
        };
        let html = render_kpi_html(&spec, &data()).unwrap();
        assert!(html.contains("70.0€"));
        assert!(html.contains("EU Revenue"));
    }

    #[test]
    fn text_rendering_and_escaping() {
        let t = render_text("Sales", &data());
        assert!(t.starts_with("== Sales =="));
        assert!(t.contains("| EU"));
        assert_eq!(escape_html("<a&\"b\">"), "&lt;a&amp;&quot;b&quot;&gt;");
    }
}
