//! # odbis-reporting
//!
//! The Reporting Service (RS) — the ODBIS core BI service whose current
//! release "supports BIRT reporting and ad-hoc reporting" (§3.3):
//! chart reports, data-table reports, KPI tiles and dashboards (the
//! healthcare dashboard of the paper's Figure 6 is reproduced with this
//! module), plus parameterized report templates filling the BIRT slot.
//!
//! Renderers produce standalone SVG (charts), HTML fragments/documents
//! (tables, KPIs, dashboards, templates) and fixed-width text.

#![warn(missing_docs)]

mod render;
mod service;
mod spec;
mod template;

pub use render::{escape_html, render_chart_svg, render_kpi_html, render_table_html, render_text};
pub use service::{Report, ReportingService};
pub use spec::{
    chart_data, kpi_value, ChartKind, ChartSpec, Dashboard, KpiSpec, ReportError, ReportResult,
    TableSpec, Widget,
};
pub use template::{run_template, substitute, ParamDef, RenderedReport, ReportTemplate, Section};
