//! Property-based tests for the SaaS kernel: billing math and metering.

use odbis_tenancy::{Invoice, ServiceKind, SubscriptionPlan, UsageMeter};
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = SubscriptionPlan> {
    prop_oneof![
        Just(SubscriptionPlan::free()),
        Just(SubscriptionPlan::standard()),
        Just(SubscriptionPlan::enterprise()),
    ]
}

proptest! {
    /// Invoice totals are monotonic in usage, decompose into base+overage,
    /// and charge no overage within the allowance.
    #[test]
    fn invoice_math_invariants(plan in arb_plan(), a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let inv_lo = Invoice::compute("t", &plan, lo);
        let inv_hi = Invoice::compute("t", &plan, hi);
        prop_assert!(inv_lo.total_cents <= inv_hi.total_cents);
        for inv in [&inv_lo, &inv_hi] {
            prop_assert_eq!(inv.total_cents, inv.base_cents + inv.overage_cents);
            if inv.units <= plan.included_units {
                prop_assert_eq!(inv.overage_cents, 0);
                prop_assert_eq!(inv.overage_units, 0);
            } else {
                prop_assert_eq!(inv.overage_units, inv.units - plan.included_units);
            }
        }
        // invoice agrees with the plan's own cost function
        prop_assert_eq!(inv_hi.total_cents, plan.monthly_cost_cents(hi));
    }

    /// Meter counters equal the sum of recorded events, per tenant and per
    /// service, regardless of interleaving.
    #[test]
    fn metering_is_exact(events in prop::collection::vec((0u8..4, 0u8..6, 0u64..1_000), 0..120)) {
        let meter = UsageMeter::new();
        let mut expected = std::collections::HashMap::new();
        for (t, s, units) in &events {
            let tenant = format!("t{t}");
            let service = ServiceKind::ALL[(*s as usize) % ServiceKind::ALL.len()];
            meter.record(&tenant, service, *units);
            *expected.entry((tenant, service)).or_insert(0u64) += units;
        }
        for ((tenant, service), total) in &expected {
            prop_assert_eq!(meter.usage(tenant, *service), *total);
        }
        let grand: u64 = expected.values().sum();
        let measured: u64 = (0..4).map(|t| meter.tenant_total(&format!("t{t}"))).sum();
        prop_assert_eq!(measured, grand);
        // closing the period returns everything and resets
        let summary = meter.close_period();
        let closed: u64 = summary.values().sum();
        prop_assert_eq!(closed, grand);
        prop_assert_eq!(meter.tenant_total("t0"), 0);
    }
}
