//! # odbis-tenancy
//!
//! The SaaS kernel of the ODBIS platform: the multi-tenant architecture,
//! on-demand/pay-as-you-go model and economies-of-scale machinery the
//! paper's §2 describes.
//!
//! * [`TenantRegistry`] — tenant lifecycle, per-tenant security realms,
//!   plan limits;
//! * [`SubscriptionPlan`] / [`Invoice`] — pay-as-you-go pricing: "costs are
//!   directly aligned with usage";
//! * [`UsageMeter`] — per-(tenant, service) usage counters with an audit
//!   event log;
//! * [`SharedSchema`] vs [`DedicatedInstances`] — "one database is used to
//!   store all customers data" vs the traditional per-customer deployment,
//!   so the economies-of-scale claim (experiment C1) is measurable.
//!
//! ```
//! use odbis_tenancy::{ServiceKind, SubscriptionPlan, TenantRegistry, UsageMeter, Invoice};
//!
//! let registry = TenantRegistry::new();
//! registry.provision("acme", "Acme Corp", SubscriptionPlan::standard()).unwrap();
//! let meter = UsageMeter::new();
//! meter.record("acme", ServiceKind::Reporting, 120_000);
//! let tenant = registry.get("acme").unwrap();
//! let invoice = Invoice::compute("acme", &tenant.plan, meter.tenant_total("acme"));
//! assert!(invoice.total_cents > tenant.plan.monthly_fee_cents); // overage billed
//! ```

#![warn(missing_docs)]

mod isolation;
mod metering;
mod plan;
mod registry;

pub use isolation::{scope_select, DedicatedInstances, SharedSchema, TENANT_COLUMN};
pub use metering::{ServiceKind, UsageEvent, UsageMeter, UsageSummary};
pub use plan::{Invoice, SubscriptionPlan};
pub use registry::{TenancyError, TenancyResult, Tenant, TenantRegistry, TenantStatus};
