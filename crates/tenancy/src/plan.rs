//! Subscription plans and the pay-as-you-go pricing model.

/// A subscription plan: the "pay as you go" contract of the SaaS model
/// (ODBIS §2 — "companies who subscribe to a SaaS application pay a monthly
/// or annual subscription fee, sometimes depending also on the number of
/// users or transactions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionPlan {
    /// Plan name.
    pub name: String,
    /// Fixed monthly fee, in cents.
    pub monthly_fee_cents: u64,
    /// Service units included in the fee.
    pub included_units: u64,
    /// Price per unit beyond the included allowance, in hundredths of a
    /// cent (per-unit prices are small).
    pub overage_per_unit_centicents: u64,
    /// Maximum number of user accounts (None = unlimited).
    pub max_users: Option<u32>,
}

impl SubscriptionPlan {
    /// The free evaluation plan.
    pub fn free() -> Self {
        SubscriptionPlan {
            name: "free".into(),
            monthly_fee_cents: 0,
            included_units: 1_000,
            overage_per_unit_centicents: 0, // hard-capped instead
            max_users: Some(3),
        }
    }

    /// The standard plan.
    pub fn standard() -> Self {
        SubscriptionPlan {
            name: "standard".into(),
            monthly_fee_cents: 9_900, // $99
            included_units: 100_000,
            overage_per_unit_centicents: 5, // $0.0005 / unit
            max_users: Some(25),
        }
    }

    /// The enterprise plan.
    pub fn enterprise() -> Self {
        SubscriptionPlan {
            name: "enterprise".into(),
            monthly_fee_cents: 99_900, // $999
            included_units: 5_000_000,
            overage_per_unit_centicents: 2,
            max_users: None,
        }
    }

    /// Whether usage beyond the allowance is billable (false = hard cap).
    pub fn allows_overage(&self) -> bool {
        self.overage_per_unit_centicents > 0
    }

    /// Cost of a month with `units` of usage, in cents (rounded up).
    pub fn monthly_cost_cents(&self, units: u64) -> u64 {
        let overage_units = units.saturating_sub(self.included_units);
        let overage_centicents = overage_units * self.overage_per_unit_centicents;
        self.monthly_fee_cents + overage_centicents.div_ceil(100)
    }
}

/// An invoice for one tenant and one billing period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invoice {
    /// Billed tenant.
    pub tenant: String,
    /// Plan the invoice was computed against.
    pub plan: String,
    /// Metered units in the period.
    pub units: u64,
    /// Units beyond the plan allowance.
    pub overage_units: u64,
    /// Fixed fee, cents.
    pub base_cents: u64,
    /// Overage charge, cents.
    pub overage_cents: u64,
    /// Total, cents.
    pub total_cents: u64,
}

impl Invoice {
    /// Compute an invoice.
    pub fn compute(tenant: &str, plan: &SubscriptionPlan, units: u64) -> Invoice {
        let overage_units = units.saturating_sub(plan.included_units);
        let overage_cents = (overage_units * plan.overage_per_unit_centicents).div_ceil(100);
        Invoice {
            tenant: tenant.to_string(),
            plan: plan.name.clone(),
            units,
            overage_units,
            base_cents: plan.monthly_fee_cents,
            overage_cents,
            total_cents: plan.monthly_fee_cents + overage_cents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cost_is_base_within_allowance() {
        let p = SubscriptionPlan::standard();
        assert_eq!(p.monthly_cost_cents(0), 9_900);
        assert_eq!(p.monthly_cost_cents(100_000), 9_900);
    }

    #[test]
    fn overage_charged_and_rounded_up() {
        let p = SubscriptionPlan::standard();
        // 100_001 units: 1 overage unit at 5 centicents -> rounds up to 1 cent
        assert_eq!(p.monthly_cost_cents(100_001), 9_901);
        // 10k overage units * 5 = 50_000 centicents = 500 cents
        assert_eq!(p.monthly_cost_cents(110_000), 10_400);
    }

    #[test]
    fn invoice_matches_plan_cost() {
        let p = SubscriptionPlan::enterprise();
        let inv = Invoice::compute("acme", &p, 6_000_000);
        assert_eq!(inv.overage_units, 1_000_000);
        assert_eq!(inv.total_cents, p.monthly_cost_cents(6_000_000));
        assert_eq!(inv.total_cents, inv.base_cents + inv.overage_cents);
    }

    #[test]
    fn free_plan_has_no_overage() {
        let p = SubscriptionPlan::free();
        assert!(!p.allows_overage());
        assert_eq!(p.monthly_cost_cents(1_000_000), 0);
    }

    #[test]
    fn cost_is_monotonic_in_units() {
        let p = SubscriptionPlan::standard();
        let mut prev = 0;
        for units in (0..200_000).step_by(7_919) {
            let c = p.monthly_cost_cents(units);
            assert!(c >= prev);
            prev = c;
        }
    }
}
