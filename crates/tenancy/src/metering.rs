//! Usage metering: the mechanism that aligns cost with usage.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// The five core BI services plus administration (ODBIS §3.1) — the
/// dimensions along which usage is metered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKind {
    /// Meta-Data Service (MDS).
    Metadata,
    /// Integration Service (IS).
    Integration,
    /// Analysis Service (AS).
    Analysis,
    /// Reporting Service (RS).
    Reporting,
    /// Information Delivery Service (IDS).
    Delivery,
    /// Administration & configuration.
    Admin,
}

impl ServiceKind {
    /// All services, for iteration.
    pub const ALL: [ServiceKind; 6] = [
        ServiceKind::Metadata,
        ServiceKind::Integration,
        ServiceKind::Analysis,
        ServiceKind::Reporting,
        ServiceKind::Delivery,
        ServiceKind::Admin,
    ];

    /// Short service code.
    pub fn code(self) -> &'static str {
        match self {
            ServiceKind::Metadata => "MDS",
            ServiceKind::Integration => "IS",
            ServiceKind::Analysis => "AS",
            ServiceKind::Reporting => "RS",
            ServiceKind::Delivery => "IDS",
            ServiceKind::Admin => "ADM",
        }
    }
}

/// One usage record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageEvent {
    /// Tenant the usage belongs to.
    pub tenant: String,
    /// Service that was used.
    pub service: ServiceKind,
    /// Metered units (calls, rows, renders... service-defined).
    pub units: u64,
    /// Logical sequence number (monotonic per meter).
    pub seq: u64,
}

/// Aggregated usage per (tenant, service).
pub type UsageSummary = BTreeMap<(String, ServiceKind), u64>;

/// Thread-safe usage meter. Recording is O(1) per event (a counter bump);
/// the raw event log is kept for audit up to a configurable bound.
#[derive(Debug)]
pub struct UsageMeter {
    inner: Mutex<MeterInner>,
    /// Raw events beyond this bound are dropped (counters stay exact).
    pub event_log_capacity: usize,
}

#[derive(Debug, Default)]
struct MeterInner {
    counters: BTreeMap<(String, ServiceKind), u64>,
    events: Vec<UsageEvent>,
    seq: u64,
    dropped: u64,
}

impl Default for UsageMeter {
    fn default() -> Self {
        UsageMeter::new()
    }
}

impl UsageMeter {
    /// Meter with a 100k-event audit log.
    pub fn new() -> Self {
        UsageMeter {
            inner: Mutex::new(MeterInner::default()),
            event_log_capacity: 100_000,
        }
    }

    /// Record usage.
    pub fn record(&self, tenant: &str, service: ServiceKind, units: u64) {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        *inner
            .counters
            .entry((tenant.to_string(), service))
            .or_insert(0) += units;
        if inner.events.len() < self.event_log_capacity {
            inner.events.push(UsageEvent {
                tenant: tenant.to_string(),
                service,
                units,
                seq,
            });
        } else {
            inner.dropped += 1;
        }
    }

    /// Total units for a tenant across all services.
    pub fn tenant_total(&self, tenant: &str) -> u64 {
        self.inner
            .lock()
            .counters
            .iter()
            .filter(|((t, _), _)| t == tenant)
            .map(|(_, u)| u)
            .sum()
    }

    /// Units for one (tenant, service).
    pub fn usage(&self, tenant: &str, service: ServiceKind) -> u64 {
        self.inner
            .lock()
            .counters
            .get(&(tenant.to_string(), service))
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn summary(&self) -> UsageSummary {
        self.inner.lock().counters.clone()
    }

    /// Drain counters and events (close of a billing period). Returns the
    /// final summary.
    pub fn close_period(&self) -> UsageSummary {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.dropped = 0;
        std::mem::take(&mut inner.counters)
    }

    /// Raw audit events currently retained.
    pub fn events(&self) -> Vec<UsageEvent> {
        self.inner.lock().events.clone()
    }

    /// Events dropped due to the audit-log bound (counters unaffected).
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_exactly() {
        let m = UsageMeter::new();
        m.record("t1", ServiceKind::Reporting, 3);
        m.record("t1", ServiceKind::Reporting, 4);
        m.record("t1", ServiceKind::Analysis, 10);
        m.record("t2", ServiceKind::Reporting, 100);
        assert_eq!(m.usage("t1", ServiceKind::Reporting), 7);
        assert_eq!(m.tenant_total("t1"), 17);
        assert_eq!(m.tenant_total("t2"), 100);
        assert_eq!(m.tenant_total("ghost"), 0);
        assert_eq!(m.summary().len(), 3);
    }

    #[test]
    fn close_period_resets() {
        let m = UsageMeter::new();
        m.record("t", ServiceKind::Admin, 5);
        let summary = m.close_period();
        assert_eq!(summary[&("t".to_string(), ServiceKind::Admin)], 5);
        assert_eq!(m.tenant_total("t"), 0);
        assert!(m.events().is_empty());
    }

    #[test]
    fn audit_log_bounded_but_counters_exact() {
        let mut m = UsageMeter::new();
        m.event_log_capacity = 10;
        for _ in 0..25 {
            m.record("t", ServiceKind::Delivery, 1);
        }
        assert_eq!(m.events().len(), 10);
        assert_eq!(m.dropped_events(), 15);
        assert_eq!(m.usage("t", ServiceKind::Delivery), 25);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        use std::sync::Arc;
        let m = Arc::new(UsageMeter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record("t", ServiceKind::Analysis, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.usage("t", ServiceKind::Analysis), 4000);
    }

    #[test]
    fn service_codes() {
        assert_eq!(ServiceKind::Metadata.code(), "MDS");
        assert_eq!(ServiceKind::ALL.len(), 6);
    }
}
