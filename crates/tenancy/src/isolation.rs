//! Tenant data isolation strategies over the shared storage substrate.
//!
//! The paper's multi-tenant claim (§2): "the physical backend hardware
//! infrastructure is shared among many different customers but logically is
//! unique for each customer... one database is used to store all customers
//! data, so, this makes the overall system scalable at a far lower cost."
//!
//! Two strategies are implemented so the economies-of-scale claim (C1) can
//! be measured:
//!
//! * [`SharedSchema`] — one `Database`, every table carries a `tenant_id`
//!   discriminator column, and all tenant SQL is rewritten to stay inside
//!   the tenant's partition;
//! * [`DedicatedInstances`] — one `Database` per tenant (the traditional
//!   model the paper contrasts against).

use std::collections::BTreeMap;
use std::sync::Arc;

use odbis_sql::{Engine, QueryResult, SqlError};
use odbis_storage::{Column, DataType, Database, Schema, Value};
use parking_lot::Mutex;

use crate::registry::{TenancyError, TenancyResult};

/// Name of the discriminator column injected into shared tables.
pub const TENANT_COLUMN: &str = "tenant_id";

/// Shared-schema multi-tenancy: one database, tenant-discriminated tables.
pub struct SharedSchema {
    db: Arc<Database>,
    engine: Engine,
}

impl SharedSchema {
    /// Wrap a shared database.
    pub fn new(db: Arc<Database>) -> Self {
        SharedSchema {
            db,
            engine: Engine::new(),
        }
    }

    /// The underlying shared database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Create a shared table: the given schema plus the leading
    /// `tenant_id` discriminator column (indexed for partition pruning).
    pub fn create_shared_table(&self, name: &str, user_schema: Schema) -> TenancyResult<()> {
        let mut cols = vec![Column::new(TENANT_COLUMN, DataType::Text).not_null()];
        cols.extend(user_schema.columns().iter().cloned());
        let schema =
            Schema::new(cols).map_err(|e| TenancyError::PlanLimit(format!("schema error: {e}")))?;
        self.db
            .create_table(name, schema)
            .map_err(|e| TenancyError::PlanLimit(format!("create failed: {e}")))?;
        self.db
            .write_table(name, |t| {
                t.create_index(&format!("ix_{name}_tenant"), &[TENANT_COLUMN], false)
            })
            .and_then(|r| r)
            .map_err(|e| TenancyError::PlanLimit(format!("index failed: {e}")))?;
        Ok(())
    }

    /// Insert a row for a tenant (discriminator prepended automatically).
    pub fn insert(&self, tenant: &str, table: &str, row: Vec<Value>) -> TenancyResult<()> {
        let mut full = Vec::with_capacity(row.len() + 1);
        full.push(Value::Text(tenant.to_string()));
        full.extend(row);
        self.db
            .insert(table, full)
            .map_err(|e| TenancyError::PlanLimit(format!("insert failed: {e}")))?;
        Ok(())
    }

    /// Run a tenant-scoped `SELECT`: the query's `WHERE` is augmented with
    /// the tenant predicate, so a tenant can never read another tenant's
    /// rows through this API.
    pub fn query(&self, tenant: &str, select_sql: &str) -> Result<QueryResult, SqlError> {
        let scoped = scope_select(select_sql, tenant)?;
        self.engine.execute(&self.db, &scoped)
    }

    /// Rows a tenant holds in a shared table.
    pub fn tenant_row_count(&self, tenant: &str, table: &str) -> usize {
        self.query(tenant, &format!("SELECT COUNT(*) AS n FROM {table}"))
            .ok()
            .and_then(|r| r.rows.first().and_then(|row| row[0].as_i64()))
            .unwrap_or(0) as usize
    }
}

/// Inject `tenant_id = '<tenant>'` into a SELECT statement's WHERE clause
/// by rewriting the AST (not by string concatenation, so ORDER BY/GROUP BY
/// placement is always correct).
pub fn scope_select(sql: &str, tenant: &str) -> Result<String, SqlError> {
    use odbis_sql::ast::{BinOp, Expr, Statement};
    let stmt = odbis_sql::parse(sql)?;
    let Statement::Select(mut sel) = stmt else {
        return Err(SqlError::Bind(
            "tenant-scoped execution allows only SELECT".into(),
        ));
    };
    let guard = Expr::Binary {
        op: BinOp::Eq,
        left: Box::new(Expr::col(TENANT_COLUMN)),
        right: Box::new(Expr::lit(tenant)),
    };
    sel.filter = Some(match sel.filter.take() {
        Some(f) => Expr::Binary {
            op: BinOp::And,
            left: Box::new(guard),
            right: Box::new(f),
        },
        None => guard,
    });
    // re-render is unnecessary: execute the mutated AST directly. We return
    // SQL text for observability, reconstructing a canonical form.
    Ok(render_select(&sel))
}

/// Render a (possibly rewritten) SELECT AST back to SQL text.
fn render_select(sel: &odbis_sql::ast::SelectStmt) -> String {
    use odbis_sql::ast::SelectItem;
    let mut out = String::from("SELECT ");
    if sel.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = sel
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
            SelectItem::Expr { expr, alias } => {
                let e = odbis_sql::planner::display_expr_sql(expr);
                match alias {
                    Some(a) => format!("{e} AS {a}"),
                    None => e,
                }
            }
        })
        .collect();
    out.push_str(&items.join(", "));
    if let Some(from) = &sel.from {
        out.push_str(&format!(" FROM {}", from.table));
        if let Some(a) = &from.alias {
            out.push_str(&format!(" {a}"));
        }
    }
    for j in &sel.joins {
        let kw = match j.kind {
            odbis_sql::ast::JoinKind::Inner => "JOIN",
            odbis_sql::ast::JoinKind::Left => "LEFT JOIN",
        };
        out.push_str(&format!(" {kw} {}", j.table.table));
        if let Some(a) = &j.table.alias {
            out.push_str(&format!(" {a}"));
        }
        out.push_str(&format!(
            " ON {}",
            odbis_sql::planner::display_expr_sql(&j.on)
        ));
    }
    if let Some(f) = &sel.filter {
        out.push_str(&format!(
            " WHERE {}",
            odbis_sql::planner::display_expr_sql(f)
        ));
    }
    if !sel.group_by.is_empty() {
        let gs: Vec<String> = sel
            .group_by
            .iter()
            .map(odbis_sql::planner::display_expr_sql)
            .collect();
        out.push_str(&format!(" GROUP BY {}", gs.join(", ")));
    }
    if let Some(h) = &sel.having {
        out.push_str(&format!(
            " HAVING {}",
            odbis_sql::planner::display_expr_sql(h)
        ));
    }
    if !sel.order_by.is_empty() {
        let ks: Vec<String> = sel
            .order_by
            .iter()
            .map(|k| {
                format!(
                    "{}{}",
                    odbis_sql::planner::display_expr_sql(&k.expr),
                    if k.desc { " DESC" } else { "" }
                )
            })
            .collect();
        out.push_str(&format!(" ORDER BY {}", ks.join(", ")));
    }
    if let Some(l) = sel.limit {
        out.push_str(&format!(" LIMIT {l}"));
    }
    if let Some(o) = sel.offset {
        out.push_str(&format!(" OFFSET {o}"));
    }
    out
}

/// Dedicated-instance tenancy: the traditional per-customer deployment the
/// SaaS model replaces. One full `Database` per tenant.
pub struct DedicatedInstances {
    dbs: Mutex<BTreeMap<String, Arc<Database>>>,
    engine: Engine,
}

impl Default for DedicatedInstances {
    fn default() -> Self {
        DedicatedInstances::new()
    }
}

impl DedicatedInstances {
    /// Empty deployment.
    pub fn new() -> Self {
        DedicatedInstances {
            dbs: Mutex::new(BTreeMap::new()),
            engine: Engine::new(),
        }
    }

    /// Provision (or fetch) a tenant's database instance.
    pub fn database_for(&self, tenant: &str) -> Arc<Database> {
        Arc::clone(
            self.dbs
                .lock()
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(Database::new())),
        )
    }

    /// Execute SQL inside one tenant's instance.
    pub fn execute(&self, tenant: &str, sql: &str) -> Result<QueryResult, SqlError> {
        let db = self.database_for(tenant);
        self.engine.execute(&db, sql)
    }

    /// Number of provisioned instances.
    pub fn instance_count(&self) -> usize {
        self.dbs.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_with_orders() -> SharedSchema {
        let shared = SharedSchema::new(Arc::new(Database::new()));
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("amount", DataType::Float),
        ])
        .unwrap();
        shared.create_shared_table("orders", schema).unwrap();
        shared
            .insert("t1", "orders", vec![1.into(), 10.0.into()])
            .unwrap();
        shared
            .insert("t1", "orders", vec![2.into(), 20.0.into()])
            .unwrap();
        shared
            .insert("t2", "orders", vec![1.into(), 99.0.into()])
            .unwrap();
        shared
    }

    #[test]
    fn tenants_cannot_see_each_other() {
        let shared = shared_with_orders();
        let r1 = shared
            .query("t1", "SELECT SUM(amount) FROM orders")
            .unwrap();
        assert_eq!(r1.rows[0][0], Value::Float(30.0));
        let r2 = shared
            .query("t2", "SELECT SUM(amount) FROM orders")
            .unwrap();
        assert_eq!(r2.rows[0][0], Value::Float(99.0));
        assert_eq!(shared.tenant_row_count("t1", "orders"), 2);
        assert_eq!(shared.tenant_row_count("t3", "orders"), 0);
    }

    #[test]
    fn scoping_survives_existing_where_and_clauses() {
        let shared = shared_with_orders();
        let r = shared
            .query(
                "t1",
                "SELECT id FROM orders WHERE amount > 15 ORDER BY id DESC LIMIT 5",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn isolation_breach_attempt_is_neutralized() {
        let shared = shared_with_orders();
        // attacker tries to escape the partition via OR — the guard is
        // ANDed around the whole user predicate, so this still returns
        // only t1's rows
        let r = shared
            .query(
                "t1",
                "SELECT COUNT(*) FROM orders WHERE tenant_id = 't2' OR 1 = 1",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        // non-SELECT statements are rejected outright
        assert!(shared.query("t1", "DELETE FROM orders").is_err());
    }

    #[test]
    fn dedicated_instances_are_physically_separate() {
        let ded = DedicatedInstances::new();
        ded.execute("a", "CREATE TABLE t (x INT)").unwrap();
        ded.execute("a", "INSERT INTO t VALUES (1)").unwrap();
        // tenant b has no table `t` at all
        assert!(ded.execute("b", "SELECT * FROM t").is_err());
        assert_eq!(ded.instance_count(), 2);
    }

    #[test]
    fn scope_select_rewrites_ast() {
        let s = scope_select("SELECT a FROM t WHERE b = 1 ORDER BY a", "acme").unwrap();
        assert!(s.contains("tenant_id = 'acme'"), "{s}");
        assert!(s.ends_with("ORDER BY a"), "{s}");
        assert!(scope_select("DROP TABLE t", "acme").is_err());
    }
}
