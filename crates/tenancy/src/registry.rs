//! Tenant registry and lifecycle.

use std::collections::BTreeMap;
use std::sync::Arc;

use odbis_security::SecurityManager;
use parking_lot::Mutex;

use crate::plan::SubscriptionPlan;

/// Tenant lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantStatus {
    /// Normal operation.
    Active,
    /// Access blocked (e.g. unpaid invoices); data retained.
    Suspended,
    /// Scheduled for deletion; no access.
    Closed,
}

/// One tenant of the multi-tenant platform.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Stable tenant id (also the discriminator value in shared tables).
    pub id: String,
    /// Display name.
    pub name: String,
    /// Current subscription plan.
    pub plan: SubscriptionPlan,
    /// Lifecycle status.
    pub status: TenantStatus,
}

/// Tenancy errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenancyError {
    /// Tenant id already registered.
    AlreadyExists(String),
    /// Tenant id not found.
    NotFound(String),
    /// Operation not allowed in the tenant's current status.
    NotActive(String),
    /// Plan constraint violated (e.g. user limit).
    PlanLimit(String),
}

impl std::fmt::Display for TenancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenancyError::AlreadyExists(t) => write!(f, "tenant {t} already exists"),
            TenancyError::NotFound(t) => write!(f, "tenant {t} not found"),
            TenancyError::NotActive(t) => write!(f, "tenant {t} is not active"),
            TenancyError::PlanLimit(m) => write!(f, "plan limit: {m}"),
        }
    }
}

impl std::error::Error for TenancyError {}

/// Result alias for tenancy operations.
pub type TenancyResult<T> = Result<T, TenancyError>;

/// Registry of all tenants. Each tenant gets its own security realm (its
/// users/roles/groups are logically isolated even though the backend
/// infrastructure is shared — the multi-tenant architecture of ODBIS §2).
pub struct TenantRegistry {
    inner: Mutex<BTreeMap<String, (Tenant, Arc<SecurityManager>)>>,
}

impl Default for TenantRegistry {
    fn default() -> Self {
        TenantRegistry::new()
    }
}

impl TenantRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TenantRegistry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Provision a tenant: registers it and creates its security realm.
    pub fn provision(
        &self,
        id: &str,
        name: &str,
        plan: SubscriptionPlan,
    ) -> TenancyResult<Arc<SecurityManager>> {
        let mut inner = self.inner.lock();
        if inner.contains_key(id) {
            return Err(TenancyError::AlreadyExists(id.to_string()));
        }
        let tenant = Tenant {
            id: id.to_string(),
            name: name.to_string(),
            plan,
            status: TenantStatus::Active,
        };
        let realm = Arc::new(SecurityManager::new());
        inner.insert(id.to_string(), (tenant, Arc::clone(&realm)));
        Ok(realm)
    }

    /// Fetch a tenant descriptor.
    pub fn get(&self, id: &str) -> TenancyResult<Tenant> {
        self.inner
            .lock()
            .get(id)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| TenancyError::NotFound(id.to_string()))
    }

    /// Fetch a tenant's security realm.
    pub fn realm(&self, id: &str) -> TenancyResult<Arc<SecurityManager>> {
        self.inner
            .lock()
            .get(id)
            .map(|(_, r)| Arc::clone(r))
            .ok_or_else(|| TenancyError::NotFound(id.to_string()))
    }

    /// Require the tenant to be active (gate for every service call).
    pub fn require_active(&self, id: &str) -> TenancyResult<Tenant> {
        let t = self.get(id)?;
        if t.status == TenantStatus::Active {
            Ok(t)
        } else {
            Err(TenancyError::NotActive(id.to_string()))
        }
    }

    /// Change a tenant's status.
    pub fn set_status(&self, id: &str, status: TenantStatus) -> TenancyResult<()> {
        let mut inner = self.inner.lock();
        let (t, _) = inner
            .get_mut(id)
            .ok_or_else(|| TenancyError::NotFound(id.to_string()))?;
        t.status = status;
        Ok(())
    }

    /// Switch a tenant's plan.
    pub fn change_plan(&self, id: &str, plan: SubscriptionPlan) -> TenancyResult<()> {
        let mut inner = self.inner.lock();
        let (t, _) = inner
            .get_mut(id)
            .ok_or_else(|| TenancyError::NotFound(id.to_string()))?;
        t.plan = plan;
        Ok(())
    }

    /// Enforce the plan's user limit before adding a user to the realm.
    pub fn check_user_limit(&self, id: &str) -> TenancyResult<()> {
        let inner = self.inner.lock();
        let (t, realm) = inner
            .get(id)
            .ok_or_else(|| TenancyError::NotFound(id.to_string()))?;
        if let Some(max) = t.plan.max_users {
            if realm.usernames().len() as u32 >= max {
                return Err(TenancyError::PlanLimit(format!(
                    "plan {} allows at most {max} users",
                    t.plan.name
                )));
            }
        }
        Ok(())
    }

    /// All tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_and_lifecycle() {
        let reg = TenantRegistry::new();
        reg.provision("acme", "Acme Corp", SubscriptionPlan::standard())
            .unwrap();
        assert!(matches!(
            reg.provision("acme", "again", SubscriptionPlan::free()),
            Err(TenancyError::AlreadyExists(_))
        ));
        assert_eq!(reg.get("acme").unwrap().name, "Acme Corp");
        reg.require_active("acme").unwrap();
        reg.set_status("acme", TenantStatus::Suspended).unwrap();
        assert!(matches!(
            reg.require_active("acme"),
            Err(TenancyError::NotActive(_))
        ));
        assert!(matches!(reg.get("ghost"), Err(TenancyError::NotFound(_))));
    }

    #[test]
    fn realms_are_isolated_per_tenant() {
        let reg = TenantRegistry::new();
        let r1 = reg
            .provision("t1", "T1", SubscriptionPlan::standard())
            .unwrap();
        let r2 = reg
            .provision("t2", "T2", SubscriptionPlan::standard())
            .unwrap();
        r1.create_user("alice", "pw").unwrap();
        // the same username can exist in another tenant's realm
        r2.create_user("alice", "other-pw").unwrap();
        assert!(r1.login("alice", "pw").is_ok());
        assert!(r2.login("alice", "pw").is_err());
        assert!(r2.login("alice", "other-pw").is_ok());
    }

    #[test]
    fn plan_user_limits_enforced() {
        let reg = TenantRegistry::new();
        let realm = reg
            .provision("small", "S", SubscriptionPlan::free())
            .unwrap();
        for i in 0..3 {
            reg.check_user_limit("small").unwrap();
            realm.create_user(&format!("u{i}"), "pw").unwrap();
        }
        assert!(matches!(
            reg.check_user_limit("small"),
            Err(TenancyError::PlanLimit(_))
        ));
        reg.change_plan("small", SubscriptionPlan::enterprise())
            .unwrap();
        reg.check_user_limit("small").unwrap();
    }
}
