//! In-process multi-node cluster: tenant shard routing and live
//! migration.
//!
//! The paper's platform is a single Tomcat/PostgreSQL pair; growing it
//! to many nodes needs two things this module provides. First a
//! **shard router**: a [`ClusterMap`] shared by every node that assigns
//! each tenant an owner node by consistent hashing (so adding a node
//! moves only its share of tenants) with explicit **pins** overriding
//! the hash for tenants that have been migrated. Second a **migration
//! protocol** that moves a live tenant between nodes without dropping
//! an acknowledged write:
//!
//! 1. **Checkpoint** — the source folds its WAL so the image is small;
//! 2. **Ship image** — the checkpoint artifact (manifest + segments,
//!    or JSON snapshot) is copied byte-for-byte to the target's
//!    staging directory together with a warm-up WAL tail;
//! 3. **Drain** — the source acquires the tenant's write fence: every
//!    in-flight gated call completes, new ones block;
//! 4. **Final tail** — with the source quiescent, WAL frames above the
//!    checkpoint stamp are exported and staged (superseding the
//!    warm-up tail — staging is idempotent). A checkpoint that raced
//!    the ship phase truncated the WAL at a newer cut, so the stamp is
//!    re-read under the fence and the image re-exported if it advanced
//!    — image + tail always cover every acknowledged write;
//! 5. **Cutover** — the target recovers the staged state (re-verifying
//!    every CRC), adopts the source realm's live sessions, the map
//!    pins the tenant to the target, and the source detaches;
//! 6. **Finalize** — the fence lifts and the source's copy is removed.
//!
//! An error (or injected `migrate.*` failpoint) at any phase before the
//! cutover flip aborts: staging is wiped, the fence lifts, and the
//! source keeps ownership — callers observe at most a pause. The flip
//! itself is a single pin insert under the held fence, so there is no
//! window where both nodes (or neither) accept writes for the tenant.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use odbis_tenancy::SubscriptionPlan;
use parking_lot::{Mutex, RwLock};

use crate::error::{PlatformError, PlatformResult};
use crate::platform::OdbisPlatform;

/// FNV-1a 64-bit — small, dependency-free, well distributed for the
/// short tenant-id keys the ring hashes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Virtual points each node contributes to the hash ring. More points
/// smooth the tenant distribution; 64 keeps rebuilds trivial.
const VNODES: usize = 64;

struct MapInner {
    /// node id → HTTP address (`host:port`, empty until the node's
    /// server is up).
    nodes: BTreeMap<String, String>,
    /// Consistent-hash ring: sorted `(point, node id)` pairs.
    ring: Vec<(u64, String)>,
    /// Tenants routed away from their hash home (post-migration).
    pins: HashMap<String, String>,
}

/// The shared cluster map: node membership, the consistent-hash ring,
/// and per-tenant pins. One instance is shared (via `Arc`) by every
/// node of an in-process cluster; `epoch` bumps on every change so
/// routers and clients can detect staleness cheaply.
pub struct ClusterMap {
    inner: RwLock<MapInner>,
    epoch: AtomicU64,
}

impl Default for ClusterMap {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterMap {
    /// An empty map at epoch 0.
    pub fn new() -> Self {
        ClusterMap {
            inner: RwLock::new(MapInner {
                nodes: BTreeMap::new(),
                ring: Vec::new(),
                pins: HashMap::new(),
            }),
            epoch: AtomicU64::new(0),
        }
    }

    /// Add (or re-address) a node and rebuild the ring.
    pub fn add_node(&self, node_id: &str, addr: &str) {
        let mut inner = self.inner.write();
        inner.nodes.insert(node_id.to_string(), addr.to_string());
        inner.ring = inner
            .nodes
            .keys()
            .flat_map(|id| {
                (0..VNODES).map(move |i| (fnv1a64(format!("{id}#{i}").as_bytes()), id.clone()))
            })
            .collect();
        inner.ring.sort();
        drop(inner);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Update a node's address (the HTTP port is only known once its
    /// server has started).
    pub fn set_addr(&self, node_id: &str, addr: &str) {
        let mut inner = self.inner.write();
        if let Some(slot) = inner.nodes.get_mut(node_id) {
            *slot = addr.to_string();
        }
        drop(inner);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The node that owns `tenant`: its pin if migrated, else the first
    /// ring point at or after the tenant's hash (wrapping). `None` on an
    /// empty map.
    pub fn owner(&self, tenant: &str) -> Option<String> {
        let inner = self.inner.read();
        if let Some(pinned) = inner.pins.get(tenant) {
            return Some(pinned.clone());
        }
        if inner.ring.is_empty() {
            return None;
        }
        let h = fnv1a64(tenant.as_bytes());
        let at = inner.ring.partition_point(|(p, _)| *p < h);
        let (_, id) = &inner.ring[if at == inner.ring.len() { 0 } else { at }];
        Some(id.clone())
    }

    /// The HTTP address of a node (`None` for unknown ids, empty string
    /// until the node's server reported in).
    pub fn addr_of(&self, node_id: &str) -> Option<String> {
        self.inner.read().nodes.get(node_id).cloned()
    }

    /// Pin `tenant` to `node_id`, overriding the hash — the cutover flip.
    pub fn pin(&self, tenant: &str, node_id: &str) {
        self.inner
            .write()
            .pins
            .insert(tenant.to_string(), node_id.to_string());
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// All nodes as `(id, addr)` pairs, id-sorted.
    pub fn nodes(&self) -> Vec<(String, String)> {
        self.inner
            .read()
            .nodes
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// All pins as `(tenant, node id)` pairs, tenant-sorted.
    pub fn pins(&self) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = self
            .inner
            .read()
            .pins
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        v.sort();
        v
    }

    /// Monotonic change counter: bumps on membership, address and pin
    /// changes.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// One node's membership in a cluster: its identity, the shared map,
/// and a weak handle back to the fabric (weak, because the fabric owns
/// the platforms — a strong reference would cycle).
pub struct ClusterNode {
    /// This node's id in the [`ClusterMap`].
    pub node_id: String,
    /// The map shared by every node of the cluster.
    pub map: Arc<ClusterMap>,
    /// The fabric this node belongs to.
    pub fabric: Weak<Cluster>,
}

/// Where the router says a tenant's requests should run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterRoute {
    /// Serve on this node (not clustered, owner here, or no usable
    /// route — failing local yields an honest tenant error).
    Local,
    /// Another node owns the tenant: proxy or redirect there.
    Remote {
        /// Owning node's id.
        node_id: String,
        /// Owning node's HTTP address.
        addr: String,
    },
}

/// What one completed migration did, returned by [`Cluster::migrate`]
/// and serialized by `POST /api/v1/admin/migrate`.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The migrated tenant.
    pub tenant: String,
    /// Source node id.
    pub from: String,
    /// Target node id.
    pub to: String,
    /// The shipped checkpoint's fold LSN.
    pub checkpoint_lsn: u64,
    /// WAL frames shipped in the final (drained) tail.
    pub tail_frames: u64,
    /// Highest LSN shipped — everything acknowledged on the source.
    pub tail_last_lsn: u64,
    /// Live sessions adopted by the target realm.
    pub sessions_adopted: usize,
    /// Map epoch after the cutover flip.
    pub epoch: u64,
}

/// Failpoint gate for migration phases: an injected fault surfaces as a
/// retryable 503 and aborts the attempt (the source keeps ownership).
fn gate(site: &str) -> PlatformResult<()> {
    odbis_chaos::check(site).map_err(|e| PlatformError::Unavailable(format!("{site}: {e}")))
}

/// An in-process cluster fabric: the shared [`ClusterMap`] plus the
/// node platforms, with tenant provisioning and live migration. In a
/// multi-process deployment the fabric's role is played by a control
/// plane; in-process it doubles as the test/bench harness for the
/// routing and migration protocol.
pub struct Cluster {
    map: Arc<ClusterMap>,
    nodes: RwLock<HashMap<String, Arc<OdbisPlatform>>>,
    /// Serializes migrations: two concurrent moves could contend on
    /// fences and staging directories for no benefit.
    migrations: Mutex<()>,
}

impl Cluster {
    /// An empty fabric.
    pub fn new() -> Arc<Cluster> {
        Arc::new(Cluster {
            map: Arc::new(ClusterMap::new()),
            nodes: RwLock::new(HashMap::new()),
            migrations: Mutex::new(()),
        })
    }

    /// Boot a durable platform rooted at `data_dir` and join it to the
    /// fabric as `node_id`. The node's HTTP address starts empty; set it
    /// with [`ClusterMap::set_addr`] once its server is up.
    pub fn add_node(
        self: &Arc<Self>,
        node_id: &str,
        data_dir: impl Into<std::path::PathBuf>,
    ) -> PlatformResult<Arc<OdbisPlatform>> {
        let platform = Arc::new(OdbisPlatform::with_data_dir(data_dir));
        platform.join_cluster(node_id, Arc::clone(&self.map), Arc::downgrade(self));
        self.map.add_node(node_id, "");
        self.nodes
            .write()
            .insert(node_id.to_string(), Arc::clone(&platform));
        Ok(platform)
    }

    /// The platform of a node.
    pub fn node(&self, node_id: &str) -> Option<Arc<OdbisPlatform>> {
        self.nodes.read().get(node_id).cloned()
    }

    /// The shared cluster map.
    pub fn map(&self) -> &Arc<ClusterMap> {
        &self.map
    }

    /// Provision a tenant cluster-wide: identity (registry entry, realm,
    /// admin user) on **every** node — so logins and authorization work
    /// wherever a request lands, before and after migrations — but the
    /// workspace (warehouse, WAL) only on the owner node the map
    /// assigns. Returns the owner's node id.
    pub fn provision_tenant(
        &self,
        id: &str,
        display_name: &str,
        plan: SubscriptionPlan,
        admin_user: &str,
        admin_password: &str,
    ) -> PlatformResult<String> {
        let owner = self
            .map
            .owner(id)
            .ok_or_else(|| PlatformError::Unavailable("cluster has no nodes".into()))?;
        let nodes: Vec<(String, Arc<OdbisPlatform>)> = self
            .nodes
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (node_id, platform) in &nodes {
            platform.provision_identity(id, display_name, plan.clone(), admin_user, admin_password)?;
            if *node_id == owner {
                platform.attach_workspace(id)?;
            }
        }
        Ok(owner)
    }

    /// Live-migrate `tenant` to node `to`. See the module docs for the
    /// protocol; on any error before the cutover flip the staging copy
    /// is removed and the source keeps ownership.
    pub fn migrate(&self, tenant: &str, to: &str) -> PlatformResult<MigrationReport> {
        let _one_at_a_time = self.migrations.lock();
        gate("migrate.begin")?;
        let from = self
            .map
            .owner(tenant)
            .ok_or_else(|| PlatformError::NotFound(format!("tenant {tenant} has no owner")))?;
        if from == to {
            return Err(PlatformError::Tenancy(format!(
                "tenant {tenant} already lives on {to}"
            )));
        }
        let source = self
            .node(&from)
            .ok_or_else(|| PlatformError::NotFound(format!("no node {from}")))?;
        let target = self
            .node(to)
            .ok_or_else(|| PlatformError::NotFound(format!("no node {to}")))?;
        let ws = source.workspace(tenant)?;
        let store = ws.durable.clone().ok_or_else(|| {
            PlatformError::Tenancy(format!("tenant {tenant} has no durable store to migrate"))
        })?;
        let target_root = target
            .data_dir()
            .ok_or_else(|| PlatformError::Tenancy(format!("node {to} has no data directory")))?;
        let stage = target_root.join(tenant);

        let result = (|| -> PlatformResult<MigrationReport> {
            // Phase: checkpoint. Shrinks the tail; everything acknowledged
            // so far lands in the image or the log above its stamp.
            gate("migrate.checkpoint")?;
            store.checkpoint(&ws.warehouse)?;

            // Phase: ship image + warm-up tail, before any fence — the
            // bulk of the bytes move while the tenant keeps writing.
            gate("migrate.ship.image")?;
            let image = store.export_checkpoint()?;
            gate("migrate.ship.tail")?;
            let warm = store.export_wal_tail(image.last_lsn)?;
            odbis_storage::DurableStore::import_image(&stage, &image, &warm.bytes)?;

            // Phase: drain. The write fence blocks new gated calls and
            // waits out in-flight ones; `read_recursive` on the read side
            // means a reader never deadlocks behind this writer.
            gate("migrate.drain")?;
            let fence = source.tenant_fence(tenant);
            let _drained = fence.write();

            // A tenant checkpoint that raced the ship phase (gated calls
            // only exclude each other at the fence, taken just now)
            // truncated the WAL at a newer cut: frames in
            // (image.last_lsn, cut] survive only in the newer artifact,
            // so the shipped image must be refreshed or they would be
            // dropped at cutover. Quiescent under the fence, the stamp is
            // stable — re-read it and re-export if it advanced.
            let image = if store.checkpoint_lsn()? == image.last_lsn {
                image
            } else {
                store.export_checkpoint()?
            };

            // Phase: final tail, exported quiescent, re-staged over the
            // warm-up copy (staging clears previous artifacts first).
            let tail = store.export_wal_tail(image.last_lsn)?;
            gate("migrate.import")?;
            odbis_storage::DurableStore::import_image(&stage, &image, &tail.bytes)?;

            // Phase: cutover. Target recovers the staged bytes (CRCs
            // re-verified), adopts live sessions, and the single pin
            // insert flips ownership — all under the held fence.
            gate("migrate.cutover")?;
            target.attach_workspace(tenant)?;
            let mut adopted = 0usize;
            if let (Ok(src_realm), Ok(dst_realm)) = (
                source.admin.registry().realm(tenant),
                target.admin.registry().realm(tenant),
            ) {
                for session in src_realm.active_sessions() {
                    dst_realm.adopt_session(session);
                    adopted += 1;
                }
            }
            self.map.pin(tenant, to);
            source.detach_workspace(tenant);
            drop(_drained);

            // Phase: finalize. Best-effort once ownership has flipped: a
            // fault here must not report failure for a migration that
            // already happened, and the leftover source copy is invisible
            // anyway — the map routes away from it.
            if gate("migrate.finalize").is_ok() {
                if let Some(src_root) = source.data_dir() {
                    let _ = std::fs::remove_dir_all(src_root.join(tenant));
                }
            }
            Ok(MigrationReport {
                tenant: tenant.to_string(),
                from: from.clone(),
                to: to.to_string(),
                checkpoint_lsn: image.last_lsn,
                tail_frames: tail.frames,
                tail_last_lsn: tail.last_lsn,
                sessions_adopted: adopted,
                epoch: self.map.epoch(),
            })
        })();

        if result.is_err() && self.map.owner(tenant).as_deref() != Some(to) {
            // Abort before the flip: wipe staging so a retry (or the
            // target's own future tenants) never sees half a copy.
            let _ = std::fs::remove_dir_all(&stage);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routing_is_stable_and_complete() {
        let map = ClusterMap::new();
        map.add_node("node-a", "127.0.0.1:1");
        map.add_node("node-b", "127.0.0.1:2");
        map.add_node("node-c", "127.0.0.1:3");
        let owner = map.owner("acme").unwrap();
        // deterministic: same tenant, same owner, every time
        for _ in 0..100 {
            assert_eq!(map.owner("acme").unwrap(), owner);
        }
        // every tenant resolves to a real node
        for t in ["acme", "globex", "initech", "umbrella", "t-0", "t-999"] {
            let o = map.owner(t).unwrap();
            assert!(map.addr_of(&o).is_some(), "{t} routed to unknown {o}");
        }
    }

    #[test]
    fn adding_a_node_moves_only_a_fraction_of_tenants() {
        let map = ClusterMap::new();
        map.add_node("node-a", "");
        map.add_node("node-b", "");
        let tenants: Vec<String> = (0..200).map(|i| format!("tenant-{i}")).collect();
        let before: Vec<String> = tenants.iter().map(|t| map.owner(t).unwrap()).collect();
        map.add_node("node-c", "");
        let moved = tenants
            .iter()
            .zip(&before)
            .filter(|(t, was)| map.owner(t).unwrap() != **was)
            .count();
        // consistent hashing: roughly 1/3 should move, never close to all
        assert!(moved > 0, "a new node must take some tenants");
        assert!(moved < 140, "{moved}/200 moved — ring is not consistent");
        // moved tenants all moved *to* the new node
        for t in &tenants {
            let o = map.owner(t).unwrap();
            let was = &before[tenants.iter().position(|x| x == t).unwrap()];
            if o != *was {
                assert_eq!(o, "node-c");
            }
        }
    }

    #[test]
    fn pins_override_the_hash_and_bump_the_epoch() {
        let map = ClusterMap::new();
        map.add_node("node-a", "");
        map.add_node("node-b", "");
        let home = map.owner("acme").unwrap();
        let away = if home == "node-a" { "node-b" } else { "node-a" };
        let e = map.epoch();
        map.pin("acme", away);
        assert_eq!(map.owner("acme").unwrap(), away);
        assert!(map.epoch() > e);
        assert_eq!(map.pins(), vec![("acme".to_string(), away.to_string())]);
    }
}
