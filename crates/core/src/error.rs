//! The platform error type: one façade over every subsystem's errors.

use std::fmt;

/// Errors surfaced by the platform façade.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// Tenant unknown, suspended or over a plan limit.
    Tenancy(String),
    /// Authentication/authorization failure.
    Security(String),
    /// Meta-data service failure.
    Metadata(String),
    /// SQL failure.
    Sql(String),
    /// Integration-service failure.
    Etl(String),
    /// Analysis-service failure.
    Olap(String),
    /// Reporting failure.
    Reporting(String),
    /// Delivery failure.
    Delivery(String),
    /// MDDWS failure.
    Mddws(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            PlatformError::Tenancy(m) => ("tenancy", m),
            PlatformError::Security(m) => ("security", m),
            PlatformError::Metadata(m) => ("metadata", m),
            PlatformError::Sql(m) => ("sql", m),
            PlatformError::Etl(m) => ("etl", m),
            PlatformError::Olap(m) => ("olap", m),
            PlatformError::Reporting(m) => ("reporting", m),
            PlatformError::Delivery(m) => ("delivery", m),
            PlatformError::Mddws(m) => ("mddws", m),
            PlatformError::Internal(m) => ("internal", m),
        };
        write!(f, "{kind} error: {msg}")
    }
}

impl std::error::Error for PlatformError {}

impl From<odbis_tenancy::TenancyError> for PlatformError {
    fn from(e: odbis_tenancy::TenancyError) -> Self {
        PlatformError::Tenancy(e.to_string())
    }
}

impl From<odbis_security::SecurityError> for PlatformError {
    fn from(e: odbis_security::SecurityError) -> Self {
        PlatformError::Security(e.to_string())
    }
}

impl From<odbis_metadata::MetadataError> for PlatformError {
    fn from(e: odbis_metadata::MetadataError) -> Self {
        PlatformError::Metadata(e.to_string())
    }
}

impl From<odbis_sql::SqlError> for PlatformError {
    fn from(e: odbis_sql::SqlError) -> Self {
        PlatformError::Sql(e.to_string())
    }
}

impl From<odbis_etl::EtlError> for PlatformError {
    fn from(e: odbis_etl::EtlError) -> Self {
        PlatformError::Etl(e.to_string())
    }
}

impl From<odbis_olap::OlapError> for PlatformError {
    fn from(e: odbis_olap::OlapError) -> Self {
        PlatformError::Olap(e.to_string())
    }
}

impl From<odbis_reporting::ReportError> for PlatformError {
    fn from(e: odbis_reporting::ReportError) -> Self {
        PlatformError::Reporting(e.to_string())
    }
}

impl From<odbis_delivery::DeliveryError> for PlatformError {
    fn from(e: odbis_delivery::DeliveryError) -> Self {
        PlatformError::Delivery(e.to_string())
    }
}

impl From<odbis_mddws::MddwsError> for PlatformError {
    fn from(e: odbis_mddws::MddwsError) -> Self {
        PlatformError::Mddws(e.to_string())
    }
}

/// Result alias for platform operations.
pub type PlatformResult<T> = Result<T, PlatformError>;
