//! The platform error type: one façade over every subsystem's errors.

use std::fmt;

/// Errors surfaced by the platform façade.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// Tenant unknown, suspended or over a plan limit.
    Tenancy(String),
    /// Authentication/authorization failure.
    Security(String),
    /// Meta-data service failure.
    Metadata(String),
    /// SQL failure.
    Sql(String),
    /// Integration-service failure.
    Etl(String),
    /// Analysis-service failure.
    Olap(String),
    /// Reporting failure.
    Reporting(String),
    /// Delivery failure.
    Delivery(String),
    /// MDDWS failure.
    Mddws(String),
    /// Storage-engine/durability failure (WAL, snapshot, recovery).
    Storage(String),
    /// A named resource (data set, data source, report...) does not exist.
    NotFound(String),
    /// A transient infrastructure failure (I/O error, wedged store): the
    /// request may succeed if retried — HTTP maps this to 503 + Retry-After.
    Unavailable(String),
    /// The tenant's workspace lives on another node — a migration cutover
    /// flipped ownership after this request was routed here. The same
    /// request succeeds against the owner; HTTP maps this to a 307
    /// redirect at the owner's address.
    Moved {
        /// Owning node's id.
        node_id: String,
        /// Owning node's HTTP address (`host:port`).
        addr: String,
        /// Human-readable description (the error-envelope message).
        msg: String,
    },
    /// Anything else.
    Internal(String),
}

impl PlatformError {
    /// Machine-readable error kind (the `error.kind` field of the HTTP
    /// error envelope).
    pub fn kind(&self) -> &'static str {
        match self {
            PlatformError::Tenancy(_) => "tenancy",
            PlatformError::Security(_) => "security",
            PlatformError::Metadata(_) => "metadata",
            PlatformError::Sql(_) => "sql",
            PlatformError::Etl(_) => "etl",
            PlatformError::Olap(_) => "olap",
            PlatformError::Reporting(_) => "reporting",
            PlatformError::Delivery(_) => "delivery",
            PlatformError::Mddws(_) => "mddws",
            PlatformError::Storage(_) => "storage",
            PlatformError::NotFound(_) => "not_found",
            PlatformError::Unavailable(_) => "unavailable",
            PlatformError::Moved { .. } => "moved",
            PlatformError::Internal(_) => "internal",
        }
    }

    /// The error's message, without the kind prefix.
    pub fn message(&self) -> &str {
        match self {
            PlatformError::Tenancy(m)
            | PlatformError::Security(m)
            | PlatformError::Metadata(m)
            | PlatformError::Sql(m)
            | PlatformError::Etl(m)
            | PlatformError::Olap(m)
            | PlatformError::Reporting(m)
            | PlatformError::Delivery(m)
            | PlatformError::Mddws(m)
            | PlatformError::Storage(m)
            | PlatformError::NotFound(m)
            | PlatformError::Unavailable(m)
            | PlatformError::Internal(m) => m,
            PlatformError::Moved { msg, .. } => msg,
        }
    }

    /// The HTTP status the platform API maps this error to: missing
    /// resources are 404, authn/authz failures are 403, plan/quota and
    /// tenant-state violations are 402 (payment required), transient
    /// infrastructure failures are 503 (retryable), a tenant that just
    /// migrated away is a 307 (redirect to the owner), everything else
    /// is a 400.
    pub fn http_status(&self) -> u16 {
        match self {
            PlatformError::NotFound(_) => 404,
            PlatformError::Security(_) => 403,
            PlatformError::Tenancy(_) => 402,
            PlatformError::Unavailable(_) => 503,
            PlatformError::Moved { .. } => 307,
            PlatformError::Storage(_) | PlatformError::Internal(_) => 500,
            _ => 400,
        }
    }

    /// Whether a client retry of the same request may succeed (the 503
    /// classification — drives the `Retry-After` response header).
    pub fn is_retryable(&self) -> bool {
        matches!(self, PlatformError::Unavailable(_))
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            PlatformError::NotFound(_) => "not found",
            other => other.kind(),
        };
        write!(f, "{kind} error: {}", self.message())
    }
}

impl std::error::Error for PlatformError {}

impl From<odbis_tenancy::TenancyError> for PlatformError {
    fn from(e: odbis_tenancy::TenancyError) -> Self {
        PlatformError::Tenancy(e.to_string())
    }
}

impl From<odbis_security::SecurityError> for PlatformError {
    fn from(e: odbis_security::SecurityError) -> Self {
        PlatformError::Security(e.to_string())
    }
}

impl From<odbis_metadata::MetadataError> for PlatformError {
    fn from(e: odbis_metadata::MetadataError) -> Self {
        match e {
            odbis_metadata::MetadataError::NotFound(what) => PlatformError::NotFound(what),
            other => PlatformError::Metadata(other.to_string()),
        }
    }
}

impl From<odbis_sql::SqlError> for PlatformError {
    fn from(e: odbis_sql::SqlError) -> Self {
        // an I/O failure underneath a query is the store wedging, not the
        // query being wrong: classify it transient so clients back off
        if let odbis_sql::SqlError::Storage(odbis_storage::DbError::Io(m)) = &e {
            return PlatformError::Unavailable(m.clone());
        }
        PlatformError::Sql(e.to_string())
    }
}

impl From<odbis_etl::EtlError> for PlatformError {
    fn from(e: odbis_etl::EtlError) -> Self {
        PlatformError::Etl(e.to_string())
    }
}

impl From<odbis_olap::OlapError> for PlatformError {
    fn from(e: odbis_olap::OlapError) -> Self {
        PlatformError::Olap(e.to_string())
    }
}

impl From<odbis_reporting::ReportError> for PlatformError {
    fn from(e: odbis_reporting::ReportError) -> Self {
        PlatformError::Reporting(e.to_string())
    }
}

impl From<odbis_delivery::DeliveryError> for PlatformError {
    fn from(e: odbis_delivery::DeliveryError) -> Self {
        PlatformError::Delivery(e.to_string())
    }
}

impl From<odbis_mddws::MddwsError> for PlatformError {
    fn from(e: odbis_mddws::MddwsError) -> Self {
        PlatformError::Mddws(e.to_string())
    }
}

impl From<odbis_storage::DbError> for PlatformError {
    fn from(e: odbis_storage::DbError) -> Self {
        match e {
            // I/O errors (disk full, fsync failure, injected faults) are
            // transient: the tenant's store may recover; 503 + Retry-After
            odbis_storage::DbError::Io(m) => PlatformError::Unavailable(m),
            other => PlatformError::Storage(other.to_string()),
        }
    }
}

impl From<odbis_admin::DurabilityError> for PlatformError {
    fn from(e: odbis_admin::DurabilityError) -> Self {
        match e {
            odbis_admin::DurabilityError::UnknownTenant(t) => {
                PlatformError::NotFound(format!("durable store for tenant {t}"))
            }
            odbis_admin::DurabilityError::Retryable(m) => PlatformError::Unavailable(m),
            other => PlatformError::Storage(other.to_string()),
        }
    }
}

/// Result alias for platform operations.
pub type PlatformResult<T> = Result<T, PlatformError>;
