//! The platform's HTTP API: Figure 4's UI layer, serving the web-browser
//! access tool of Figure 1 and the web-service delivery channel.
//!
//! The API is versioned: every route lives under the `/api/v1` prefix,
//! and the surface is self-describing — `GET /api/v1` answers with the
//! live route index (method, path, auth requirement, deprecation)
//! generated from the router registrations themselves, so it cannot
//! drift from the code the way a hand-maintained table would. The
//! original unprefixed paths are kept as deprecated aliases — they serve
//! the same handlers but answer with a `Deprecation: true` header and a
//! `Link` header pointing at the successor route.
//!
//! Authenticated routes read the tenant from the `x-tenant` header and the
//! session token from `Authorization: Bearer <token>` (preferred) or the
//! legacy `x-token` header — both injected as request attributes by the
//! security filter, the Spring-Security-chain analogue of the paper's
//! architecture.
//!
//! Every response carries an `X-Request-Id` header — adopted from the
//! client's, or minted — and the same id is embedded in error envelopes
//! and recorded on every span and slow-log entry the request produces
//! (the identity filter installs it as the thread's ambient telemetry
//! context for the life of the dispatch).
//!
//! Collection routes (`/datasets`, `/admin/usage`, `/admin/slowlog`)
//! accept `?limit=` and `?cursor=` and then answer with a
//! `{"items":[...],"next_cursor":...}` page (limit defaults to
//! [`DEFAULT_PAGE_LIMIT`], cursors are opaque strings); without either
//! parameter they keep the original bare-array shape for existing
//! clients.
//!
//! `GET /api/v1/datasets/:name` content-negotiates: `Accept: text/csv`
//! streams the result as RFC-4180 CSV serialized straight from the
//! columnar batch (no row pivot); JSON (the default) answers the
//! `{"columns","rows"}` shape; any other type is a 406.
//!
//! Errors are a uniform JSON envelope
//! `{"error":{"kind","message","request_id"}}`; the status code comes
//! from [`PlatformError::http_status`] (missing resources are 404, authz
//! is 403, plan/quota is 402; per-tenant admission control answers 429
//! with `Retry-After` before the router is reached).

use std::sync::Arc;

use odbis_web::{HttpRequest, HttpResponse, Method, PathParams, Router};

use crate::cluster::ClusterRoute;
use crate::error::PlatformError;
use crate::platform::OdbisPlatform;

/// The current API version prefix.
pub const API_PREFIX: &str = "/api/v1";

/// Page size used when `?cursor=` is given without `?limit=`.
pub const DEFAULT_PAGE_LIMIT: usize = 100;

/// Largest accepted `?limit=`; bigger asks are a 400, not a silent clamp.
pub const MAX_PAGE_LIMIT: usize = 1_000;

/// Longest a `/datasets/:name/watch` long-poll may park (`?timeout_ms=`,
/// default 30 000). Bigger asks are a 400, mirroring [`MAX_PAGE_LIMIT`].
pub const MAX_WATCH_TIMEOUT_MS: u64 = 60_000;

type SharedHandler = Arc<dyn Fn(&HttpRequest, &PathParams) -> HttpResponse + Send + Sync>;

/// One registered route as advertised by the `GET /api/v1` index.
struct RouteSpec {
    method: &'static str,
    path: String,
    /// `"public"`, `"session"`, or the privilege the handler checks.
    auth: &'static str,
    /// `Some(successor)` when the route is a deprecated legacy alias.
    successor: Option<String>,
}

/// Route registrar: every registration goes through here so the route
/// table served by `GET /api/v1` is generated from the same calls that
/// populate the router — they cannot disagree.
struct ApiRoutes {
    router: Router,
    specs: Vec<RouteSpec>,
}

impl ApiRoutes {
    fn new() -> Self {
        ApiRoutes {
            router: Router::new(),
            specs: Vec::new(),
        }
    }

    /// Register `path` under the `/api/v1` prefix and, for compatibility,
    /// at its legacy unprefixed location. The legacy alias serves the
    /// same handler but stamps deprecation headers on the response.
    fn versioned(
        &mut self,
        method: Method,
        path: &str,
        auth: &'static str,
        handler: impl Fn(&HttpRequest, &PathParams) -> HttpResponse + Send + Sync + 'static,
    ) {
        let handler: SharedHandler = Arc::new(handler);
        let canonical = format!("{API_PREFIX}{path}");
        let h = Arc::clone(&handler);
        self.router
            .route(method, &canonical, move |req, params| {
                finish_moved_redirect(req, h(req, params))
            });
        self.specs.push(RouteSpec {
            method: method.as_str(),
            path: canonical.clone(),
            auth,
            successor: None,
        });
        let link = format!("<{canonical}>; rel=\"successor-version\"");
        self.router.route(method, path, move |req, params| {
            finish_moved_redirect(req, handler(req, params))
                .with_header("Deprecation", "true")
                .with_header("Link", &link)
        });
        self.specs.push(RouteSpec {
            method: method.as_str(),
            path: path.to_string(),
            auth,
            successor: Some(canonical),
        });
    }

    /// Register a route that exists only at its canonical `/api/v1` path
    /// (no legacy alias ever shipped for it).
    fn canonical(
        &mut self,
        method: Method,
        path: &str,
        auth: &'static str,
        handler: impl Fn(&HttpRequest, &PathParams) -> HttpResponse + Send + Sync + 'static,
    ) {
        self.router.route(method, path, move |req, params| {
            finish_moved_redirect(req, handler(req, params))
        });
        self.specs.push(RouteSpec {
            method: method.as_str(),
            path: path.to_string(),
            auth,
            successor: None,
        });
    }

    /// Serialize the registry and mount it at `GET /api/v1`, consuming the
    /// registrar into the finished router.
    fn finish(mut self) -> Router {
        self.specs.push(RouteSpec {
            method: "GET",
            path: API_PREFIX.to_string(),
            auth: "public",
            successor: None,
        });
        let routes: Vec<serde_json::Value> = self
            .specs
            .iter()
            .map(|s| match &s.successor {
                Some(succ) => serde_json::json!({
                    "method": s.method,
                    "path": s.path,
                    "auth": s.auth,
                    "deprecated": true,
                    "successor": succ,
                }),
                None => serde_json::json!({
                    "method": s.method,
                    "path": s.path,
                    "auth": s.auth,
                    "deprecated": false,
                }),
            })
            .collect();
        let index = serde_json::json!({ "api": "v1", "routes": routes }).to_string();
        self.router.route(Method::Get, API_PREFIX, move |_, _| {
            HttpResponse::json(index.clone())
        });
        self.router
    }
}

/// The request's path plus its re-encoded query string — the target a
/// proxy forwards to, or a redirect points at, on another node.
fn target_with_query(req: &HttpRequest) -> String {
    let mut target = req.path.clone();
    if !req.query.is_empty() {
        let qs: Vec<String> = req
            .query
            .iter()
            .map(|(k, v)| format!("{}={}", encode_query(k), encode_query(v)))
            .collect();
        target = format!("{target}?{}", qs.join("&"));
    }
    target
}

/// Upgrade a "tenant moved" handler response into a complete 307: the
/// shard-router filter runs *before* dispatch, so a request routed here
/// just before a migration cutover flip reaches its handler with the
/// workspace already detached. The handler surfaces that as
/// [`PlatformError::Moved`] (a 307 carrying the owner's address in
/// `X-Odbis-Moved-To`), and this wrapper — which, unlike
/// [`error_response`], sees the request — completes the redirect with
/// the `Location` the filter would have produced.
fn finish_moved_redirect(req: &HttpRequest, resp: HttpResponse) -> HttpResponse {
    let Some(addr) = resp.headers.get("X-Odbis-Moved-To").cloned() else {
        return resp;
    };
    let location = format!("http://{addr}{}", target_with_query(req));
    resp.with_header("Location", &location)
}

/// Build the platform router. The returned router can be served with
/// [`odbis_web::HttpServer::start`].
pub fn build_router(platform: Arc<OdbisPlatform>) -> Router {
    let mut api = ApiRoutes::new();
    let router = &mut api.router;

    // identity filter: install the request id (ensured by the router
    // before any filter runs) as the thread's ambient telemetry context,
    // so every span and slow-log entry the request produces carries it
    router.filter(|req| {
        odbis_telemetry::set_ambient_request_id(req.request_id().map(str::to_string));
        None
    });
    // ... and tear it down after every dispatch, even a panicking one
    router.finally(|| odbis_telemetry::set_ambient_request_id(None));

    // security filter: stash tenant/token as request attributes; public
    // paths pass through
    router.filter(|req| {
        const PUBLIC: [&str; 6] = [
            "/health",
            "/login",
            "/api/v1",
            "/api/v1/health",
            "/api/v1/login",
            "/api/v1/metrics",
        ];
        if PUBLIC.contains(&req.path.as_str()) {
            return None;
        }
        let token = req
            .header("authorization")
            .and_then(|h| h.strip_prefix("Bearer "))
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .or_else(|| req.header("x-token"))
            .map(str::to_string);
        match (req.header("x-tenant").map(str::to_string), token) {
            (Some(t), Some(tok)) => {
                req.attributes.insert("tenant".into(), t);
                req.attributes.insert("token".into(), tok);
                None
            }
            _ => Some(error_envelope(
                401,
                "unauthorized",
                "x-tenant plus Authorization: Bearer <token> (or x-token) required",
            )),
        }
    });

    // shard-router filter: on a clustered node, requests for tenants
    // another node owns are proxied to their owner (or answered with a
    // 307 redirect when the tenant sets `cluster.redirect = true`).
    // Login bodies are parsed for their tenant so a client can log in
    // against any node and still land on the owner's realm (where the
    // minted session must live); health, metrics, the API index and the
    // failpoint registry (process-global anyway) answer locally.
    // Tenant-authenticated admin routes — cluster status included —
    // follow the tenant to its owner, because that is the only node
    // whose realm can resolve the caller's session.
    let p = Arc::clone(&platform);
    router.filter(move |req| {
        p.cluster_node()?;
        const NODE_LOCAL: [&str; 5] = [
            "/health",
            "/api/v1",
            "/api/v1/health",
            "/api/v1/metrics",
            "/api/v1/admin/failpoints",
        ];
        if NODE_LOCAL.contains(&req.path.as_str()) {
            return None;
        }
        let tenant = match req.attributes.get("tenant") {
            Some(t) => t.clone(),
            None if req.path == "/login" || req.path == "/api/v1/login" => {
                parse_login(&req.body_text())?.0
            }
            None => return None,
        };
        let ClusterRoute::Remote { node_id: owner, addr } = p.cluster_route(&tenant) else {
            return None;
        };
        let target = target_with_query(req);
        if matches!(
            p.admin.config.get(&tenant, "cluster.redirect"),
            Ok(odbis_admin::ConfigValue::Bool(true))
        ) {
            return Some(
                HttpResponse::status(307)
                    .with_header("Location", &format!("http://{addr}{target}"))
                    .with_header("X-Odbis-Owner", &owner)
                    .with_body(String::new()),
            );
        }
        let mut fwd: Vec<(&str, &str)> = Vec::new();
        for h in ["x-tenant", "x-token", "authorization", "content-type", "accept", "x-request-id"] {
            if let Some(v) = req.header(h) {
                fwd.push((h, v));
            }
        }
        match odbis_web::http_request(&addr, req.method.as_str(), &target, &fwd, &req.body) {
            Ok((status, headers, body)) => {
                let mut resp = HttpResponse::status(status)
                    .with_header("X-Odbis-Owner", &owner)
                    .with_body(body);
                for h in ["content-type", "x-watch-cursor", "retry-after", "deprecation", "link"] {
                    if let Some(v) = headers.get(h) {
                        resp = resp.with_header(h, v);
                    }
                }
                Some(resp)
            }
            Err(e) => Some(error_envelope(
                502,
                "bad_gateway",
                &format!("proxy to {owner} ({addr}) failed: {e}"),
            )),
        }
    });

    api.versioned(Method::Get, "/health", "public", |_, _| {
        HttpResponse::json("{\"status\":\"up\",\"platform\":\"ODBIS\",\"api\":\"v1\"}")
    });

    let p = Arc::clone(&platform);
    api.versioned(Method::Post, "/login", "public", move |req, _| {
        let body = req.body_text();
        let creds = parse_login(&body);
        let Some((tenant, user, password)) = creds else {
            return error_envelope(
                400,
                "bad_request",
                "body must be {\"tenant\",\"user\",\"password\"} or `<tenant> <user> <password>`",
            );
        };
        match p.login(&tenant, &user, &password) {
            Ok(token) => HttpResponse::json(
                serde_json::json!({ "token": token, "tenant": tenant }).to_string(),
            ),
            Err(e) => error_envelope(401, e.kind(), e.message()),
        }
    });

    let p = Arc::clone(&platform);
    api.canonical(Method::Get, "/api/v1/metrics", "public", move |_, _| {
        let mut body = p.admin.telemetry.render_prometheus();
        // live-session gauge per tenant realm (expired sessions are swept
        // on login and excluded from the count either way)
        body.push_str("# TYPE odbis_sessions_active gauge\n");
        for tenant in p.admin.registry().tenant_ids() {
            if let Ok(realm) = p.admin.registry().realm(&tenant) {
                body.push_str(&format!(
                    "odbis_sessions_active{{tenant=\"{tenant}\"}} {}\n",
                    realm.session_count()
                ));
            }
        }
        // admission-control verdicts per tenant, counted at the server edge
        body.push_str(&p.admission.render_prometheus());
        // fault-injection counters ride on the same scrape endpoint
        body.push_str(&odbis_chaos::render_prometheus());
        HttpResponse::status(200)
            .with_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            .with_body(body)
    });

    let p = Arc::clone(&platform);
    api.versioned(Method::Post, "/sql", "ETL_DESIGN", move |req, _| {
        let (tenant, token) = creds(req);
        match p.sql(&tenant, &token, &req.body_text()) {
            Ok(result) => HttpResponse::json(result_json(&result)),
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    api.versioned(Method::Get, "/datasets", "DATASET_RUN", move |req, _| {
        let (tenant, token) = creds(req);
        match p
            .authorize(&tenant, &token, "DATASET_RUN")
            .and_then(|_| p.workspace(&tenant))
        {
            Ok(ws) => {
                let names: Vec<serde_json::Value> = ws
                    .mds
                    .dataset_names()
                    .into_iter()
                    .map(serde_json::Value::String)
                    .collect();
                paginate(req, names)
            }
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    api.versioned(
        Method::Get,
        "/datasets/:name",
        "DATASET_RUN",
        move |req, params| {
            let (tenant, token) = creds(req);
            // `.get` rather than indexing: a route-table edit that renames
            // the segment must degrade to a 400, not a worker panic
            let Some(name) = params.get("name") else {
                return error_envelope(400, "bad_request", "missing dataset name");
            };
            match negotiate(req) {
                Negotiated::Json => match p.execute_dataset(&tenant, &token, name) {
                    Ok(result) => HttpResponse::json(result_json(&result)),
                    Err(e) => error_response(&e),
                },
                Negotiated::Csv => match p.execute_dataset_batch(&tenant, &token, name) {
                    Ok((columns, batch)) => csv_response(&columns, &batch),
                    Err(e) => error_response(&e),
                },
                Negotiated::Unsupported => error_envelope(
                    406,
                    "not_acceptable",
                    "unsupported Accept type; this route serves application/json or text/csv",
                ),
            }
        },
    );

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Get,
        "/api/v1/datasets/:name/watch",
        "DATASET_RUN",
        move |req, params| {
            let Some(name) = params.get("name") else {
                return error_envelope(400, "bad_request", "missing dataset name");
            };
            let (tenant, token) = creds(req);
            // cursor: where the client's previous poll left off (0 = any
            // change ever recorded counts); timeout: how long to park,
            // bounded so a watcher cannot hold its slot forever
            let cursor = match req.query_param("cursor") {
                None => 0,
                Some(s) => match s.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        return error_envelope(
                            400,
                            "bad_request",
                            "cursor must be an unsigned integer",
                        )
                    }
                },
            };
            let timeout_ms = match req.query_param("timeout_ms") {
                None => 30_000,
                Some(s) => match s.parse::<u64>() {
                    Ok(n) if n <= MAX_WATCH_TIMEOUT_MS => n,
                    _ => {
                        return error_envelope(
                            400,
                            "bad_request",
                            &format!("timeout_ms must be an integer in 0..={MAX_WATCH_TIMEOUT_MS}"),
                        )
                    }
                },
            };
            let (hub, tables) = match p.watch_dataset(&tenant, &token, name) {
                Ok(sub) => sub,
                Err(e) => return error_response(&e),
            };
            let (placeholder, slot) = HttpResponse::deferred();
            let dataset = name.to_string();
            hub.subscribe(
                tables,
                cursor,
                std::time::Duration::from_millis(timeout_ms),
                Box::new(move |outcome| {
                    let cursor_text = outcome.cursor.to_string();
                    let response = if outcome.changed {
                        HttpResponse::json(
                            serde_json::json!({
                                "dataset": dataset,
                                "changed": true,
                                "cursor": outcome.cursor,
                            })
                            .to_string(),
                        )
                    } else {
                        // nothing moved before the deadline: 204 with the
                        // caller's cursor echoed so the next poll resumes
                        // from exactly the same point
                        HttpResponse::status(204)
                    };
                    slot.fulfill(response.with_header("X-Watch-Cursor", &cursor_text));
                }),
            );
            placeholder
        },
    );

    let p = Arc::clone(&platform);
    api.versioned(Method::Post, "/mdx", "CUBE_QUERY", move |req, _| {
        let (tenant, token) = creds(req);
        match p.mdx(&tenant, &token, &req.body_text()) {
            Ok(cells) => {
                let rows: Vec<serde_json::Value> = cells
                    .cells
                    .iter()
                    .map(|(coords, measures)| {
                        serde_json::json!({
                            "coords": coords.iter().map(|v| v.render()).collect::<Vec<_>>(),
                            "measures": measures.iter().map(|v| v.render()).collect::<Vec<_>>(),
                        })
                    })
                    .collect();
                HttpResponse::json(
                    serde_json::json!({
                        "axes": cells.axis_names,
                        "measures": cells.measure_names,
                        "cells": rows,
                    })
                    .to_string(),
                )
            }
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    api.versioned(Method::Get, "/admin/usage", "ADMIN_USERS", move |req, _| {
        let (tenant, token) = creds(req);
        match p.authorize(&tenant, &token, "ADMIN_USERS") {
            Ok(_) => {
                let lines: Vec<serde_json::Value> = p
                    .admin
                    .usage_report()
                    .into_iter()
                    .map(|l| {
                        serde_json::json!({
                            "tenant": l.tenant,
                            "service": l.service,
                            "units": l.units,
                        })
                    })
                    .collect();
                paginate(req, lines)
            }
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Get,
        "/api/v1/admin/invoice",
        "ADMIN_USERS",
        move |req, _| {
            let (tenant, token) = creds(req);
            match p.authorize(&tenant, &token, "ADMIN_USERS") {
                Ok(_) => {
                    let lines: Vec<serde_json::Value> = p
                        .admin
                        .invoice_report()
                        .into_iter()
                        .map(|l| {
                            serde_json::json!({
                                "tenant": l.tenant,
                                "service": l.service,
                                "units": l.units,
                                "requests": l.requests,
                                "errors": l.errors,
                                "rows": l.rows,
                                "bytes": l.bytes,
                                "cpuMicros": l.cpu_micros,
                                "millicents": l.millicents,
                            })
                        })
                        .collect();
                    HttpResponse::json(serde_json::Value::Array(lines).to_string())
                }
                Err(e) => error_response(&e),
            }
        },
    );

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Get,
        "/api/v1/admin/slowlog",
        "ADMIN_USERS",
        move |req, _| {
            let (tenant, token) = creds(req);
            match p.authorize(&tenant, &token, "ADMIN_USERS") {
                Ok(_) => {
                    let lines: Vec<serde_json::Value> = p
                        .admin
                        .telemetry
                        .slow_log()
                        .into_iter()
                        .map(|e| {
                            serde_json::json!({
                                "tenant": e.tenant,
                                "service": e.service,
                                "operation": e.operation,
                                "detail": e.detail,
                                "durationMicros": e.duration_micros,
                                "traceId": e.trace_id,
                                "requestId": e.request_id,
                            })
                        })
                        .collect();
                    paginate(req, lines)
                }
                Err(e) => error_response(&e),
            }
        },
    );

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Get,
        "/api/v1/admin/durability",
        "ADMIN_CONFIG",
        move |req, _| {
            let (tenant, token) = creds(req);
            match p.durability_status(&tenant, &token) {
                Ok(s) => HttpResponse::json(
                    serde_json::json!({
                        "tenant": s.tenant,
                        "fsync": s.fsync,
                        "format": s.format,
                        "walAppends": s.wal_appends,
                        "walBytes": s.wal_bytes,
                        "walFileLen": s.wal_file_len,
                        "nextLsn": s.next_lsn,
                    })
                    .to_string(),
                ),
                Err(e) => error_response(&e),
            }
        },
    );

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Post,
        "/api/v1/admin/checkpoint",
        "ADMIN_CONFIG",
        move |req, _| {
            let (tenant, token) = creds(req);
            match p.checkpoint_tenant(&tenant, &token) {
                Ok(o) => HttpResponse::json(
                    serde_json::json!({
                        "tenant": o.tenant,
                        "tables": o.tables,
                        "tablesFlushed": o.tables_flushed,
                        "walBytesFolded": o.wal_bytes_folded,
                        "micros": o.micros,
                    })
                    .to_string(),
                ),
                Err(e) => error_response(&e),
            }
        },
    );

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Post,
        "/api/v1/admin/failpoints",
        "ADMIN_CONFIG",
        move |req, _| {
            let (tenant, token) = creds(req);
            if let Err(e) = p.authorize(&tenant, &token, "ADMIN_CONFIG") {
                return error_response(&e);
            }
            // fault injection is opt-in: the endpoint is inert unless the
            // operator flipped `chaos.enabled` (never on by default)
            if !matches!(
                p.admin.config.get(&tenant, "chaos.enabled"),
                Ok(odbis_admin::ConfigValue::Bool(true))
            ) {
                return error_envelope(
                    403,
                    "security",
                    "fault injection is disabled (set chaos.enabled = true)",
                );
            }
            let spec = req.body_text();
            let spec = spec.trim();
            let applied = match spec {
                "clear" => {
                    odbis_chaos::clear();
                    0
                }
                "list" => 0,
                _ => match odbis_chaos::apply_spec(spec) {
                    Ok(n) => n,
                    Err(e) => return error_envelope(400, "config", &e),
                },
            };
            let sites: Vec<serde_json::Value> = odbis_chaos::snapshot()
                .into_iter()
                .map(|(site, policy, hits, triggered)| {
                    serde_json::json!({
                        "site": site,
                        "policy": policy,
                        "hits": hits,
                        "triggered": triggered,
                    })
                })
                .collect();
            HttpResponse::json(
                serde_json::json!({ "applied": applied, "sites": sites }).to_string(),
            )
        },
    );

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Get,
        "/api/v1/admin/cluster",
        "ADMIN_CONFIG",
        move |req, _| {
            let (tenant, token) = creds(req);
            if let Err(e) = p.authorize(&tenant, &token, "ADMIN_CONFIG") {
                return error_response(&e);
            }
            let Some((node_id, map)) = p.cluster_node() else {
                return HttpResponse::json(
                    serde_json::json!({
                        "clustered": false,
                        "node": serde_json::Value::Null,
                        "epoch": 0,
                        "nodes": serde_json::Value::Array(Vec::new()),
                        "pins": serde_json::Value::Object(serde_json::Map::new()),
                    })
                    .to_string(),
                );
            };
            let nodes: Vec<serde_json::Value> = map
                .nodes()
                .into_iter()
                .map(|(id, addr)| {
                    serde_json::json!({ "id": id, "addr": addr, "local": id == node_id })
                })
                .collect();
            let pins = serde_json::Value::Object(
                map.pins()
                    .into_iter()
                    .map(|(t, n)| (t, serde_json::Value::String(n)))
                    .collect(),
            );
            HttpResponse::json(
                serde_json::json!({
                    "clustered": true,
                    "node": node_id,
                    "epoch": map.epoch(),
                    "nodes": nodes,
                    "pins": pins,
                })
                .to_string(),
            )
        },
    );

    let p = Arc::clone(&platform);
    api.canonical(
        Method::Post,
        "/api/v1/admin/migrate",
        "ADMIN_CONFIG",
        move |req, _| {
            let (tenant, token) = creds(req);
            if let Err(e) = p.authorize(&tenant, &token, "ADMIN_CONFIG") {
                return error_response(&e);
            }
            let body: serde_json::Value = match serde_json::from_str(&req.body_text()) {
                Ok(v) => v,
                Err(_) => {
                    return error_envelope(
                        400,
                        "bad_request",
                        "body must be JSON {\"target\": \"<node id>\"}",
                    )
                }
            };
            let Some(target) = body.get("target").and_then(|v| v.as_str()) else {
                return error_envelope(400, "bad_request", "missing \"target\" node id");
            };
            // migration is tenant-scoped: the authenticated admin moves
            // their own tenant, so the shard router has already landed
            // this request on the source node
            if let Some(t) = body.get("tenant").and_then(|v| v.as_str()) {
                if t != tenant {
                    return error_envelope(
                        403,
                        "security",
                        "a tenant admin can only migrate their own tenant",
                    );
                }
            }
            let Some(fabric) = p.cluster_fabric() else {
                return error_envelope(
                    503,
                    "unavailable",
                    "this node is not part of a cluster fabric",
                );
            };
            match fabric.migrate(&tenant, target) {
                Ok(r) => HttpResponse::json(
                    serde_json::json!({
                        "tenant": r.tenant,
                        "from": r.from,
                        "to": r.to,
                        "checkpointLsn": r.checkpoint_lsn,
                        "tailFrames": r.tail_frames,
                        "tailLastLsn": r.tail_last_lsn,
                        "sessionsAdopted": r.sessions_adopted,
                        "epoch": r.epoch,
                    })
                    .to_string(),
                ),
                Err(e) => error_response(&e),
            }
        },
    );

    api.finish()
}

/// Percent-encode a query key/value for the proxy's re-assembled
/// request line (the router stores them decoded).
fn encode_query(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Serve the platform API over HTTP with the platform's per-tenant
/// admission control wired into the server edge: requests carrying an
/// `x-tenant` header are rate-gated against the tenant's `limits.*`
/// settings before a worker picks them up, and over-limit callers get a
/// 429 envelope with `Retry-After`.
pub fn serve_platform(
    platform: &Arc<OdbisPlatform>,
    workers: usize,
) -> std::io::Result<odbis_web::HttpServer> {
    odbis_web::HttpServer::builder(build_router(Arc::clone(platform)))
        .workers(workers)
        .admission(Arc::clone(&platform.admission))
        .start()
}

/// Parse a login body: preferred JSON `{"tenant","user","password"}`, with
/// the legacy whitespace-separated triple accepted for old clients.
fn parse_login(body: &str) -> Option<(String, String, String)> {
    if let Ok(v) = serde_json::from_str::<serde_json::Value>(body) {
        if let (Some(t), Some(u), Some(p)) = (
            v.get("tenant").and_then(|x| x.as_str()),
            v.get("user").and_then(|x| x.as_str()),
            v.get("password").and_then(|x| x.as_str()),
        ) {
            return Some((t.to_string(), u.to_string(), p.to_string()));
        }
        return None;
    }
    let mut parts = body.split_whitespace();
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(t), Some(u), Some(p), None) => Some((t.to_string(), u.to_string(), p.to_string())),
        _ => None,
    }
}

fn creds(req: &HttpRequest) -> (String, String) {
    (
        req.attributes.get("tenant").cloned().unwrap_or_default(),
        req.attributes.get("token").cloned().unwrap_or_default(),
    )
}

/// Answer a collection route. Without `?limit=` or `?cursor=` the
/// response is the original bare JSON array (existing clients parse
/// that); with either parameter it is a `{"items":[...],"next_cursor"}`
/// page. Cursors are opaque to clients — today they encode the offset of
/// the next page — and `next_cursor` is `null` on the last page. A
/// malformed limit or cursor is a 400 envelope, not an empty page.
fn paginate(req: &HttpRequest, items: Vec<serde_json::Value>) -> HttpResponse {
    let (limit_param, cursor_param) = (req.query_param("limit"), req.query_param("cursor"));
    if limit_param.is_none() && cursor_param.is_none() {
        return HttpResponse::json(serde_json::Value::Array(items).to_string());
    }
    let limit = match limit_param {
        None => DEFAULT_PAGE_LIMIT,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if (1..=MAX_PAGE_LIMIT).contains(&n) => n,
            _ => {
                return error_envelope(
                    400,
                    "bad_request",
                    &format!("limit must be an integer in 1..={MAX_PAGE_LIMIT}"),
                )
            }
        },
    };
    let offset = match cursor_param {
        None => 0,
        Some(s) => match s.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return error_envelope(400, "bad_request", "invalid cursor"),
        },
    };
    let total = items.len();
    let page: Vec<serde_json::Value> = items.into_iter().skip(offset).take(limit).collect();
    let next = offset.saturating_add(page.len());
    let next_cursor = if next < total {
        serde_json::json!(next.to_string())
    } else {
        serde_json::Value::Null
    };
    HttpResponse::json(serde_json::json!({ "items": page, "next_cursor": next_cursor }).to_string())
}

/// What the client's `Accept` header asks a data route to produce.
enum Negotiated {
    Json,
    Csv,
    Unsupported,
}

/// First supported media range wins, in the order the client listed them;
/// a missing or empty `Accept` means JSON. Quality parameters are ignored
/// (order expresses preference in every client this API serves).
fn negotiate(req: &HttpRequest) -> Negotiated {
    let Some(accept) = req.header("accept") else {
        return Negotiated::Json;
    };
    if accept.trim().is_empty() {
        return Negotiated::Json;
    }
    for item in accept.split(',') {
        let media = item
            .split(';')
            .next()
            .unwrap_or("")
            .trim()
            .to_ascii_lowercase();
        match media.as_str() {
            "application/json" | "application/*" | "*/*" => return Negotiated::Json,
            "text/csv" | "text/*" => return Negotiated::Csv,
            _ => {}
        }
    }
    Negotiated::Unsupported
}

/// RFC-4180 field quoting: only fields containing a comma, quote, or line
/// break are wrapped, with embedded quotes doubled.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize a columnar batch as CSV — header row of column names, then
/// one line per row, values rendered column-at-a-time straight from the
/// batch (no intermediate row pivot or JSON tree).
fn csv_response(columns: &[String], batch: &odbis_storage::Batch) -> HttpResponse {
    let mut out = String::new();
    let header: Vec<String> = columns.iter().map(|c| csv_field(c)).collect();
    out.push_str(&header.join(","));
    out.push_str("\r\n");
    for row in 0..batch.num_rows() {
        for col in 0..batch.num_columns() {
            if col > 0 {
                out.push(',');
            }
            out.push_str(&csv_field(&batch.value(col, row).render()));
        }
        out.push_str("\r\n");
    }
    HttpResponse::status(200)
        .with_header("Content-Type", "text/csv; charset=utf-8")
        .with_body(out)
}

fn result_json(result: &odbis_sql::QueryResult) -> String {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.render()).collect())
        .collect();
    serde_json::json!({
        "columns": result.columns,
        "rows": rows,
        "rowsAffected": result.rows_affected,
    })
    .to_string()
}

/// The single place HTTP error bodies are produced: a JSON envelope
/// `{"error":{"kind":...,"message":...,"request_id":...}}`. The request
/// id comes from the thread's ambient telemetry context, which the
/// identity filter installed for the duration of the dispatch.
fn error_envelope(status: u16, kind: &str, message: &str) -> HttpResponse {
    let request_id = odbis_telemetry::ambient_request_id().unwrap_or_default();
    HttpResponse::status(status)
        .with_header("Content-Type", "application/json")
        .with_body(
            serde_json::json!({
                "error": serde_json::json!({
                    "kind": kind,
                    "message": message,
                    "request_id": request_id,
                }),
            })
            .to_string(),
        )
}

fn error_response(e: &PlatformError) -> HttpResponse {
    let mut resp = error_envelope(e.http_status(), e.kind(), e.message());
    if let PlatformError::Moved { node_id, addr, .. } = e {
        // marker the route wrapper upgrades to a Location header (the
        // full redirect target needs the request path, absent here)
        resp = resp
            .with_header("X-Odbis-Owner", node_id)
            .with_header("X-Odbis-Moved-To", addr);
    }
    if e.is_retryable() {
        // a wedged store is transient: tell well-behaved clients when to
        // come back instead of letting them hammer the 503
        resp.with_header("Retry-After", "1")
    } else {
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbis_metadata::DataSet;
    use odbis_tenancy::SubscriptionPlan;
    use odbis_web::{http_get, http_request, HttpServer};

    fn serve() -> (HttpServer, Arc<OdbisPlatform>, String) {
        let platform = Arc::new(OdbisPlatform::new());
        platform
            .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = platform.login("acme", "root", "pw").unwrap();
        let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
        (server, platform, token)
    }

    #[test]
    fn health_is_public_on_both_paths() {
        let (server, _p, _t) = serve();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/api/v1/health").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"up\""));
        // legacy alias still answers, but flagged deprecated
        let (status, headers, _) = http_request(&addr, "GET", "/health", &[], b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(headers.get("deprecation").map(String::as_str), Some("true"));
        assert!(headers["link"].contains("/api/v1/health"));
    }

    #[test]
    fn login_accepts_json_and_legacy_bodies() {
        let (server, _p, _t) = serve();
        let addr = server.addr().to_string();
        let (status, body) = odbis_web::http_post(
            &addr,
            "/api/v1/login",
            "{\"tenant\":\"acme\",\"user\":\"root\",\"password\":\"pw\"}",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("token"));
        // legacy whitespace triple on the legacy path
        let (status, body) = odbis_web::http_post(&addr, "/login", "acme root pw").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("token"));
        // wrong password → 401 with the error envelope
        let (status, body) = odbis_web::http_post(
            &addr,
            "/api/v1/login",
            "{\"tenant\":\"acme\",\"user\":\"root\",\"password\":\"no\"}",
        )
        .unwrap();
        assert_eq!(status, 401);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["kind"], "security");
        // malformed body → 400
        let (status, _) = odbis_web::http_post(&addr, "/api/v1/login", "short").unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            odbis_web::http_post(&addr, "/api/v1/login", "{\"tenant\":\"acme\"}").unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn protected_routes_require_credentials() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/api/v1/datasets").unwrap();
        assert_eq!(status, 401);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["kind"], "unauthorized");
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/datasets", &token, "");
        assert_eq!(status, 200);
        assert_eq!(body, "[]");
    }

    #[test]
    fn bearer_token_is_accepted() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let bearer = format!("Bearer {token}");
        let (status, _, body) = http_request(
            &addr,
            "GET",
            "/api/v1/datasets",
            &[("x-tenant", "acme"), ("Authorization", bearer.as_str())],
            b"",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "[]");
        // a forged bearer token is authenticated-but-denied: 403
        let (status, _, _) = http_request(
            &addr,
            "GET",
            "/api/v1/datasets",
            &[("x-tenant", "acme"), ("Authorization", "Bearer forged")],
            b"",
        )
        .unwrap();
        assert_eq!(status, 403);
    }

    fn with_auth(
        addr: &str,
        method: &str,
        path: &str,
        token: &str,
        body: &str,
    ) -> (u16, String, ()) {
        let (status, _, resp) = http_request(
            addr,
            method,
            path,
            &[("x-tenant", "acme"), ("x-token", token)],
            body.as_bytes(),
        )
        .unwrap();
        (status, resp, ())
    }

    #[test]
    fn sql_and_dataset_round_trip_over_http() {
        let (server, platform, token) = serve();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(
            &addr,
            "POST",
            "/api/v1/sql",
            &token,
            "CREATE TABLE kpis (name TEXT, v INT)",
        );
        assert_eq!(status, 200);
        let (status, _, _) = with_auth(
            &addr,
            "POST",
            "/api/v1/sql",
            &token,
            "INSERT INTO kpis VALUES ('churn', 7)",
        );
        assert_eq!(status, 200);
        platform
            .define_dataset(
                "acme",
                &token,
                DataSet {
                    name: "kpis".into(),
                    source: "warehouse".into(),
                    sql: "SELECT name, v FROM kpis".into(),
                    description: String::new(),
                },
            )
            .unwrap();
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/datasets/kpis", &token, "");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["rows"][0][0], "churn");
        // missing dataset → 404 with the not_found envelope
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/datasets/ghost", &token, "");
        assert_eq!(status, 404);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["kind"], "not_found");
        // usage visible to the admin
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/admin/usage", &token, "");
        assert_eq!(status, 200);
        assert!(body.contains("MDS"));
    }

    #[test]
    fn legacy_sql_alias_still_works_with_deprecation_header() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let (status, headers, _) = http_request(
            &addr,
            "POST",
            "/sql",
            &[("x-tenant", "acme"), ("x-token", token.as_str())],
            b"CREATE TABLE t (x INT)",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(headers.get("deprecation").map(String::as_str), Some("true"));
        assert!(headers["link"].contains("/api/v1/sql"));
    }

    #[test]
    fn metrics_scrape_reflects_traffic() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(&addr, "POST", "/api/v1/sql", &token, "SELECT 1");
        assert_eq!(status, 200);
        let (status, body) = http_get(&addr, "/api/v1/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE odbis_requests_total counter"));
        assert!(body.contains("tenant=\"acme\""));
        assert!(body.contains("service=\"MDS\""));
        assert!(body.contains("odbis_latency_seconds_bucket"));
    }

    /// Every route family, fed garbage: the answer is always a structured
    /// 4xx JSON envelope, never a 5xx and never a panicked worker.
    #[test]
    fn malformed_requests_get_envelopes_not_panics() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let cases: [(&str, &str, &str); 6] = [
            ("POST", "/api/v1/sql", "SELEKT ) FROM ((("),
            ("POST", "/api/v1/sql", "\u{0}\u{fffd}{{{{"),
            ("POST", "/api/v1/mdx", "not mdx at all ]["),
            ("GET", "/api/v1/datasets/%00%ff", ""),
            ("GET", "/api/v1/datasets/..%2F..%2Fetc", ""),
            ("POST", "/api/v1/admin/failpoints", "no.such.site=???"),
        ];
        for (method, path, body) in cases {
            let (status, resp, _) = with_auth(&addr, method, path, &token, body);
            assert!(
                (400..500).contains(&status),
                "{method} {path} answered {status}: {resp}"
            );
            let v: serde_json::Value = serde_json::from_str(&resp)
                .unwrap_or_else(|_| panic!("{method} {path} body is not JSON: {resp}"));
            assert!(
                v["error"]["kind"].as_str().is_some() && v["error"]["message"].as_str().is_some(),
                "{method} {path} missing envelope: {resp}"
            );
        }
        // the server survived all of it
        let (status, _) = http_get(&addr, "/api/v1/health").unwrap();
        assert_eq!(status, 200);
    }

    /// Raw non-UTF-8 bytes in a body must not take down the connection
    /// handler; the SQL engine sees the lossy decoding and rejects it.
    #[test]
    fn binary_body_is_rejected_cleanly() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let (status, _, body) = http_request(
            &addr,
            "POST",
            "/api/v1/sql",
            &[("x-tenant", "acme"), ("x-token", token.as_str())],
            &[0xff, 0xfe, 0x00, 0x80, 0xc3],
        )
        .unwrap();
        assert!((400..500).contains(&status), "got {status}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(v["error"]["kind"].as_str().is_some());
    }

    #[test]
    fn metrics_exposes_live_session_gauge() {
        let (server, platform, _token) = serve();
        let addr = server.addr().to_string();
        // serve() already logged root in once; a second login adds one more
        let _ = platform.login("acme", "root", "pw").unwrap();
        let (status, body) = http_get(&addr, "/api/v1/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE odbis_sessions_active gauge"));
        assert!(
            body.contains("odbis_sessions_active{tenant=\"acme\"} 2"),
            "gauge line missing or wrong: {body}"
        );
    }

    #[test]
    fn invoice_requires_admin_and_prices_usage() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(&addr, "POST", "/api/v1/sql", &token, "SELECT 1");
        assert_eq!(status, 200);
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/admin/invoice", &token, "");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        let lines = v.as_array().unwrap();
        assert!(lines
            .iter()
            .any(|l| l["tenant"] == "acme" && l["service"] == "MDS"));
        // a forged token cannot read invoices
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/admin/invoice", "forged", "");
        assert_eq!(status, 403);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["kind"], "security");
    }

    #[test]
    fn durability_endpoints_round_trip() {
        let dir = std::env::temp_dir().join(format!("odbis-webapi-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let platform = Arc::new(OdbisPlatform::with_data_dir(&dir));
        platform
            .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = platform.login("acme", "root", "pw").unwrap();
        let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(
            &addr,
            "POST",
            "/api/v1/sql",
            &token,
            "CREATE TABLE t (x INT)",
        );
        assert_eq!(status, 200);
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/admin/durability", &token, "");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["tenant"], "acme");
        assert!(v["walAppends"].as_i64().unwrap() >= 1);
        let (status, body, _) = with_auth(&addr, "POST", "/api/v1/admin/checkpoint", &token, "");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(v["walBytesFolded"].as_i64().unwrap() > 0);
        // after the checkpoint the log is empty again
        let (status, body, _) = with_auth(&addr, "GET", "/api/v1/admin/durability", &token, "");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["walFileLen"].as_i64().unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_endpoints_error_without_a_data_dir() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(&addr, "GET", "/api/v1/admin/durability", &token, "");
        assert_eq!(status, 500);
        let (status, _, _) = with_auth(&addr, "POST", "/api/v1/admin/checkpoint", &token, "");
        assert_eq!(status, 500);
    }

    #[test]
    fn forged_token_is_forbidden() {
        let (server, _p, _token) = serve();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(&addr, "POST", "/api/v1/sql", "forged", "SELECT 1");
        assert_eq!(status, 403);
    }

    #[test]
    fn failpoints_endpoint_is_gated_then_arms_sites() {
        // serialize against other chaos-touching tests; the armed site name
        // is private to this test so parallel tests are unaffected
        let _x = odbis_chaos::exclusive();
        odbis_chaos::clear();
        let (server, p, token) = serve();
        let addr = server.addr().to_string();
        let spec = "webapi.test=err-every-nth(5)";
        // off by default: the endpoint refuses even the admin
        let (status, body, _) = with_auth(&addr, "POST", "/api/v1/admin/failpoints", &token, spec);
        assert_eq!(status, 403);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["kind"], "security");
        // the operator opts in
        p.admin.config.set("chaos.enabled", true.into()).unwrap();
        let (status, body, _) = with_auth(&addr, "POST", "/api/v1/admin/failpoints", &token, spec);
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["applied"], 1);
        assert_eq!(v["sites"][0]["site"], "webapi.test");
        // malformed specs are rejected with the envelope
        let (status, body, _) =
            with_auth(&addr, "POST", "/api/v1/admin/failpoints", &token, "garbage");
        assert_eq!(status, 400);
        assert!(body.contains("\"error\""));
        // list leaves the registry untouched; clear empties it
        let (status, body, _) =
            with_auth(&addr, "POST", "/api/v1/admin/failpoints", &token, "list");
        assert_eq!(status, 200);
        assert!(body.contains("webapi.test"));
        let (status, body, _) =
            with_auth(&addr, "POST", "/api/v1/admin/failpoints", &token, "clear");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(v["sites"].as_array().unwrap().is_empty());
        // non-admin credentials never reach the registry
        let (status, _, _) = with_auth(&addr, "POST", "/api/v1/admin/failpoints", "forged", spec);
        assert_eq!(status, 403);
        odbis_chaos::clear();
    }

    fn cluster_tmp(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "odbis-webapi-cluster-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// The tentpole end to end over real HTTP: a two-node cluster where
    /// the non-owner proxies to the owner, `/api/v1/admin/cluster`
    /// reports the map, `POST /api/v1/admin/migrate` moves the live
    /// tenant, and afterwards the old owner transparently proxies to the
    /// new one — same token, no lost rows.
    #[test]
    fn cluster_routes_proxies_and_migrates_over_http() {
        let root = cluster_tmp("e2e");
        let fabric = crate::Cluster::new();
        let node_a = fabric.add_node("node-a", root.join("a")).unwrap();
        let node_b = fabric.add_node("node-b", root.join("b")).unwrap();
        let srv_a = HttpServer::start(build_router(Arc::clone(&node_a)), 2).unwrap();
        let srv_b = HttpServer::start(build_router(Arc::clone(&node_b)), 2).unwrap();
        fabric.map().set_addr("node-a", &srv_a.addr().to_string());
        fabric.map().set_addr("node-b", &srv_b.addr().to_string());

        let owner = fabric
            .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let (owner_addr, other_addr, other_id) = if owner == "node-a" {
            (srv_a.addr().to_string(), srv_b.addr().to_string(), "node-b")
        } else {
            (srv_b.addr().to_string(), srv_a.addr().to_string(), "node-a")
        };

        // login lands on the owner's realm no matter which node takes it
        let (status, body) = odbis_web::http_post(
            &other_addr,
            "/api/v1/login",
            "{\"tenant\":\"acme\",\"user\":\"root\",\"password\":\"pw\"}",
        )
        .unwrap();
        assert_eq!(status, 200, "proxied login: {body}");
        let token = serde_json::from_str::<serde_json::Value>(&body).unwrap()["token"]
            .as_str()
            .unwrap()
            .to_string();

        // writes through the non-owner are proxied (and marked as such)
        let (status, headers, body) = http_request(
            &other_addr,
            "POST",
            "/api/v1/sql",
            &[("x-tenant", "acme"), ("x-token", &token)],
            b"CREATE TABLE kv (k INT, v TEXT)",
        )
        .unwrap();
        assert_eq!(status, 200, "proxied create: {body}");
        assert_eq!(headers.get("x-odbis-owner").map(String::as_str), Some(owner.as_str()));
        for i in 0..4 {
            let (status, _, _) = http_request(
                &other_addr,
                "POST",
                "/api/v1/sql",
                &[("x-tenant", "acme"), ("x-token", &token)],
                format!("INSERT INTO kv VALUES ({i}, 'v{i}')").as_bytes(),
            )
            .unwrap();
            assert_eq!(status, 200);
        }
        // ... and the same request on the owner is served locally
        let (status, headers, _) = http_request(
            &owner_addr,
            "POST",
            "/api/v1/sql",
            &[("x-tenant", "acme"), ("x-token", &token)],
            b"SELECT COUNT(*) FROM kv",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(!headers.contains_key("x-odbis-owner"));

        // the cluster map is visible from any node
        let (status, _, body) = http_request(
            &other_addr,
            "GET",
            "/api/v1/admin/cluster",
            &[("x-tenant", "acme"), ("x-token", &token)],
            b"",
        )
        .unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["clustered"], true);
        assert_eq!(v["nodes"].as_array().unwrap().len(), 2);

        // live migration to the other node, requested over HTTP
        let (status, _, body) = http_request(
            &owner_addr,
            "POST",
            "/api/v1/admin/migrate",
            &[("x-tenant", "acme"), ("x-token", &token)],
            format!("{{\"target\":\"{other_id}\"}}").as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200, "migrate: {body}");
        let report: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(report["from"], owner.as_str());
        assert_eq!(report["to"], other_id);

        // the old owner now proxies to the new one; the session survived
        let (status, headers, body) = http_request(
            &owner_addr,
            "POST",
            "/api/v1/sql",
            &[("x-tenant", "acme"), ("x-token", &token)],
            b"SELECT COUNT(*) FROM kv",
        )
        .unwrap();
        assert_eq!(status, 200, "post-migration query: {body}");
        assert_eq!(headers.get("x-odbis-owner").map(String::as_str), Some(other_id));
        assert!(body.contains('4'), "all four rows survived: {body}");

        // redirect mode: the tenant opts out of proxying
        node_a
            .admin
            .config
            .set_for_tenant("acme", "cluster.redirect", true.into())
            .unwrap();
        node_b
            .admin
            .config
            .set_for_tenant("acme", "cluster.redirect", true.into())
            .unwrap();
        let (status, headers, _) = http_request(
            &owner_addr,
            "POST",
            "/api/v1/sql",
            &[("x-tenant", "acme"), ("x-token", &token)],
            b"SELECT COUNT(*) FROM kv",
        )
        .unwrap();
        assert_eq!(status, 307);
        assert!(headers["location"].contains("/api/v1/sql"));

        let _ = std::fs::remove_dir_all(&root);
    }
}
