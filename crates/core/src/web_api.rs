//! The platform's HTTP API: Figure 4's UI layer, serving the web-browser
//! access tool of Figure 1 and the web-service delivery channel.
//!
//! Routes:
//!
//! | method | path | purpose |
//! |---|---|---|
//! | GET  | `/health` | liveness |
//! | POST | `/login` | body `tenant user password` → token |
//! | POST | `/sql` | raw SQL (designer) |
//! | GET  | `/datasets` | list data sets |
//! | GET  | `/datasets/:name` | execute a data set (JSON) |
//! | POST | `/mdx` | MDX-lite query |
//! | GET  | `/admin/usage` | platform usage report |
//!
//! Authenticated routes read the `x-tenant` and `x-token` headers —
//! injected by the security filter, which is the Spring-Security-chain
//! analogue of the paper's architecture.

use std::sync::Arc;

use odbis_web::{HttpResponse, Method, Router};

use crate::platform::OdbisPlatform;

/// Build the platform router. The returned router can be served with
/// [`odbis_web::HttpServer::start`].
pub fn build_router(platform: Arc<OdbisPlatform>) -> Router {
    let mut router = Router::new();

    // security filter: stash tenant/token as request attributes; public
    // paths pass through
    router.filter(|req| {
        if req.path == "/health" || req.path == "/login" {
            return None;
        }
        match (req.header("x-tenant"), req.header("x-token")) {
            (Some(t), Some(tok)) => {
                let t = t.to_string();
                let tok = tok.to_string();
                req.attributes.insert("tenant".into(), t);
                req.attributes.insert("token".into(), tok);
                None
            }
            _ => Some(HttpResponse::unauthorized(
                "x-tenant and x-token headers required",
            )),
        }
    });

    router.route(Method::Get, "/health", |_, _| {
        HttpResponse::json("{\"status\":\"up\",\"platform\":\"ODBIS\"}")
    });

    let p = Arc::clone(&platform);
    router.route(Method::Post, "/login", move |req, _| {
        let body = req.body_text();
        let mut parts = body.split_whitespace();
        let (Some(tenant), Some(user), Some(password)) = (parts.next(), parts.next(), parts.next())
        else {
            return HttpResponse::bad_request("body must be: <tenant> <user> <password>");
        };
        match p.login(tenant, user, password) {
            Ok(token) => HttpResponse::json(format!("{{\"token\":\"{token}\"}}")),
            Err(e) => HttpResponse::unauthorized(&e.to_string()),
        }
    });

    let p = Arc::clone(&platform);
    router.route(Method::Post, "/sql", move |req, _| {
        let (tenant, token) = creds(req);
        match p.sql(&tenant, &token, &req.body_text()) {
            Ok(result) => HttpResponse::json(result_json(&result)),
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    router.route(Method::Get, "/datasets", move |req, _| {
        let (tenant, token) = creds(req);
        match p
            .authorize(&tenant, &token, "DATASET_RUN")
            .and_then(|_| p.workspace(&tenant))
        {
            Ok(ws) => {
                let names = ws.mds.dataset_names();
                HttpResponse::json(serde_json::to_string(&names).unwrap_or_else(|_| "[]".into()))
            }
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    router.route(Method::Get, "/datasets/:name", move |req, params| {
        let (tenant, token) = creds(req);
        match p.execute_dataset(&tenant, &token, &params["name"]) {
            Ok(result) => HttpResponse::json(result_json(&result)),
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    router.route(Method::Post, "/mdx", move |req, _| {
        let (tenant, token) = creds(req);
        match p.mdx(&tenant, &token, &req.body_text()) {
            Ok(cells) => {
                let rows: Vec<serde_json::Value> = cells
                    .cells
                    .iter()
                    .map(|(coords, measures)| {
                        serde_json::json!({
                            "coords": coords.iter().map(|v| v.render()).collect::<Vec<_>>(),
                            "measures": measures.iter().map(|v| v.render()).collect::<Vec<_>>(),
                        })
                    })
                    .collect();
                HttpResponse::json(
                    serde_json::json!({
                        "axes": cells.axis_names,
                        "measures": cells.measure_names,
                        "cells": rows,
                    })
                    .to_string(),
                )
            }
            Err(e) => error_response(&e),
        }
    });

    let p = Arc::clone(&platform);
    router.route(Method::Get, "/admin/usage", move |req, _| {
        let (tenant, token) = creds(req);
        match p.authorize(&tenant, &token, "ADMIN_USERS") {
            Ok(_) => {
                let lines: Vec<serde_json::Value> = p
                    .admin
                    .usage_report()
                    .into_iter()
                    .map(|l| {
                        serde_json::json!({
                            "tenant": l.tenant,
                            "service": l.service,
                            "units": l.units,
                        })
                    })
                    .collect();
                HttpResponse::json(serde_json::Value::Array(lines).to_string())
            }
            Err(e) => error_response(&e),
        }
    });

    router
}

fn creds(req: &odbis_web::HttpRequest) -> (String, String) {
    (
        req.attributes.get("tenant").cloned().unwrap_or_default(),
        req.attributes.get("token").cloned().unwrap_or_default(),
    )
}

fn result_json(result: &odbis_sql::QueryResult) -> String {
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.render()).collect())
        .collect();
    serde_json::json!({
        "columns": result.columns,
        "rows": rows,
        "rowsAffected": result.rows_affected,
    })
    .to_string()
}

fn error_response(e: &crate::error::PlatformError) -> HttpResponse {
    use crate::error::PlatformError::*;
    match e {
        Security(_) => HttpResponse::forbidden(&e.to_string()),
        Tenancy(_) => HttpResponse::status(402).with_body(e.to_string()),
        _ => HttpResponse::bad_request(&e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbis_metadata::DataSet;
    use odbis_tenancy::SubscriptionPlan;
    use odbis_web::{http_get, http_request, HttpServer};

    fn serve() -> (HttpServer, Arc<OdbisPlatform>, String) {
        let platform = Arc::new(OdbisPlatform::new());
        platform
            .provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = platform.login("acme", "root", "pw").unwrap();
        let server = HttpServer::start(build_router(Arc::clone(&platform)), 2).unwrap();
        (server, platform, token)
    }

    #[test]
    fn health_is_public() {
        let (server, _p, _t) = serve();
        let (status, body) = http_get(&server.addr().to_string(), "/health").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"up\""));
    }

    #[test]
    fn login_over_http() {
        let (server, _p, _t) = serve();
        let (status, body) =
            odbis_web::http_post(&server.addr().to_string(), "/login", "acme root pw").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("token"));
        let (status, _) =
            odbis_web::http_post(&server.addr().to_string(), "/login", "acme root wrong").unwrap();
        assert_eq!(status, 401);
        let (status, _) =
            odbis_web::http_post(&server.addr().to_string(), "/login", "short").unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn protected_routes_require_headers() {
        let (server, _p, token) = serve();
        let addr = server.addr().to_string();
        let (status, _) = http_get(&addr, "/datasets").unwrap();
        assert_eq!(status, 401);
        let (status, body, _) = with_auth(&addr, "GET", "/datasets", &token, "");
        assert_eq!(status, 200);
        assert_eq!(body, "[]");
    }

    fn with_auth(
        addr: &str,
        method: &str,
        path: &str,
        token: &str,
        body: &str,
    ) -> (u16, String, ()) {
        let (status, _, resp) = http_request(
            addr,
            method,
            path,
            &[("x-tenant", "acme"), ("x-token", token)],
            body.as_bytes(),
        )
        .unwrap();
        (status, resp, ())
    }

    #[test]
    fn sql_and_dataset_round_trip_over_http() {
        let (server, platform, token) = serve();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(
            &addr,
            "POST",
            "/sql",
            &token,
            "CREATE TABLE kpis (name TEXT, v INT)",
        );
        assert_eq!(status, 200);
        let (status, _, _) = with_auth(
            &addr,
            "POST",
            "/sql",
            &token,
            "INSERT INTO kpis VALUES ('churn', 7)",
        );
        assert_eq!(status, 200);
        platform
            .define_dataset(
                "acme",
                &token,
                DataSet {
                    name: "kpis".into(),
                    source: "warehouse".into(),
                    sql: "SELECT name, v FROM kpis".into(),
                    description: String::new(),
                },
            )
            .unwrap();
        let (status, body, _) = with_auth(&addr, "GET", "/datasets/kpis", &token, "");
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["rows"][0][0], "churn");
        // missing dataset → 400
        let (status, _, _) = with_auth(&addr, "GET", "/datasets/ghost", &token, "");
        assert_eq!(status, 400);
        // usage visible to the admin
        let (status, body, _) = with_auth(&addr, "GET", "/admin/usage", &token, "");
        assert_eq!(status, 200);
        assert!(body.contains("MDS"));
    }

    #[test]
    fn forged_token_is_forbidden() {
        let (server, _p, _token) = serve();
        let addr = server.addr().to_string();
        let (status, _, _) = with_auth(&addr, "POST", "/sql", "forged", "SELECT 1");
        assert_eq!(status, 403);
    }
}
