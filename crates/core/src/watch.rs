//! Push-delivery change tracking: the versioned table-watch hub behind
//! `GET /api/v1/datasets/:name/watch`.
//!
//! Every committed warehouse mutation bumps a per-workspace monotonic
//! version and records it against the tables it touched. A watcher
//! subscribes with the set of tables its dataset reads plus the version
//! cursor from its previous poll: if any of those tables already moved
//! past the cursor the subscription completes immediately (a missed
//! update is replayed, never skipped), otherwise it parks until a bump
//! intersects its table set or its timeout lapses. Completion is a
//! callback, so on the reactor backend a parked watcher costs a file
//! descriptor and a heap entry here — no worker thread.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// How a watch subscription ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchOutcome {
    /// `true` when a watched table changed past the subscriber's cursor;
    /// `false` when the timeout lapsed first.
    pub changed: bool,
    /// The cursor to poll from next: the version of the newest change on
    /// a changed subscription, or the subscriber's own cursor echoed back
    /// on a timeout.
    pub cursor: u64,
}

/// A parked subscription completion.
type Completer = Box<dyn FnOnce(WatchOutcome) + Send>;

struct Waiter {
    tables: Vec<String>,
    cursor: u64,
    deadline: Instant,
    complete: Completer,
}

#[derive(Default)]
struct HubState {
    /// Last version that touched each (lower-cased) table.
    tables: HashMap<String, u64>,
    waiters: Vec<Waiter>,
    /// Whether the timeout sweeper thread is alive; it exits when the
    /// waiter list drains so an idle hub costs nothing.
    sweeper_running: bool,
}

/// The per-workspace watch hub. See the module docs for the protocol.
pub struct WatchHub {
    version: AtomicU64,
    state: Mutex<HubState>,
}

impl Default for WatchHub {
    fn default() -> Self {
        WatchHub {
            version: AtomicU64::new(0),
            state: Mutex::new(HubState::default()),
        }
    }
}

impl WatchHub {
    /// A fresh hub at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current global version — what a client should use as its first
    /// cursor to watch for changes strictly after "now".
    pub fn cursor(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The newest version that touched any of `tables` (0 if none has).
    pub fn version_for(&self, tables: &[String]) -> u64 {
        let state = self.state.lock();
        tables
            .iter()
            .filter_map(|t| state.tables.get(&t.to_ascii_lowercase()).copied())
            .max()
            .unwrap_or(0)
    }

    /// Record a committed change to `tables`, waking every parked watcher
    /// whose table set intersects. Returns the new version.
    pub fn bump<S: AsRef<str>>(&self, tables: &[S]) -> u64 {
        let mut fired: Vec<(Completer, WatchOutcome)> = Vec::new();
        let version = {
            let mut state = self.state.lock();
            let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
            let touched: Vec<String> = tables
                .iter()
                .map(|t| t.as_ref().to_ascii_lowercase())
                .collect();
            for t in &touched {
                state.tables.insert(t.clone(), version);
            }
            let mut kept = Vec::with_capacity(state.waiters.len());
            for w in state.waiters.drain(..) {
                if w.tables.iter().any(|t| touched.contains(t)) {
                    fired.push((
                        w.complete,
                        WatchOutcome {
                            changed: true,
                            cursor: version,
                        },
                    ));
                } else {
                    kept.push(w);
                }
            }
            state.waiters = kept;
            version
        };
        // completions run outside the hub lock: a completer may serialize
        // a response or write to the reactor wake pipe
        for (complete, outcome) in fired {
            complete(outcome);
        }
        version
    }

    /// Subscribe to changes on `tables` after `cursor`. If one already
    /// happened the completion fires immediately on this thread;
    /// otherwise it parks until a matching [`WatchHub::bump`] or until
    /// `timeout`, whichever comes first (on timeout the subscriber's own
    /// cursor is echoed back with `changed: false`).
    ///
    /// A cursor from *ahead* of the hub's current version — a client that
    /// outlived a node restart, or kept polling across a migration onto a
    /// node whose hub counter restarted — can never be satisfied by a
    /// future bump and used to park until timeout as if it were
    /// up-to-date. It now completes immediately with `changed: true` and
    /// the hub's authoritative cursor, so the client re-reads its dataset
    /// and resynchronizes instead of silently missing every update.
    pub fn subscribe(
        self: &Arc<Self>,
        tables: Vec<String>,
        cursor: u64,
        timeout: Duration,
        complete: Completer,
    ) {
        let current = self.version.load(Ordering::Acquire);
        if cursor > current {
            complete(WatchOutcome {
                changed: true,
                cursor: current,
            });
            return;
        }
        let tables: Vec<String> = tables.iter().map(|t| t.to_ascii_lowercase()).collect();
        let newest = {
            let mut state = self.state.lock();
            let newest = tables
                .iter()
                .filter_map(|t| state.tables.get(t).copied())
                .max()
                .unwrap_or(0);
            if newest <= cursor {
                state.waiters.push(Waiter {
                    tables,
                    cursor,
                    deadline: Instant::now() + timeout,
                    complete,
                });
                if !state.sweeper_running {
                    state.sweeper_running = true;
                    let hub = Arc::clone(self);
                    std::thread::spawn(move || hub.sweep());
                }
                return;
            }
            newest
        };
        complete(WatchOutcome {
            changed: true,
            cursor: newest,
        });
    }

    /// Timeout sweeper: wakes every 25 ms, completes expired waiters with
    /// their cursor echoed, and exits once the hub is idle.
    fn sweep(self: Arc<Self>) {
        loop {
            std::thread::sleep(Duration::from_millis(25));
            let mut expired: Vec<(Completer, WatchOutcome)> = Vec::new();
            {
                let mut state = self.state.lock();
                let now = Instant::now();
                let mut kept = Vec::with_capacity(state.waiters.len());
                for w in state.waiters.drain(..) {
                    if now >= w.deadline {
                        expired.push((
                            w.complete,
                            WatchOutcome {
                                changed: false,
                                cursor: w.cursor,
                            },
                        ));
                    } else {
                        kept.push(w);
                    }
                }
                state.waiters = kept;
                if state.waiters.is_empty() {
                    state.sweeper_running = false;
                    for (complete, outcome) in expired {
                        complete(outcome);
                    }
                    return;
                }
            }
            for (complete, outcome) in expired {
                complete(outcome);
            }
        }
    }

    /// Number of currently parked watchers (for tests and metrics).
    pub fn parked(&self) -> usize {
        self.state.lock().waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn completer(tx: mpsc::Sender<WatchOutcome>) -> Completer {
        Box::new(move |o| {
            let _ = tx.send(o);
        })
    }

    #[test]
    fn bump_wakes_only_intersecting_watchers() {
        let hub = Arc::new(WatchHub::new());
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        hub.subscribe(
            vec!["orders".into()],
            0,
            Duration::from_secs(5),
            completer(tx_a),
        );
        hub.subscribe(
            vec!["customers".into()],
            0,
            Duration::from_secs(5),
            completer(tx_b),
        );
        assert_eq!(hub.parked(), 2);
        let v = hub.bump(&["ORDERS"]);
        let woke = rx_a.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(
            woke,
            WatchOutcome {
                changed: true,
                cursor: v
            }
        );
        // the customers watcher is still parked
        assert!(rx_b.try_recv().is_err());
        assert_eq!(hub.parked(), 1);
    }

    #[test]
    fn missed_update_replays_immediately_from_the_cursor() {
        let hub = Arc::new(WatchHub::new());
        let v = hub.bump(&["orders"]);
        // a subscriber whose cursor predates the bump completes at once
        let (tx, rx) = mpsc::channel();
        hub.subscribe(
            vec!["orders".into()],
            v - 1,
            Duration::from_secs(5),
            completer(tx),
        );
        let o = rx.try_recv().expect("must complete synchronously");
        assert_eq!(
            o,
            WatchOutcome {
                changed: true,
                cursor: v
            }
        );
        // at the current cursor there is nothing to replay: it parks
        let (tx, _rx) = mpsc::channel();
        hub.subscribe(
            vec!["orders".into()],
            v,
            Duration::from_millis(40),
            completer(tx),
        );
        assert_eq!(hub.parked(), 1);
    }

    /// A cursor ahead of the hub (restart / migration reset the counter)
    /// must answer immediately with the authoritative cursor instead of
    /// parking until timeout.
    #[test]
    fn future_cursor_resyncs_immediately() {
        let hub = Arc::new(WatchHub::new());
        let v = hub.bump(&["orders"]); // hub is now at version 1
        let (tx, rx) = mpsc::channel();
        hub.subscribe(
            vec!["orders".into()],
            v + 1_000, // a cursor from a previous life of the counter
            Duration::from_secs(60),
            completer(tx),
        );
        let o = rx.try_recv().expect("must complete synchronously");
        assert_eq!(o, WatchOutcome { changed: true, cursor: v });
        assert_eq!(hub.parked(), 0);
        // a fresh hub at version 0 answers a stale-high cursor with 0
        let hub = Arc::new(WatchHub::new());
        let (tx, rx) = mpsc::channel();
        hub.subscribe(vec!["t".into()], 7, Duration::from_secs(60), completer(tx));
        let o = rx.try_recv().expect("must complete synchronously");
        assert_eq!(o, WatchOutcome { changed: true, cursor: 0 });
    }

    #[test]
    fn timeout_echoes_the_cursor_back() {
        let hub = Arc::new(WatchHub::new());
        let mut v = 0;
        for _ in 0..7 {
            v = hub.bump(&["other"]);
        }
        assert_eq!(v, 7);
        let (tx, rx) = mpsc::channel();
        hub.subscribe(
            vec!["orders".into()],
            7,
            Duration::from_millis(30),
            completer(tx),
        );
        let o = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(
            o,
            WatchOutcome {
                changed: false,
                cursor: 7
            }
        );
        assert_eq!(hub.parked(), 0);
    }
}
