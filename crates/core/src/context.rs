//! The application context: a typed service registry — the reproduction's
//! substitute for the Spring container that provides ODBIS's
//! "out-of-the-box integration ... which allows flexible configuration and
//! personalization" (§1).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

type ServiceKey = (TypeId, Option<String>);
type ServiceMap = HashMap<ServiceKey, Arc<dyn Any + Send + Sync>>;

/// A typed service registry: singletons keyed by type (optionally by
/// qualifier name), retrievable from any layer.
#[derive(Default)]
pub struct ApplicationContext {
    services: RwLock<ServiceMap>,
}

impl ApplicationContext {
    /// Empty context.
    pub fn new() -> Self {
        ApplicationContext::default()
    }

    /// Register the singleton for type `T`.
    pub fn register<T: Any + Send + Sync>(&self, service: Arc<T>) {
        self.services
            .write()
            .insert((TypeId::of::<T>(), None), service);
    }

    /// Register a named ("qualified") instance of type `T`.
    pub fn register_named<T: Any + Send + Sync>(&self, name: &str, service: Arc<T>) {
        self.services
            .write()
            .insert((TypeId::of::<T>(), Some(name.to_string())), service);
    }

    /// Resolve the singleton for type `T`.
    pub fn get<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.services
            .read()
            .get(&(TypeId::of::<T>(), None))
            .cloned()
            .and_then(|any| any.downcast::<T>().ok())
    }

    /// Resolve a named instance of type `T`.
    pub fn get_named<T: Any + Send + Sync>(&self, name: &str) -> Option<Arc<T>> {
        self.services
            .read()
            .get(&(TypeId::of::<T>(), Some(name.to_string())))
            .cloned()
            .and_then(|any| any.downcast::<T>().ok())
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.services.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Greeter(String);

    #[test]
    fn register_and_resolve_by_type() {
        let ctx = ApplicationContext::new();
        ctx.register(Arc::new(Greeter("hello".into())));
        let g = ctx.get::<Greeter>().unwrap();
        assert_eq!(g.0, "hello");
        assert!(ctx.get::<String>().is_none());
        assert_eq!(ctx.len(), 1);
    }

    #[test]
    fn named_qualifiers_disambiguate() {
        let ctx = ApplicationContext::new();
        ctx.register_named("primary", Arc::new(Greeter("a".into())));
        ctx.register_named("backup", Arc::new(Greeter("b".into())));
        assert_eq!(ctx.get_named::<Greeter>("primary").unwrap().0, "a");
        assert_eq!(ctx.get_named::<Greeter>("backup").unwrap().0, "b");
        assert!(ctx.get::<Greeter>().is_none()); // unnamed slot empty
        assert!(ctx.get_named::<Greeter>("nope").is_none());
    }

    #[test]
    fn re_registration_replaces() {
        let ctx = ApplicationContext::new();
        ctx.register(Arc::new(Greeter("v1".into())));
        ctx.register(Arc::new(Greeter("v2".into())));
        assert_eq!(ctx.get::<Greeter>().unwrap().0, "v2");
        assert_eq!(ctx.len(), 1);
    }
}
