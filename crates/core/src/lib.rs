//! # odbis
//!
//! The ODBIS platform façade — the five-layer SaaS architecture of the
//! paper's Figure 1, wired end to end:
//!
//! 1. **technical resources**: the embedded storage engine and SQL engine
//!    ([`odbis_storage`], [`odbis_sql`]), the ESB ([`odbis_esb`]) and the
//!    rules engine ([`odbis_rules`]);
//! 2. **DW design & management**: MDDWS projects ([`odbis_mddws`]) living
//!    inside each tenant workspace;
//! 3. **administration & configuration**: [`OdbisPlatform::admin`]
//!    ([`odbis_admin`]) over the SaaS kernel ([`odbis_tenancy`],
//!    [`odbis_security`]);
//! 4. **core BI services**: MDS, IS, AS, RS and IDS per tenant
//!    ([`TenantWorkspace`]);
//! 5. **end-user access**: the HTTP API ([`build_router`]) served by
//!    [`odbis_web`].
//!
//! ```
//! use odbis::OdbisPlatform;
//! use odbis_tenancy::SubscriptionPlan;
//!
//! let platform = OdbisPlatform::new();
//! platform.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw").unwrap();
//! let token = platform.login("acme", "root", "pw").unwrap();
//! platform.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
//! let r = platform.sql("acme", &token, "SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(r.rows[0][0], odbis_storage::Value::Int(0));
//! ```

#![warn(missing_docs)]

mod cluster;
mod context;
mod error;
mod platform;
mod watch;
mod web_api;

pub use cluster::{Cluster, ClusterMap, ClusterNode, ClusterRoute, MigrationReport};
pub use context::ApplicationContext;
pub use error::{PlatformError, PlatformResult};
pub use platform::{DeltaPublication, OdbisPlatform, TenantWorkspace, DELTA_CHANNEL};
pub use watch::{WatchHub, WatchOutcome};
pub use web_api::{
    build_router, serve_platform, API_PREFIX, DEFAULT_PAGE_LIMIT, MAX_PAGE_LIMIT,
    MAX_WATCH_TIMEOUT_MS,
};
