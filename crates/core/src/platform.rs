//! The ODBIS platform façade: the five-layer SaaS architecture of
//! Figure 1, wired and tenant-aware.
//!
//! Every service call goes through the same gate: the tenant must be
//! active, the session must resolve, the principal must hold the
//! operation's authority — and the call is metered for pay-as-you-go
//! billing. That gate *is* the platform's SaaS contract.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use odbis_admin::{
    AdminService, CheckpointOutcome, DurabilityError, DurabilityHook, DurabilityStatus,
};
use odbis_delivery::{Channel, DeliveryService, ReportPayload};
use odbis_esb::{Endpoint, Message, MessageBus};
use odbis_etl::{EtlJob, JobReport, JobRunner, JobScheduler};
use odbis_mddws::DwProject;
use odbis_metadata::{DataSet, DataSource, MetadataService};
use odbis_olap::{
    AggregateCache, CellSet, CubeDef, CubeEngine, LevelRef, MaterializedAggregate, TableDelta,
};
use odbis_reporting::{Dashboard, RenderedReport, ReportTemplate, ReportingService};
use odbis_sql::{Engine, QueryResult};
use odbis_storage::{
    Database, DbResult, DurableStore, FsyncPolicy, SnapshotFormat, Wal, WalRecord, WalSink,
};
use odbis_telemetry::Telemetry;
use odbis_tenancy::{ServiceKind, SubscriptionPlan, TenantRegistry, UsageMeter};
use parking_lot::{Mutex, RwLock};

use crate::cluster::{Cluster, ClusterMap, ClusterNode, ClusterRoute};
use crate::context::ApplicationContext;
use crate::error::{PlatformError, PlatformResult};
use crate::watch::WatchHub;

/// The ESB channel warehouse deltas are published on, one per tenant bus.
pub const DELTA_CHANNEL: &str = "warehouse.delta";

/// Per-tenant workspace: the tenant's logical slice of the shared backend
/// — its warehouse, metadata, cubes, jobs and DW projects. Physically the
/// process is shared; logically each customer is unique (ODBIS §2).
pub struct TenantWorkspace {
    /// The tenant's warehouse database.
    pub warehouse: Arc<Database>,
    /// The tenant's Meta-Data Service.
    pub mds: Arc<MetadataService>,
    /// The tenant's Reporting Service.
    pub reporting: Arc<ReportingService>,
    /// The tenant's ETL runner.
    pub etl: Arc<JobRunner>,
    /// The tenant's job scheduler.
    pub scheduler: Arc<JobScheduler>,
    /// The tenant's cube engine.
    pub cubes: Arc<CubeEngine>,
    /// Registered cube definitions.
    pub cube_defs: RwLock<HashMap<String, CubeDef>>,
    /// Materialized-aggregate cache consulted by MDX queries when the
    /// `olap.preaggregation` setting is on. Maintained incrementally by
    /// delta events on [`TenantWorkspace::bus`]; `Arc` so the bus handler
    /// (registered before the workspace exists) can hold it too.
    pub agg_cache: Arc<RwLock<AggregateCache>>,
    /// The tenant's delivery service.
    pub delivery: Arc<DeliveryService>,
    /// The tenant's service bus: delivery channels plus the
    /// [`DELTA_CHANNEL`] the warehouse delta events ride.
    pub bus: Arc<MessageBus>,
    /// Journaled-but-unpublished warehouse mutations, drained by
    /// [`TenantWorkspace::publish_deltas`]. Records land here from the
    /// WAL sink, i.e. only once the write is acknowledged.
    pub deltas: Arc<DeltaBuffer>,
    /// The workspace watch hub long-poll subscriptions park on.
    pub watch: Arc<WatchHub>,
    /// Monotonic sequence stamped on every published delta event — the
    /// idempotency key redelivered duplicates are detected by.
    delta_seq: AtomicU64,
    /// Serializes [`TenantWorkspace::publish_deltas`] so sequence
    /// assignment and bus publication cannot interleave across threads.
    publish_lock: Mutex<()>,
    /// MDDWS projects by name.
    pub projects: Mutex<HashMap<String, DwProject>>,
    /// The tenant's durable store (snapshot + WAL), when the platform was
    /// booted with a data directory. `None` for in-memory platforms.
    pub durable: Option<Arc<DurableStore>>,
}

/// A [`WalSink`] stage that buffers every journaled mutation for delta
/// publication. The sink runs under the database's catalog lock, so it
/// must only buffer — publication happens later, outside that lock, in
/// [`TenantWorkspace::publish_deltas`]. For in-memory workspaces this is
/// the whole sink; durable workspaces chain it behind the WAL append so
/// only acknowledged writes ever become delta events.
#[derive(Default)]
pub struct DeltaBuffer {
    records: Mutex<Vec<WalRecord>>,
}

impl DeltaBuffer {
    /// Take everything buffered so far.
    pub fn drain(&self) -> Vec<WalRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Number of buffered, not-yet-published records.
    pub fn pending(&self) -> usize {
        self.records.lock().len()
    }
}

impl WalSink for DeltaBuffer {
    fn append(&self, record: &WalRecord) -> DbResult<()> {
        self.records.lock().push(record.clone());
        Ok(())
    }

    fn append_batch(&self, records: &[WalRecord]) -> DbResult<()> {
        self.records.lock().extend_from_slice(records);
        Ok(())
    }
}

/// Outcome of one delta publication pass (see
/// [`TenantWorkspace::publish_deltas`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaPublication {
    /// Delta events published on the workspace bus.
    pub published: u64,
    /// Whether a lost delivery was detected and compensated for with a
    /// full rebuild of the aggregate cache.
    pub recovered: bool,
    /// The watch-hub version after this publication; `None` when no
    /// table changed.
    pub version: Option<u64>,
}

/// The scope of one journaled mutation as seen by the maintenance layer:
/// which table changed, and whether the change is row-additive (foldable),
/// arbitrary (rebuild), or structural removal. Index maintenance does not
/// change query results, so index records publish nothing.
fn record_to_delta(record: &WalRecord) -> Option<TableDelta> {
    match record {
        WalRecord::Insert { table, row } => Some(TableDelta::Insert {
            table: table.clone(),
            rows: vec![row.clone()],
        }),
        WalRecord::InsertMany { table, rows } => Some(TableDelta::Insert {
            table: table.clone(),
            rows: rows.clone(),
        }),
        WalRecord::Update { table, .. }
        | WalRecord::Delete { table, .. }
        | WalRecord::Undelete { table, .. }
        | WalRecord::Truncate { table }
        | WalRecord::CreateTable { name: table, .. } => Some(TableDelta::Mutate {
            table: table.clone(),
        }),
        WalRecord::DropTable { name } => Some(TableDelta::Drop {
            table: name.clone(),
        }),
        WalRecord::CreateIndex { .. } | WalRecord::DropIndex { .. } => None,
    }
}

/// The WAL sink the platform attaches to each durable warehouse: appends
/// go to the tenant's log, and every appended frame is metered into the
/// telemetry spine (`odbis_wal_appends_total` / `odbis_wal_bytes_total`).
struct MeteredWal {
    tenant: String,
    wal: Arc<Wal>,
    telemetry: Arc<Telemetry>,
    /// Acked records are buffered here for delta publication. Appending
    /// after the WAL write is what pins the ISSUE's guarantee: a delta
    /// event can only describe a write the log accepted — an unacked
    /// write never reaches subscribers or the aggregate cache.
    deltas: Arc<DeltaBuffer>,
}

impl WalSink for MeteredWal {
    fn append(&self, record: &WalRecord) -> DbResult<()> {
        let bytes = self.wal.append_record(record)?;
        self.telemetry.record_wal_append(&self.tenant, bytes);
        self.deltas.append(record)
    }

    fn append_batch(&self, records: &[WalRecord]) -> DbResult<()> {
        let bytes = self.wal.append_batch(records)?;
        self.telemetry
            .record_wal_batch(&self.tenant, records.len() as u64, bytes);
        self.deltas.append_batch(records)
    }
}

impl TenantWorkspace {
    fn new(tenant_id: &str) -> PlatformResult<Self> {
        let warehouse = Arc::new(Database::new());
        let deltas = Arc::new(DeltaBuffer::default());
        // no WAL for an in-memory tenant: the delta buffer is the sink,
        // and every applied mutation counts as acknowledged
        warehouse.set_wal_sink(Arc::clone(&deltas) as Arc<dyn WalSink>);
        Self::assemble(tenant_id, warehouse, None, deltas)
    }

    /// Open (or recover) a durable workspace rooted at `dir`: load the
    /// snapshot, replay the WAL, and journal every future warehouse
    /// mutation through a telemetry-metered sink. Re-provisioning a tenant
    /// over an existing directory recovers exactly the committed state.
    /// (WAL replay happens before the sink is attached, so recovery never
    /// republishes historical deltas — aggregates are built fresh.)
    fn durable(
        tenant_id: &str,
        dir: PathBuf,
        policy: FsyncPolicy,
        format: SnapshotFormat,
        telemetry: Arc<Telemetry>,
    ) -> PlatformResult<Self> {
        let (db, store) = DurableStore::open_with_format(dir, policy, format)?;
        let warehouse = Arc::new(db);
        let store = Arc::new(store);
        let deltas = Arc::new(DeltaBuffer::default());
        warehouse.set_wal_sink(Arc::new(MeteredWal {
            tenant: tenant_id.to_string(),
            wal: Arc::clone(store.wal()),
            telemetry,
            deltas: Arc::clone(&deltas),
        }));
        Self::assemble(tenant_id, warehouse, Some(store), deltas)
    }

    fn assemble(
        tenant_id: &str,
        warehouse: Arc<Database>,
        durable: Option<Arc<DurableStore>>,
        deltas: Arc<DeltaBuffer>,
    ) -> PlatformResult<Self> {
        let mds = Arc::new(MetadataService::new());
        mds.register_source(
            DataSource {
                name: "warehouse".into(),
                url: format!("odbis://{tenant_id}/warehouse"),
                user: "platform".into(),
                password: String::new(),
                driver: "odbis-storage".into(),
            },
            Arc::clone(&warehouse),
        )?;
        let reporting = Arc::new(ReportingService::new(Arc::clone(&mds)));
        let etl = Arc::new(JobRunner::new(Arc::clone(&warehouse)));
        let scheduler = Arc::new(JobScheduler::new(Arc::clone(&etl)));
        let cubes = Arc::new(CubeEngine::new(Arc::clone(&warehouse)));
        let bus = Arc::new(MessageBus::new());
        let agg_cache = Arc::new(RwLock::new(AggregateCache::new()));
        // The maintenance subscriber: decode the journaled record, fold it
        // into every covered aggregate (or mark for rebuild). The bus runs
        // service activators under its own lock, so the handler takes only
        // the agg-cache lock — MDX readers and the publish path never hold
        // both in the opposite order.
        bus.create_channel(DELTA_CHANNEL)
            .map_err(|e| PlatformError::Internal(format!("esb: {e}")))?;
        let cache = Arc::clone(&agg_cache);
        let engine = Arc::clone(&cubes);
        bus.subscribe(
            DELTA_CHANNEL,
            Endpoint::ServiceActivator(Box::new(move |msg: &Message| {
                let seq: u64 = msg
                    .header("seq")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "delta event missing seq header".to_string())?;
                let text = msg
                    .payload
                    .as_text()
                    .ok_or_else(|| "delta payload is not text".to_string())?;
                let json = serde_json::from_str::<serde_json::Value>(text)
                    .map_err(|e| format!("delta payload is not JSON: {e}"))?;
                let record = odbis_storage::jsoncodec::record_from_json(&json)
                    .map_err(|e| format!("delta payload is not a WAL record: {e}"))?;
                if let Some(delta) = record_to_delta(&record) {
                    cache.write().apply_delta(&engine, seq, &delta);
                }
                Ok(())
            })),
        )
        .map_err(|e| PlatformError::Internal(format!("esb: {e}")))?;
        let delivery = Arc::new(DeliveryService::new(Arc::clone(&bus))?);
        Ok(TenantWorkspace {
            warehouse,
            mds,
            reporting,
            etl,
            scheduler,
            cubes,
            cube_defs: RwLock::new(HashMap::new()),
            agg_cache,
            delivery,
            bus,
            deltas,
            watch: Arc::new(WatchHub::new()),
            delta_seq: AtomicU64::new(0),
            publish_lock: Mutex::new(()),
            projects: Mutex::new(HashMap::new()),
            durable,
        })
    }

    /// Drain the journaled-delta buffer and publish each record as a
    /// sequenced event on [`DELTA_CHANNEL`], pumping the bus so the
    /// aggregate-maintenance subscriber folds them in before this call
    /// returns; then bump the watch hub for every touched table.
    ///
    /// Loss-safety: an event the bus dead-letters (after redelivery) never
    /// reached the cache, which the sequence check detects — the cache is
    /// rebuilt wholesale and its sequence resynced, so a dropped delta can
    /// degrade freshness cost but never correctness. Duplicate deliveries
    /// are skipped inside the cache by the same sequence numbers.
    pub fn publish_deltas(&self) -> DeltaPublication {
        let _guard = self.publish_lock.lock();
        let records = self.deltas.drain();
        let mut outcome = DeltaPublication::default();
        if records.is_empty() {
            return outcome;
        }
        let mut touched: Vec<String> = Vec::new();
        let mut max_seq = 0u64;
        for record in &records {
            let Some(delta) = record_to_delta(record) else {
                continue; // index maintenance: no visible data change
            };
            let table = delta.table().to_string();
            if !touched.contains(&table) {
                touched.push(table);
            }
            let seq = self.delta_seq.fetch_add(1, Ordering::Relaxed) + 1;
            max_seq = seq;
            let payload = odbis_storage::jsoncodec::record_to_json(record).to_string();
            let msg = Message::json(payload)
                .with_header("seq", seq.to_string())
                .with_header("table", delta.table());
            if self.bus.send(DELTA_CHANNEL, msg).is_ok() {
                outcome.published += 1;
            }
        }
        let _ = self.bus.pump();
        if outcome.published > 0 {
            let mut cache = self.agg_cache.write();
            if cache.last_seq() < max_seq {
                // the tail event (at least) was dropped: the subscriber
                // never saw it, so no gap-detection fired inside the cache
                cache.mark_all_stale();
                cache.rebuild_stale(&self.cubes);
                cache.resync(max_seq);
                outcome.recovered = true;
            }
        }
        if !touched.is_empty() {
            outcome.version = Some(self.watch.bump(&touched));
        }
        outcome
    }
}

/// The [`DurabilityHook`] the platform registers with its admin service:
/// resolves tenants to their durable stores and meters checkpoints.
struct TenantDurability {
    workspaces: Arc<RwLock<HashMap<String, Arc<TenantWorkspace>>>>,
    telemetry: Arc<Telemetry>,
}

impl TenantDurability {
    fn store(
        &self,
        tenant: &str,
    ) -> Result<(Arc<TenantWorkspace>, Arc<DurableStore>), DurabilityError> {
        let ws = self
            .workspaces
            .read()
            .get(tenant)
            .cloned()
            .ok_or_else(|| DurabilityError::UnknownTenant(tenant.to_string()))?;
        let store = ws
            .durable
            .clone()
            .ok_or_else(|| DurabilityError::UnknownTenant(tenant.to_string()))?;
        Ok((ws, store))
    }
}

impl DurabilityHook for TenantDurability {
    fn tenants(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .workspaces
            .read()
            .iter()
            .filter(|(_, ws)| ws.durable.is_some())
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }

    fn status(&self, tenant: &str) -> Result<DurabilityStatus, DurabilityError> {
        let (_, store) = self.store(tenant)?;
        let stats = store.wal().stats();
        Ok(DurabilityStatus {
            tenant: tenant.to_string(),
            fsync: store.wal().policy().as_str().to_string(),
            format: store.format().as_str().to_string(),
            wal_appends: stats.appends,
            wal_bytes: stats.bytes,
            wal_file_len: stats.file_len,
            next_lsn: stats.next_lsn,
        })
    }

    fn checkpoint(&self, tenant: &str) -> Result<CheckpointOutcome, DurabilityError> {
        let (ws, store) = self.store(tenant)?;
        // A checkpoint that hits a transient I/O fault (fsync hiccup, disk
        // stall, injected failpoint) is retried in place with a short
        // backoff before the error is surfaced; only I/O errors are
        // transient — logic errors fail immediately.
        const ATTEMPTS: u32 = 3;
        const BACKOFF_MS: u64 = 5;
        let mut last_io = String::new();
        for attempt in 1..=ATTEMPTS {
            match store.checkpoint(&ws.warehouse) {
                Ok(report) => {
                    self.telemetry.record_checkpoint(tenant, report.micros);
                    return Ok(CheckpointOutcome {
                        tenant: tenant.to_string(),
                        tables: report.tables,
                        tables_flushed: report.tables_flushed,
                        wal_bytes_folded: report.wal_bytes_folded,
                        micros: report.micros,
                    });
                }
                Err(odbis_storage::DbError::Io(m)) => {
                    last_io = m;
                    if attempt < ATTEMPTS {
                        odbis_chaos::count_retry("checkpoint");
                        std::thread::sleep(std::time::Duration::from_millis(
                            BACKOFF_MS << (attempt - 1),
                        ));
                    }
                }
                Err(e) => return Err(DurabilityError::Storage(e.to_string())),
            }
        }
        Err(DurabilityError::Retryable(format!(
            "checkpoint failed after {ATTEMPTS} attempts: {last_io}"
        )))
    }
}

/// The platform: administration layer, SaaS kernel, ESB, and one
/// [`TenantWorkspace`] per tenant.
pub struct OdbisPlatform {
    /// Administration & configuration layer.
    pub admin: AdminService,
    /// The platform-wide service bus.
    pub bus: Arc<MessageBus>,
    /// The Spring-like application context (service registry).
    pub context: ApplicationContext,
    /// Per-tenant HTTP admission control, resolving `limits.rate`,
    /// `limits.burst` and `limits.queue_depth` from the platform config
    /// (tenant → platform → `ODBIS_LIMITS_*` defaults) on every request.
    pub admission: Arc<odbis_web::AdmissionControl>,
    sql: Engine,
    sql_rows: Engine,
    workspaces: Arc<RwLock<HashMap<String, Arc<TenantWorkspace>>>>,
    data_dir: Option<PathBuf>,
    /// Cluster membership, `None` for a standalone node. Set once by
    /// [`OdbisPlatform::join_cluster`].
    cluster: RwLock<Option<ClusterNode>>,
    /// Per-tenant migration write fences. Every gated call holds the
    /// tenant's fence for reading (recursively — nested gated calls on
    /// one thread must not self-deadlock behind a waiting writer);
    /// migration cutover holds it for writing, which drains in-flight
    /// calls and blocks new ones for the duration of the flip.
    fences: Mutex<HashMap<String, Arc<RwLock<()>>>>,
}

impl Default for OdbisPlatform {
    fn default() -> Self {
        OdbisPlatform::new()
    }
}

impl OdbisPlatform {
    /// Boot an empty in-memory platform (no durability; tests, demos).
    pub fn new() -> Self {
        Self::build(None)
    }

    /// Boot a durable platform rooted at `dir`: every tenant provisioned
    /// afterwards gets a write-ahead log plus snapshot under
    /// `dir/<tenant>/`, and re-provisioning over an existing directory
    /// recovers the committed state.
    pub fn with_data_dir(dir: impl Into<PathBuf>) -> Self {
        Self::build(Some(dir.into()))
    }

    fn build(data_dir: Option<PathBuf>) -> Self {
        let registry = Arc::new(TenantRegistry::new());
        let meter = Arc::new(UsageMeter::new());
        let bus = Arc::new(MessageBus::new());
        let context = ApplicationContext::new();
        context.register(Arc::clone(&registry));
        context.register(Arc::clone(&meter));
        context.register(Arc::clone(&bus));
        let admin = AdminService::new(registry, meter);
        let config = Arc::clone(&admin.config);
        let admission = Arc::new(odbis_web::AdmissionControl::new(move |tenant| {
            odbis_web::TenantLimits {
                rate: config.get_int(tenant, "limits.rate").unwrap_or(0).max(0) as f64,
                burst: config.get_int(tenant, "limits.burst").unwrap_or(0).max(0) as f64,
                queue_depth: config
                    .get_int(tenant, "limits.queue_depth")
                    .unwrap_or(64)
                    .max(0) as u64,
            }
        }));
        let workspaces = Arc::new(RwLock::new(HashMap::new()));
        if data_dir.is_some() {
            admin.durability.register(Arc::new(TenantDurability {
                workspaces: Arc::clone(&workspaces),
                telemetry: Arc::clone(&admin.telemetry),
            }));
        }
        OdbisPlatform {
            admin,
            bus,
            context,
            admission,
            sql: Engine::new(),
            sql_rows: Engine::with_row_execution(),
            workspaces,
            data_dir,
            cluster: RwLock::new(None),
            fences: Mutex::new(HashMap::new()),
        }
    }

    // ---- clustering ----------------------------------------------------------

    /// Join an in-process cluster as `node_id`: requests for tenants this
    /// node does not own will be proxied (or redirected) to their owner
    /// by the web layer, and this node becomes a valid migration
    /// source/target for the fabric.
    pub fn join_cluster(&self, node_id: &str, map: Arc<ClusterMap>, fabric: std::sync::Weak<Cluster>) {
        *self.cluster.write() = Some(ClusterNode {
            node_id: node_id.to_string(),
            map,
            fabric,
        });
    }

    /// This node's cluster identity and map, `None` when standalone.
    pub fn cluster_node(&self) -> Option<(String, Arc<ClusterMap>)> {
        self.cluster
            .read()
            .as_ref()
            .map(|n| (n.node_id.clone(), Arc::clone(&n.map)))
    }

    /// The cluster fabric this node belongs to, when it is clustered and
    /// the fabric is still alive.
    pub fn cluster_fabric(&self) -> Option<Arc<Cluster>> {
        self.cluster.read().as_ref().and_then(|n| n.fabric.upgrade())
    }

    /// Route a tenant's request: local when standalone, when this node
    /// owns the tenant, or when the owner has no usable address (failing
    /// local yields an honest tenant error rather than a dead proxy).
    pub fn cluster_route(&self, tenant: &str) -> ClusterRoute {
        let guard = self.cluster.read();
        let Some(node) = guard.as_ref() else {
            return ClusterRoute::Local;
        };
        match node.map.owner(tenant) {
            Some(owner) if owner != node.node_id => {
                match node.map.addr_of(&owner).filter(|a| !a.is_empty()) {
                    Some(addr) => ClusterRoute::Remote {
                        node_id: owner,
                        addr,
                    },
                    None => ClusterRoute::Local,
                }
            }
            _ => ClusterRoute::Local,
        }
    }

    /// The per-tenant migration fence (created on first use). Gated
    /// calls take it for reading; migration cutover takes it for
    /// writing.
    pub fn tenant_fence(&self, tenant: &str) -> Arc<RwLock<()>> {
        Arc::clone(
            self.fences
                .lock()
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(RwLock::new(()))),
        )
    }

    /// The data directory this platform journals tenants under (`None`
    /// for in-memory platforms). Migration stages its shipped bytes in
    /// `data_dir()/<tenant>` before [`OdbisPlatform::attach_workspace`]
    /// recovers them.
    pub fn data_dir(&self) -> Option<&std::path::Path> {
        self.data_dir.as_deref()
    }

    // ---- tenancy -------------------------------------------------------------

    /// Provision a tenant: registry entry, security realm with standard
    /// roles, first admin user, and the tenant workspace.
    pub fn provision_tenant(
        &self,
        id: &str,
        display_name: &str,
        plan: SubscriptionPlan,
        admin_user: &str,
        admin_password: &str,
    ) -> PlatformResult<()> {
        self.provision_identity(id, display_name, plan, admin_user, admin_password)?;
        self.attach_workspace(id)
    }

    /// Provision only the tenant's identity: registry entry, security
    /// realm with the standard roles, first admin user — no workspace.
    /// The cluster fabric provisions identity on every node (so logins
    /// and authorization work wherever a request lands) but a workspace
    /// only on the owner node.
    pub fn provision_identity(
        &self,
        id: &str,
        display_name: &str,
        plan: SubscriptionPlan,
        admin_user: &str,
        admin_password: &str,
    ) -> PlatformResult<()> {
        self.admin
            .provision_tenant(id, display_name, plan, admin_user, admin_password)?;
        Ok(())
    }

    /// Build (or recover) the tenant's workspace and attach it to this
    /// node. On a durable platform the workspace roots at
    /// `data_dir/<tenant>`, so attaching over a directory staged by a
    /// migration recovers exactly the shipped state — the recovery path
    /// re-verifies every WAL frame and segment CRC as it replays.
    pub fn attach_workspace(&self, id: &str) -> PlatformResult<()> {
        let ws = match &self.data_dir {
            Some(root) => {
                let policy = FsyncPolicy::parse(
                    &self
                        .admin
                        .config
                        .get_str(id, "durability.fsync")
                        .unwrap_or_else(|_| "never".into()),
                );
                let format = SnapshotFormat::parse(
                    &self
                        .admin
                        .config
                        .get_str(id, "durability.format")
                        .unwrap_or_else(|_| "segments".into()),
                );
                Arc::new(TenantWorkspace::durable(
                    id,
                    root.join(id),
                    policy,
                    format,
                    Arc::clone(&self.admin.telemetry),
                )?)
            }
            None => Arc::new(TenantWorkspace::new(id)?),
        };
        self.workspaces.write().insert(id.to_string(), ws);
        Ok(())
    }

    /// Detach a tenant's workspace from this node (migration cutover:
    /// the source stops serving the tenant). The identity stays — the
    /// registry entry and realm keep answering authorization so a
    /// late request fails with a routing-level error, not a phantom
    /// "unknown tenant". Returns the detached workspace, if any.
    pub fn detach_workspace(&self, id: &str) -> Option<Arc<TenantWorkspace>> {
        self.workspaces.write().remove(id)
    }

    // ---- durability ----------------------------------------------------------

    /// Checkpoint a tenant's durable store: fold the WAL into the snapshot
    /// and truncate the log. Admin-only; errors with `NotFound` when the
    /// platform (or the tenant) has no durable store.
    pub fn checkpoint_tenant(
        &self,
        tenant: &str,
        token: &str,
    ) -> PlatformResult<CheckpointOutcome> {
        self.traced(
            tenant,
            ServiceKind::Admin,
            "durability.checkpoint",
            |span| {
                span.set_detail(tenant);
                self.authorize(tenant, token, "ADMIN_CONFIG")?;
                let outcome = self.admin.durability.checkpoint(tenant)?;
                span.set_bytes(outcome.wal_bytes_folded);
                self.admin.meter_usage(tenant, ServiceKind::Admin, 1);
                Ok(outcome)
            },
        )
    }

    /// A tenant's durability status: fsync policy, WAL append/byte counters
    /// and file length, next LSN.
    pub fn durability_status(&self, tenant: &str, token: &str) -> PlatformResult<DurabilityStatus> {
        self.traced(tenant, ServiceKind::Admin, "durability.status", |span| {
            span.set_detail(tenant);
            self.authorize(tenant, token, "ADMIN_CONFIG")?;
            let status = self.admin.durability.status(tenant)?;
            span.set_bytes(status.wal_bytes);
            self.admin.meter_usage(tenant, ServiceKind::Admin, 1);
            Ok(status)
        })
    }

    /// The workspace of a tenant. A miss on a clustered node whose map
    /// routes the tenant elsewhere means the tenant migrated away — the
    /// caller is told where it went (HTTP: a 307 at the owner) instead of
    /// getting a spurious tenancy error.
    pub fn workspace(&self, tenant: &str) -> PlatformResult<Arc<TenantWorkspace>> {
        if let Some(ws) = self.workspaces.read().get(tenant).cloned() {
            return Ok(ws);
        }
        if let Some(moved) = self.moved_err(tenant) {
            return Err(moved);
        }
        Err(PlatformError::Tenancy(format!(
            "no workspace for tenant {tenant}"
        )))
    }

    /// The [`PlatformError::Moved`] for a tenant another node owns (with
    /// a usable address), `None` when this node may serve it.
    fn moved_err(&self, tenant: &str) -> Option<PlatformError> {
        match self.cluster_route(tenant) {
            ClusterRoute::Remote { node_id, addr } => Some(PlatformError::Moved {
                msg: format!("tenant {tenant} moved to node {node_id}; retry there"),
                node_id,
                addr,
            }),
            ClusterRoute::Local => None,
        }
    }

    /// Authenticate a tenant user; returns the session token.
    pub fn login(&self, tenant: &str, user: &str, password: &str) -> PlatformResult<String> {
        self.admin.registry().require_active(tenant)?;
        let realm = self.admin.registry().realm(tenant)?;
        Ok(realm.login(user, password)?.token)
    }

    /// Create an additional user in a tenant (enforces the plan's user
    /// limit) and assign a role.
    pub fn create_user(
        &self,
        tenant: &str,
        admin_token: &str,
        user: &str,
        password: &str,
        role: &str,
    ) -> PlatformResult<()> {
        let principal = self.authorize(tenant, admin_token, "ADMIN_USERS")?;
        let _ = principal;
        self.admin.registry().check_user_limit(tenant)?;
        let realm = self.admin.registry().realm(tenant)?;
        realm.create_user(user, password)?;
        realm.assign_role(user, role)?;
        Ok(())
    }

    /// The full platform gate: tenant active + session valid + authority
    /// held. Returns the principal's username.
    pub fn authorize(&self, tenant: &str, token: &str, authority: &str) -> PlatformResult<String> {
        self.admin.registry().require_active(tenant)?;
        let realm = self.admin.registry().realm(tenant)?;
        let principal = realm.authenticate(token)?;
        realm.require_authority(&principal, authority)?;
        Ok(principal)
    }

    // ---- telemetry -----------------------------------------------------------

    /// Open the root span for one gated service call. Honors the tenant's
    /// `telemetry.enabled` / `telemetry.slow_ms` settings; when disabled
    /// the returned span is inert and the call costs almost nothing.
    fn trace_root(
        &self,
        tenant: &str,
        service: ServiceKind,
        operation: &'static str,
    ) -> odbis_telemetry::Span {
        if matches!(
            self.admin.config.get(tenant, "telemetry.enabled"),
            Ok(odbis_admin::ConfigValue::Bool(false))
        ) {
            return odbis_telemetry::Span::disabled();
        }
        let slow_ms = self
            .admin
            .config
            .get_int(tenant, "telemetry.slow_ms")
            .unwrap_or(250)
            .max(0) as u64;
        self.admin
            .telemetry
            .span(tenant, service.code(), operation, slow_ms)
    }

    /// Run one gated service call under a root span: the span/trace
    /// context every deeper layer (SQL, ETL, OLAP, reporting, delivery)
    /// attaches its child spans to.
    fn traced<R>(
        &self,
        tenant: &str,
        service: ServiceKind,
        operation: &'static str,
        f: impl FnOnce(&mut odbis_telemetry::Span) -> PlatformResult<R>,
    ) -> PlatformResult<R> {
        // Failpoint between routing and the fence: the chaos suite uses a
        // delay here to pin a dispatch inside the cutover window.
        odbis_chaos::check("platform.fence")
            .map_err(|e| PlatformError::Unavailable(format!("platform.fence: {e}")))?;
        // The migration fence: held for reading across the whole gated
        // call, so a cutover (which takes it for writing) observes every
        // in-flight call to completion before flipping ownership — an
        // acknowledged write is either in the shipped WAL tail or never
        // acknowledged. Recursive, so a gated call nested inside another
        // never deadlocks behind a waiting cutover.
        let fence = self.tenant_fence(tenant);
        let _gate = fence.read_recursive();
        // Re-check the route now that the fence is held: a request routed
        // here before a cutover flip resumes with the workspace already
        // detached — answer with the new owner, not a workspace miss.
        if let Some(moved) = self.moved_err(tenant) {
            return Err(moved);
        }
        let mut span = self.trace_root(tenant, service, operation);
        let result = f(&mut span);
        if result.is_err() {
            span.fail();
        }
        result
    }

    // ---- core BI services (metered) -------------------------------------------

    /// Execute raw SQL in the tenant warehouse (designer capability).
    ///
    /// SELECTs run on the vectorized columnar path unless the tenant's
    /// `sql.vectorized` setting is explicitly `false` (ablation switch,
    /// mirroring `olap.preaggregation`). Two further per-tenant knobs tune
    /// the engine: `sql.parallelism` (worker count for morsel-parallel
    /// execution, `0` = auto) and `sql.optimizer_rules` (rule-set spec such
    /// as `"all"`, `"none"`, or `"-reorder,-prune"`).
    pub fn sql(&self, tenant: &str, token: &str, sql: &str) -> PlatformResult<QueryResult> {
        self.traced(tenant, ServiceKind::Metadata, "sql", |span| {
            span.set_detail(sql);
            self.authorize(tenant, token, "ETL_DESIGN")?;
            let ws = self.workspace(tenant)?;
            let mut engine = if matches!(
                self.admin.config.get(tenant, "sql.vectorized"),
                Ok(odbis_admin::ConfigValue::Bool(false))
            ) {
                self.sql_rows.clone()
            } else {
                self.sql.clone()
            };
            if let Ok(odbis_admin::ConfigValue::Int(n)) =
                self.admin.config.get(tenant, "sql.parallelism")
            {
                if n > 0 {
                    engine = engine.with_parallelism(n as usize);
                }
            }
            if let Ok(odbis_admin::ConfigValue::Str(spec)) =
                self.admin.config.get(tenant, "sql.optimizer_rules")
            {
                if spec != "all" {
                    engine = engine.with_optimizer_rules(&spec);
                }
            }
            let result = engine.execute(&ws.warehouse, sql)?;
            // Any write this statement journaled now rides the delta
            // pipeline: inserts fold into covered aggregates, other
            // mutations rebuild only the aggregates over the touched
            // tables, and watchers of those tables wake. Reads buffered
            // nothing, so this is a no-op for SELECTs.
            ws.publish_deltas();
            span.set_rows((result.rows.len() + result.rows_affected) as u64);
            // pay-as-you-go: one unit per call plus one per row touched
            self.admin.meter_usage(
                tenant,
                ServiceKind::Metadata,
                1 + result.rows.len() as u64 + result.rows_affected as u64,
            );
            Ok(result)
        })
    }

    /// Define a data set in the tenant's MDS.
    pub fn define_dataset(
        &self,
        tenant: &str,
        token: &str,
        dataset: DataSet,
    ) -> PlatformResult<()> {
        self.traced(tenant, ServiceKind::Metadata, "dataset.define", |span| {
            span.set_detail(&dataset.name);
            self.authorize(tenant, token, "ETL_DESIGN")?;
            let ws = self.workspace(tenant)?;
            ws.mds.define_dataset(dataset)?;
            self.admin.meter_usage(tenant, ServiceKind::Metadata, 1);
            Ok(())
        })
    }

    /// Execute a data set.
    pub fn execute_dataset(
        &self,
        tenant: &str,
        token: &str,
        name: &str,
    ) -> PlatformResult<QueryResult> {
        self.traced(tenant, ServiceKind::Metadata, "dataset.run", |span| {
            span.set_detail(name);
            self.authorize(tenant, token, "DATASET_RUN")?;
            let ws = self.workspace(tenant)?;
            let result = ws.mds.execute_dataset(name)?;
            span.set_rows(result.rows.len() as u64);
            self.admin
                .meter_usage(tenant, ServiceKind::Metadata, 1 + result.rows.len() as u64);
            Ok(result)
        })
    }

    /// Resolve a watch subscription for a data set: authorize the caller,
    /// look the data set up, and return the workspace watch hub plus the
    /// (lower-cased) tables the data set's SQL reads — the set whose
    /// changes complete a parked `GET /datasets/:name/watch` long-poll.
    pub fn watch_dataset(
        &self,
        tenant: &str,
        token: &str,
        name: &str,
    ) -> PlatformResult<(Arc<WatchHub>, Vec<String>)> {
        self.traced(tenant, ServiceKind::Metadata, "dataset.watch", |span| {
            span.set_detail(name);
            self.authorize(tenant, token, "DATASET_RUN")?;
            let ws = self.workspace(tenant)?;
            let dataset = ws.mds.dataset(name)?;
            let tables = odbis_sql::referenced_tables(&dataset.sql)?;
            self.admin.meter_usage(tenant, ServiceKind::Metadata, 1);
            Ok((Arc::clone(&ws.watch), tables))
        })
    }

    /// Execute a data set and return its columnar batch (no row pivot) —
    /// the path streamed exports such as CSV downloads serialize from.
    pub fn execute_dataset_batch(
        &self,
        tenant: &str,
        token: &str,
        name: &str,
    ) -> PlatformResult<(Vec<String>, odbis_storage::Batch)> {
        self.traced(tenant, ServiceKind::Metadata, "dataset.export", |span| {
            span.set_detail(name);
            self.authorize(tenant, token, "DATASET_RUN")?;
            let ws = self.workspace(tenant)?;
            let (columns, batch) = ws.mds.execute_dataset_batch(name)?;
            span.set_rows(batch.num_rows() as u64);
            self.admin
                .meter_usage(tenant, ServiceKind::Metadata, 1 + batch.num_rows() as u64);
            Ok((columns, batch))
        })
    }

    /// Run an integration job in the tenant warehouse.
    pub fn run_etl(&self, tenant: &str, token: &str, job: &EtlJob) -> PlatformResult<JobReport> {
        self.traced(tenant, ServiceKind::Integration, "etl.run", |span| {
            span.set_detail(&job.name);
            self.authorize(tenant, token, "ETL_DESIGN")?;
            let ws = self.workspace(tenant)?;
            let report = ws.etl.run(job).map_err(PlatformError::from)?;
            // ETL loads write the warehouse: publish the journaled deltas
            // so only aggregates over the loaded tables are maintained or
            // rebuilt — an unrelated cube's preagg survives the load.
            ws.publish_deltas();
            span.set_rows(report.loaded as u64);
            self.admin
                .meter_usage(tenant, ServiceKind::Integration, report.loaded as u64);
            Ok(report)
        })
    }

    /// Register a cube definition (validated against the warehouse).
    pub fn register_cube(&self, tenant: &str, token: &str, cube: CubeDef) -> PlatformResult<()> {
        self.traced(tenant, ServiceKind::Analysis, "cube.register", |span| {
            span.set_detail(&cube.name);
            self.authorize(tenant, token, "CUBE_DESIGN")?;
            let ws = self.workspace(tenant)?;
            cube.validate(&ws.warehouse)?;
            ws.cube_defs.write().insert(cube.name.clone(), cube);
            self.admin.meter_usage(tenant, ServiceKind::Analysis, 1);
            Ok(())
        })
    }

    /// Run an MDX-lite query against a registered cube.
    pub fn mdx(&self, tenant: &str, token: &str, mdx: &str) -> PlatformResult<CellSet> {
        self.traced(tenant, ServiceKind::Analysis, "mdx", |span| {
            span.set_detail(mdx);
            self.authorize(tenant, token, "CUBE_QUERY")?;
            let ws = self.workspace(tenant)?;
            let stmt = odbis_olap::parse_mdx(mdx)?;
            let cube = ws
                .cube_defs
                .read()
                .get(&stmt.cube)
                .cloned()
                .ok_or_else(|| PlatformError::Olap(format!("unknown cube {}", stmt.cube)))?;
            // consult the materialized-aggregate cache when enabled (ablation A2
            // wired into the platform through configuration)
            let use_preagg = matches!(
                self.admin.config.get(tenant, "olap.preaggregation"),
                Ok(odbis_admin::ConfigValue::Bool(true))
            );
            let cells = if use_preagg {
                match ws.agg_cache.read().try_answer(&stmt.cube, &stmt.query) {
                    Some(cells) => cells,
                    None => ws.cubes.query(&cube, &stmt.query)?,
                }
            } else {
                ws.cubes.query(&cube, &stmt.query)?
            };
            span.set_rows(cells.len() as u64);
            self.admin
                .meter_usage(tenant, ServiceKind::Analysis, 1 + cells.len() as u64);
            Ok(cells)
        })
    }

    /// Render a dashboard to HTML.
    pub fn render_dashboard(
        &self,
        tenant: &str,
        token: &str,
        dashboard: &Dashboard,
    ) -> PlatformResult<String> {
        self.traced(tenant, ServiceKind::Reporting, "dashboard.render", |span| {
            span.set_detail(&dashboard.title);
            self.authorize(tenant, token, "REPORT_VIEW")?;
            let ws = self.workspace(tenant)?;
            let html = ws.reporting.render_dashboard(dashboard)?;
            span.set_bytes(html.len() as u64);
            self.admin.meter_usage(
                tenant,
                ServiceKind::Reporting,
                dashboard.widget_count() as u64,
            );
            Ok(html)
        })
    }

    /// Deliver a report payload to a user over a channel.
    pub fn deliver(
        &self,
        tenant: &str,
        token: &str,
        user: &str,
        report: &str,
        channel: Channel,
        payload: &ReportPayload,
    ) -> PlatformResult<String> {
        self.traced(tenant, ServiceKind::Delivery, "deliver", |span| {
            span.set_detail(report);
            self.authorize(tenant, token, "REPORT_VIEW")?;
            let ws = self.workspace(tenant)?;
            let delivered = ws.delivery.deliver(user, report, channel, payload)?;
            span.set_bytes(delivered.body.len() as u64);
            self.admin.meter_usage(tenant, ServiceKind::Delivery, 1);
            Ok(delivered.body)
        })
    }

    /// Materialize an aggregate for a registered cube; later MDX queries it
    /// covers are answered from the cache (when `olap.preaggregation` is
    /// enabled, the default).
    pub fn materialize_aggregate(
        &self,
        tenant: &str,
        token: &str,
        cube_name: &str,
        axes: Vec<LevelRef>,
        measures: Vec<String>,
    ) -> PlatformResult<usize> {
        self.traced(
            tenant,
            ServiceKind::Analysis,
            "aggregate.materialize",
            |span| {
                span.set_detail(cube_name);
                self.authorize(tenant, token, "CUBE_DESIGN")?;
                let ws = self.workspace(tenant)?;
                let cube = ws
                    .cube_defs
                    .read()
                    .get(cube_name)
                    .cloned()
                    .ok_or_else(|| PlatformError::Olap(format!("unknown cube {cube_name}")))?;
                let agg = MaterializedAggregate::build(&ws.cubes, &cube, axes, measures)?;
                let cells = agg.len();
                span.set_rows(cells as u64);
                ws.agg_cache.write().add(agg);
                self.admin
                    .meter_usage(tenant, ServiceKind::Analysis, 1 + cells as u64);
                Ok(cells)
            },
        )
    }

    /// Upload a report template into a tenant report group (the BIRT
    /// upload path of §3.3).
    pub fn upload_template(
        &self,
        tenant: &str,
        token: &str,
        group: &str,
        template: ReportTemplate,
    ) -> PlatformResult<()> {
        self.traced(tenant, ServiceKind::Reporting, "template.upload", |span| {
            span.set_detail(&template.name);
            self.authorize(tenant, token, "REPORT_DESIGN")?;
            let ws = self.workspace(tenant)?;
            if !ws.reporting.group_names().contains(&group.to_string()) {
                ws.reporting.create_group(group)?;
            }
            ws.reporting
                .register(group, odbis_reporting::Report::Template(template))?;
            self.admin.meter_usage(tenant, ServiceKind::Reporting, 1);
            Ok(())
        })
    }

    /// Execute an uploaded template with parameters against the tenant
    /// warehouse (the BIRT viewer path).
    pub fn run_template(
        &self,
        tenant: &str,
        token: &str,
        group: &str,
        name: &str,
        params: &std::collections::BTreeMap<String, odbis_storage::Value>,
    ) -> PlatformResult<RenderedReport> {
        self.traced(tenant, ServiceKind::Reporting, "template.run", |span| {
            span.set_detail(name);
            self.authorize(tenant, token, "REPORT_VIEW")?;
            let ws = self.workspace(tenant)?;
            let odbis_reporting::Report::Template(template) = ws.reporting.report(group, name)?
            else {
                return Err(PlatformError::Reporting(format!(
                    "{group}/{name} is not a template"
                )));
            };
            let rendered = odbis_reporting::run_template(&template, params, &ws.warehouse)?;
            span.set_bytes(rendered.html.len() as u64);
            self.admin.meter_usage(
                tenant,
                ServiceKind::Reporting,
                1 + rendered.queries_run as u64,
            );
            Ok(rendered)
        })
    }

    // ---- MDDWS -----------------------------------------------------------------

    /// Create a model-driven DW project in the tenant workspace.
    pub fn create_dw_project(&self, tenant: &str, token: &str, name: &str) -> PlatformResult<()> {
        self.traced(tenant, ServiceKind::Admin, "dw.project.create", |span| {
            span.set_detail(name);
            self.authorize(tenant, token, "CUBE_DESIGN")?;
            let ws = self.workspace(tenant)?;
            let mut projects = ws.projects.lock();
            if projects.contains_key(name) {
                return Err(PlatformError::Mddws(format!("project {name} exists")));
            }
            projects.insert(name.to_string(), DwProject::new(name));
            self.admin.meter_usage(tenant, ServiceKind::Admin, 1);
            Ok(())
        })
    }

    /// Run a closure against a tenant's DW project.
    pub fn with_dw_project<R>(
        &self,
        tenant: &str,
        token: &str,
        name: &str,
        f: impl FnOnce(&mut DwProject) -> PlatformResult<R>,
    ) -> PlatformResult<R> {
        self.traced(tenant, ServiceKind::Admin, "dw.project.run", |span| {
            span.set_detail(name);
            self.authorize(tenant, token, "CUBE_DESIGN")?;
            let ws = self.workspace(tenant)?;
            let mut projects = ws.projects.lock();
            let project = projects
                .get_mut(name)
                .ok_or_else(|| PlatformError::Mddws(format!("unknown project {name}")))?;
            let r = f(project)?;
            self.admin.meter_usage(tenant, ServiceKind::Admin, 1);
            Ok(r)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> (OdbisPlatform, String) {
        let p = OdbisPlatform::new();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        (p, token)
    }

    #[test]
    fn provision_login_and_gate() {
        let (p, token) = boot();
        assert_eq!(p.authorize("acme", &token, "REPORT_VIEW").unwrap(), "root");
        assert!(matches!(
            p.authorize("acme", "bad-token", "REPORT_VIEW"),
            Err(PlatformError::Security(_))
        ));
        assert!(matches!(
            p.authorize("ghost", &token, "REPORT_VIEW"),
            Err(PlatformError::Tenancy(_))
        ));
        assert!(matches!(
            p.login("acme", "root", "wrong"),
            Err(PlatformError::Security(_))
        ));
    }

    #[test]
    fn sql_and_datasets_are_metered() {
        let (p, token) = boot();
        p.sql(
            "acme",
            &token,
            "CREATE TABLE sales (region TEXT, amount DOUBLE)",
        )
        .unwrap();
        p.sql(
            "acme",
            &token,
            "INSERT INTO sales VALUES ('EU', 70), ('US', 30)",
        )
        .unwrap();
        p.define_dataset(
            "acme",
            &token,
            DataSet {
                name: "by_region".into(),
                source: "warehouse".into(),
                sql: "SELECT region, SUM(amount) AS total FROM sales GROUP BY region".into(),
                description: String::new(),
            },
        )
        .unwrap();
        let r = p.execute_dataset("acme", &token, "by_region").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!(p.admin.meter().usage("acme", ServiceKind::Metadata) >= 4);
    }

    #[test]
    fn least_privilege_users_are_denied_design_calls() {
        let (p, token) = boot();
        p.create_user("acme", &token, "viewer", "pw2", "ROLE_ANALYST")
            .unwrap();
        let viewer = p.login("acme", "viewer", "pw2").unwrap();
        // analysts can run datasets but not define tables
        assert!(matches!(
            p.sql("acme", &viewer, "CREATE TABLE x (a INT)"),
            Err(PlatformError::Security(_))
        ));
        assert!(matches!(
            p.create_user("acme", &viewer, "w2", "p", "ROLE_USER"),
            Err(PlatformError::Security(_))
        ));
    }

    #[test]
    fn suspended_tenant_is_locked_out() {
        let (p, token) = boot();
        p.admin
            .registry()
            .set_status("acme", odbis_tenancy::TenantStatus::Suspended)
            .unwrap();
        assert!(matches!(
            p.sql("acme", &token, "SELECT 1"),
            Err(PlatformError::Tenancy(_))
        ));
        assert!(matches!(
            p.login("acme", "root", "pw"),
            Err(PlatformError::Tenancy(_))
        ));
    }

    #[test]
    fn tenant_workspaces_are_isolated() {
        let (p, token_a) = boot();
        p.provision_tenant("beta", "Beta", SubscriptionPlan::free(), "root", "pw")
            .unwrap();
        let token_b = p.login("beta", "root", "pw").unwrap();
        p.sql("acme", &token_a, "CREATE TABLE secrets (v TEXT)")
            .unwrap();
        // beta's warehouse has no such table
        assert!(matches!(
            p.sql("beta", &token_b, "SELECT * FROM secrets"),
            Err(PlatformError::Sql(_))
        ));
        // tokens don't cross tenants
        assert!(p.authorize("beta", &token_a, "REPORT_VIEW").is_err());
    }

    #[test]
    fn cube_registration_and_mdx() {
        let (p, token) = boot();
        p.sql(
            "acme",
            &token,
            "CREATE TABLE fact_s (y INT, region TEXT, amount DOUBLE)",
        )
        .unwrap();
        p.sql(
            "acme",
            &token,
            "INSERT INTO fact_s VALUES (2009, 'EU', 10), (2010, 'EU', 40), (2010, 'US', 5)",
        )
        .unwrap();
        let cube = CubeDef {
            name: "s".into(),
            fact_table: "fact_s".into(),
            dimensions: vec![
                odbis_olap::DimensionDef {
                    name: "time".into(),
                    table: None,
                    fact_fk: String::new(),
                    dim_key: String::new(),
                    levels: vec![odbis_olap::LevelDef {
                        name: "year".into(),
                        column: "y".into(),
                    }],
                },
                odbis_olap::DimensionDef {
                    name: "geo".into(),
                    table: None,
                    fact_fk: String::new(),
                    dim_key: String::new(),
                    levels: vec![odbis_olap::LevelDef {
                        name: "region".into(),
                        column: "region".into(),
                    }],
                },
            ],
            measures: vec![odbis_olap::MeasureDef {
                name: "revenue".into(),
                column: "amount".into(),
                aggregator: odbis_olap::Aggregator::Sum,
            }],
        };
        p.register_cube("acme", &token, cube).unwrap();
        let cells = p
            .mdx(
                "acme",
                &token,
                "SELECT revenue BY geo.region FROM s WHERE time.year = 2010",
            )
            .unwrap();
        assert_eq!(
            cells.cell(&["EU".into()]).unwrap(),
            &[odbis_storage::Value::Float(40.0)]
        );
        assert!(matches!(
            p.mdx("acme", &token, "SELECT revenue BY geo.region FROM nocube"),
            Err(PlatformError::Olap(_))
        ));
    }

    #[test]
    fn sql_vectorized_config_toggles_execution_path() {
        let (p, token) = boot();
        p.sql("acme", &token, "CREATE TABLE t (x INT, y TEXT)")
            .unwrap();
        p.sql(
            "acme",
            &token,
            "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, NULL)",
        )
        .unwrap();
        let q = "SELECT y, COUNT(*) AS n FROM t WHERE x > 1 GROUP BY y";
        let vectorized = p.sql("acme", &token, q).unwrap();
        p.admin
            .config
            .set_for_tenant("acme", "sql.vectorized", false.into())
            .unwrap();
        let row_based = p.sql("acme", &token, q).unwrap();
        assert_eq!(vectorized.columns, row_based.columns);
        assert_eq!(vectorized.rows, row_based.rows);
    }

    #[test]
    fn sql_parallelism_and_rules_config_apply_per_tenant() {
        let (p, token) = boot();
        p.sql("acme", &token, "CREATE TABLE t (x INT, y TEXT)")
            .unwrap();
        p.sql(
            "acme",
            &token,
            "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'b'), (4, NULL)",
        )
        .unwrap();
        let q = "SELECT y, COUNT(*) AS n FROM t WHERE x > 1 GROUP BY y";
        let baseline = p.sql("acme", &token, q).unwrap();
        p.admin
            .config
            .set_for_tenant("acme", "sql.parallelism", odbis_admin::ConfigValue::Int(2))
            .unwrap();
        p.admin
            .config
            .set_for_tenant("acme", "sql.optimizer_rules", "none".into())
            .unwrap();
        let tuned = p.sql("acme", &token, q).unwrap();
        assert_eq!(baseline.columns, tuned.columns);
        assert_eq!(baseline.rows, tuned.rows);
        // Other tenants keep engine defaults: the override is scoped.
        p.provision_tenant("beta", "Beta", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let beta_token = p.login("beta", "root", "pw").unwrap();
        p.sql("beta", &beta_token, "CREATE TABLE t (x INT, y TEXT)")
            .unwrap();
        p.sql("beta", &beta_token, "INSERT INTO t VALUES (9, 'z')")
            .unwrap();
        let beta = p
            .sql("beta", &beta_token, "SELECT y FROM t WHERE x > 1")
            .unwrap();
        assert_eq!(beta.rows.len(), 1);
    }

    #[test]
    fn billing_reflects_usage() {
        let (p, token) = boot();
        p.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
        for i in 0..10 {
            p.sql("acme", &token, &format!("INSERT INTO t VALUES ({i})"))
                .unwrap();
        }
        let invoices = p.admin.billing_run();
        assert_eq!(invoices.len(), 1);
        assert!(invoices[0].units >= 11);
        assert_eq!(invoices[0].plan, "standard");
    }

    #[test]
    fn dw_project_via_platform() {
        let (p, token) = boot();
        p.create_dw_project("acme", &token, "dw1").unwrap();
        assert!(matches!(
            p.create_dw_project("acme", &token, "dw1"),
            Err(PlatformError::Mddws(_))
        ));
        let ws = p.workspace("acme").unwrap();
        let warehouse = Arc::clone(&ws.warehouse);
        let created = p
            .with_dw_project("acme", &token, "dw1", |project| {
                let mut bcim =
                    odbis_metamodel::ModelRepository::new("bcim", odbis_mddws::cim_metamodel());
                let prop = bcim
                    .create(
                        "BusinessProperty",
                        vec![("name", "amount".into()), ("valueType", "NUMBER".into())],
                    )
                    .map_err(|e| PlatformError::Mddws(e.to_string()))?;
                bcim.create(
                    "BusinessConcept",
                    vec![
                        ("name", "orders".into()),
                        ("kind", "FACT".into()),
                        (
                            "properties",
                            odbis_metamodel::AttrValue::RefList(vec![prop]),
                        ),
                    ],
                )
                .map_err(|e| PlatformError::Mddws(e.to_string()))?;
                project
                    .run_layer_pipeline(
                        odbis_mddws::DwLayer::Warehouse,
                        bcim,
                        "ODBIS-STORAGE",
                        &warehouse,
                    )
                    .map_err(PlatformError::from)
            })
            .unwrap();
        assert_eq!(created, vec!["fact_orders"]);
        // the MDA-deployed table is queryable through the normal SQL path
        let r = p
            .sql("acme", &token, "SELECT COUNT(*) FROM fact_orders")
            .unwrap();
        assert_eq!(r.rows[0][0], odbis_storage::Value::Int(0));
    }
}

#[cfg(test)]
mod preagg_tests {
    use super::*;

    #[test]
    fn mdx_answers_from_materialized_aggregate_when_enabled() {
        let p = OdbisPlatform::new();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        p.sql(
            "acme",
            &token,
            "CREATE TABLE f (region TEXT, amount DOUBLE)",
        )
        .unwrap();
        p.sql(
            "acme",
            &token,
            "INSERT INTO f VALUES ('EU', 10), ('EU', 20), ('US', 5)",
        )
        .unwrap();
        let cube = CubeDef {
            name: "c".into(),
            fact_table: "f".into(),
            dimensions: vec![odbis_olap::DimensionDef {
                name: "geo".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![odbis_olap::LevelDef {
                    name: "region".into(),
                    column: "region".into(),
                }],
            }],
            measures: vec![odbis_olap::MeasureDef {
                name: "revenue".into(),
                column: "amount".into(),
                aggregator: odbis_olap::Aggregator::Sum,
            }],
        };
        p.register_cube("acme", &token, cube).unwrap();
        let cells = p
            .materialize_aggregate(
                "acme",
                &token,
                "c",
                vec![LevelRef::new("geo", "region")],
                vec!["revenue".into()],
            )
            .unwrap();
        assert_eq!(cells, 2);
        // the materialized aggregate answers covered MDX queries
        let via_cache = p
            .mdx("acme", &token, "SELECT revenue BY geo.region FROM c")
            .unwrap();
        assert_eq!(
            via_cache.cell(&["EU".into()]).unwrap(),
            &[odbis_storage::Value::Float(30.0)]
        );
        // a warehouse write invalidates the aggregate: MDX sees fresh rows,
        // never a stale cached cell
        p.sql("acme", &token, "INSERT INTO f VALUES ('EU', 100)")
            .unwrap();
        let after_write = p
            .mdx("acme", &token, "SELECT revenue BY geo.region FROM c")
            .unwrap();
        assert_eq!(
            after_write.cell(&["EU".into()]).unwrap(),
            &[odbis_storage::Value::Float(130.0)]
        );
        // disabling pre-aggregation for the tenant also reads live data
        p.admin
            .config
            .set_for_tenant("acme", "olap.preaggregation", false.into())
            .unwrap();
        let live = p
            .mdx("acme", &token, "SELECT revenue BY geo.region FROM c")
            .unwrap();
        assert_eq!(
            live.cell(&["EU".into()]).unwrap(),
            &[odbis_storage::Value::Float(130.0)]
        );
    }

    #[test]
    fn etl_load_invalidates_materialized_aggregates() {
        let p = OdbisPlatform::new();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        p.sql(
            "acme",
            &token,
            "CREATE TABLE f (region TEXT, amount DOUBLE)",
        )
        .unwrap();
        p.sql("acme", &token, "INSERT INTO f VALUES ('EU', 10), ('US', 5)")
            .unwrap();
        let cube = CubeDef {
            name: "c".into(),
            fact_table: "f".into(),
            dimensions: vec![odbis_olap::DimensionDef {
                name: "geo".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![odbis_olap::LevelDef {
                    name: "region".into(),
                    column: "region".into(),
                }],
            }],
            measures: vec![odbis_olap::MeasureDef {
                name: "revenue".into(),
                column: "amount".into(),
                aggregator: odbis_olap::Aggregator::Sum,
            }],
        };
        p.register_cube("acme", &token, cube).unwrap();
        p.materialize_aggregate(
            "acme",
            &token,
            "c",
            vec![LevelRef::new("geo", "region")],
            vec!["revenue".into()],
        )
        .unwrap();
        // load more fact rows through the integration service
        let job = EtlJob {
            name: "load_f".into(),
            extractor: odbis_etl::Extractor::Csv("region,amount\nEU,90\n".into()),
            transforms: vec![],
            loader: odbis_etl::Loader {
                table: "f".into(),
                mode: odbis_etl::LoadMode::Append,
            },
        };
        let report = p.run_etl("acme", &token, &job).unwrap();
        assert_eq!(report.loaded, 1);
        // the pre-ETL aggregate must not answer any more
        let cells = p
            .mdx("acme", &token, "SELECT revenue BY geo.region FROM c")
            .unwrap();
        assert_eq!(
            cells.cell(&["EU".into()]).unwrap(),
            &[odbis_storage::Value::Float(100.0)]
        );
    }

    /// Regression pin for scoped invalidation: before the streaming-BI
    /// change, any ETL load cleared the *whole* aggregate cache, so a load
    /// into one table silently evicted every other cube's materialization.
    /// Now invalidation is delta-scoped: a load into `f` must leave the
    /// aggregate over the untouched `g` registered, fresh, and answering.
    #[test]
    fn etl_load_leaves_unrelated_cubes_aggregate_intact() {
        let p = OdbisPlatform::new();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        let degenerate_cube = |name: &str, fact: &str| CubeDef {
            name: name.into(),
            fact_table: fact.into(),
            dimensions: vec![odbis_olap::DimensionDef {
                name: "geo".into(),
                table: None,
                fact_fk: String::new(),
                dim_key: String::new(),
                levels: vec![odbis_olap::LevelDef {
                    name: "region".into(),
                    column: "region".into(),
                }],
            }],
            measures: vec![odbis_olap::MeasureDef {
                name: "revenue".into(),
                column: "amount".into(),
                aggregator: odbis_olap::Aggregator::Sum,
            }],
        };
        for (fact, seed_rows) in [
            ("f", "('EU', 10), ('US', 5)"),
            ("g", "('EU', 7), ('APAC', 3)"),
        ] {
            p.sql(
                "acme",
                &token,
                &format!("CREATE TABLE {fact} (region TEXT, amount DOUBLE)"),
            )
            .unwrap();
            p.sql(
                "acme",
                &token,
                &format!("INSERT INTO {fact} VALUES {seed_rows}"),
            )
            .unwrap();
        }
        p.register_cube("acme", &token, degenerate_cube("c", "f"))
            .unwrap();
        p.register_cube("acme", &token, degenerate_cube("d", "g"))
            .unwrap();
        for cube in ["c", "d"] {
            p.materialize_aggregate(
                "acme",
                &token,
                cube,
                vec![LevelRef::new("geo", "region")],
                vec!["revenue".into()],
            )
            .unwrap();
        }

        // the ETL load touches only `f`
        p.run_etl(
            "acme",
            &token,
            &EtlJob {
                name: "load_f".into(),
                extractor: odbis_etl::Extractor::Csv("region,amount\nEU,90\n".into()),
                transforms: vec![],
                loader: odbis_etl::Loader {
                    table: "f".into(),
                    mode: odbis_etl::LoadMode::Append,
                },
            },
        )
        .unwrap();

        // both aggregates are still registered (the pre-fix blanket clear
        // left the cache empty here) and the unrelated one still answers
        // straight from its cells
        let ws = p.workspace("acme").unwrap();
        assert_eq!(ws.agg_cache.read().len(), 2, "an aggregate was evicted");
        let q = odbis_olap::CubeQuery {
            axes: vec![LevelRef::new("geo", "region")],
            slices: vec![],
            measures: vec!["revenue".into()],
        };
        let unrelated = ws
            .agg_cache
            .read()
            .try_answer("d", &q)
            .expect("unrelated cube's aggregate must survive the load");
        assert_eq!(
            unrelated.cells,
            vec![
                (
                    vec![odbis_storage::Value::Text("APAC".into())],
                    vec![odbis_storage::Value::Float(3.0)]
                ),
                (
                    vec![odbis_storage::Value::Text("EU".into())],
                    vec![odbis_storage::Value::Float(7.0)]
                ),
            ]
        );
        // and the loaded cube's aggregate reflects the new rows via MDX
        let loaded = p
            .mdx("acme", &token, "SELECT revenue BY geo.region FROM c")
            .unwrap();
        assert_eq!(
            loaded.cell(&["EU".into()]).unwrap(),
            &[odbis_storage::Value::Float(100.0)]
        );
    }
}

#[cfg(test)]
mod template_tests {
    use super::*;
    use odbis_reporting::{ParamDef, Section, TableSpec};
    use odbis_storage::DataType;

    #[test]
    fn upload_and_run_template_through_platform() {
        let p = OdbisPlatform::new();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        p.sql("acme", &token, "CREATE TABLE visits (dept TEXT, n INT)")
            .unwrap();
        p.sql(
            "acme",
            &token,
            "INSERT INTO visits VALUES ('Cardiology', 12), ('Oncology', 7)",
        )
        .unwrap();
        let template = ReportTemplate {
            name: "dept".into(),
            title: "Department report".into(),
            parameters: vec![ParamDef {
                name: "dept".into(),
                data_type: DataType::Text,
                default: None,
            }],
            sections: vec![Section::QueryTable {
                sql: "SELECT dept, n FROM visits WHERE dept = ${dept}".into(),
                spec: TableSpec {
                    title: "Visits".into(),
                    columns: vec![],
                    max_rows: None,
                },
            }],
        };
        p.upload_template("acme", &token, "standard-reports", template)
            .unwrap();
        let mut params = std::collections::BTreeMap::new();
        params.insert("dept".to_string(), odbis_storage::Value::from("Oncology"));
        let rendered = p
            .run_template("acme", &token, "standard-reports", "dept", &params)
            .unwrap();
        assert!(rendered.html.contains("Oncology"));
        assert!(rendered.html.contains("7"));
        assert!(!rendered.html.contains("Cardiology"));
        // missing param errors cleanly
        assert!(matches!(
            p.run_template(
                "acme",
                &token,
                "standard-reports",
                "dept",
                &Default::default()
            ),
            Err(PlatformError::Reporting(_))
        ));
    }
}

#[cfg(test)]
mod durability_tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("odbis-platform-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn boot_durable(dir: &std::path::Path) -> (OdbisPlatform, String) {
        let p = OdbisPlatform::with_data_dir(dir.to_path_buf());
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        (p, token)
    }

    #[test]
    fn durable_platform_recovers_committed_state() {
        let dir = tmp_dir("recover");
        {
            let (p, token) = boot_durable(&dir);
            p.sql("acme", &token, "CREATE TABLE orders (id INT, region TEXT)")
                .unwrap();
            p.sql(
                "acme",
                &token,
                "INSERT INTO orders VALUES (1, 'EU'), (2, 'US')",
            )
            .unwrap();
            p.sql("acme", &token, "DELETE FROM orders WHERE id = 2")
                .unwrap();
        } // platform dropped: simulated process exit, nothing checkpointed
        let (p2, token2) = boot_durable(&dir);
        let r = p2
            .sql("acme", &token2, "SELECT id, region FROM orders")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                odbis_storage::Value::Int(1),
                odbis_storage::Value::from("EU")
            ]]
        );
        // the recovered warehouse keeps journaling
        p2.sql("acme", &token2, "INSERT INTO orders VALUES (3, 'APAC')")
            .unwrap();
        let status = p2.durability_status("acme", &token2).unwrap();
        assert!(status.wal_appends >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_folds_wal_and_meters_telemetry() {
        let dir = tmp_dir("checkpoint");
        let (p, token) = boot_durable(&dir);
        p.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
        for i in 0..5 {
            p.sql("acme", &token, &format!("INSERT INTO t VALUES ({i})"))
                .unwrap();
        }
        let before = p.durability_status("acme", &token).unwrap();
        assert!(before.wal_appends >= 6);
        assert!(before.wal_file_len > 0);
        assert_eq!(before.fsync, "never");
        let outcome = p.checkpoint_tenant("acme", &token).unwrap();
        assert_eq!(outcome.tenant, "acme");
        assert_eq!(outcome.tables, 1);
        assert!(outcome.wal_bytes_folded > 0);
        let after = p.durability_status("acme", &token).unwrap();
        assert_eq!(after.wal_file_len, 0);
        // WAL and checkpoint activity shows up on the metrics endpoint
        let prom = p.admin.telemetry.render_prometheus();
        assert!(prom.contains("odbis_wal_appends_total{tenant=\"acme\"}"));
        assert!(prom.contains("odbis_checkpoints_total{tenant=\"acme\"} 1"));
        // post-checkpoint restart recovers from the snapshot alone
        drop(p);
        let (p2, token2) = boot_durable(&dir);
        let r = p2.sql("acme", &token2, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], odbis_storage::Value::Int(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_platform_reports_durability_unavailable() {
        let p = OdbisPlatform::new();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        assert!(p.workspace("acme").unwrap().durable.is_none());
        let err = p.durability_status("acme", &token).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::Storage(_) | PlatformError::NotFound(_)
        ));
        assert!(p.checkpoint_tenant("acme", &token).is_err());
    }

    #[test]
    fn fsync_policy_comes_from_configuration() {
        let dir = tmp_dir("fsync");
        let p = OdbisPlatform::with_data_dir(dir.clone());
        p.admin
            .config
            .set("durability.fsync", "always".into())
            .unwrap();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        p.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
        let status = p.durability_status("acme", &token).unwrap();
        assert_eq!(status.fsync, "always");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;

    fn boot() -> (OdbisPlatform, String) {
        let p = OdbisPlatform::new();
        p.provision_tenant("acme", "Acme", SubscriptionPlan::standard(), "root", "pw")
            .unwrap();
        let token = p.login("acme", "root", "pw").unwrap();
        (p, token)
    }

    #[test]
    fn gate_spans_link_service_children_into_one_trace() {
        let (p, token) = boot();
        p.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
        p.admin.telemetry.reset();
        p.sql("acme", &token, "SELECT x FROM t").unwrap();
        let spans = p.admin.telemetry.recent_spans();
        let root = spans
            .iter()
            .find(|s| s.service == "MDS" && s.operation == "sql")
            .expect("gate root span");
        assert!(root.parent_id.is_none());
        let child = spans
            .iter()
            .find(|s| s.service == "sql")
            .expect("sql engine child span");
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_eq!(child.tenant, "acme");
    }

    #[test]
    fn telemetry_totals_and_errors_accumulate() {
        let (p, token) = boot();
        p.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
        assert!(p.sql("acme", &token, "SELEKT broken").is_err());
        let totals = p.admin.telemetry.totals();
        let mds = totals
            .get(&("acme".to_string(), "MDS".to_string()))
            .expect("MDS totals");
        assert!(mds.requests >= 2);
        assert!(mds.errors >= 1);
    }

    #[test]
    fn telemetry_can_be_disabled_per_tenant() {
        let (p, token) = boot();
        p.admin
            .config
            .set_for_tenant("acme", "telemetry.enabled", false.into())
            .unwrap();
        p.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
        assert!(p.admin.telemetry.totals().is_empty());
        assert!(p.admin.telemetry.recent_spans().is_empty());
    }

    #[test]
    fn slow_log_honors_configured_threshold() {
        let (p, token) = boot();
        // a 1ms threshold catches any non-trivial statement
        p.admin
            .config
            .set_for_tenant("acme", "telemetry.slow_ms", 1i64.into())
            .unwrap();
        p.sql("acme", &token, "CREATE TABLE t (x INT)").unwrap();
        let mut insert = String::from("INSERT INTO t VALUES (0)");
        for i in 1..20_000 {
            insert.push_str(&format!(", ({i})"));
        }
        p.sql("acme", &token, &insert).unwrap();
        let slow = p.admin.telemetry.slow_log();
        assert!(!slow.is_empty());
        assert_eq!(slow[0].tenant, "acme");
        assert!(slow[0].trace_id > 0);
    }
}
