//! Code generation and deployment: PSM → SQL DDL → running warehouse
//! tables (the CODE viewpoint and the deployment layer of Figure 2).

use std::sync::Arc;

use odbis_metamodel::ModelRepository;
use odbis_sql::Engine;
use odbis_storage::Database;

use crate::MddwsError;

/// Generated artifacts for one PSM model.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedCode {
    /// `CREATE TABLE` statements, one per relational table, in name order.
    pub ddl: Vec<String>,
    /// A skeleton load job (INSERT template) per table — the paper's
    /// observation that "result of a MDA process is a semi-complete system
    /// code", completed in the code-completion activity.
    pub load_skeletons: Vec<String>,
}

impl GeneratedCode {
    /// The DDL as one script.
    pub fn ddl_script(&self) -> String {
        self.ddl.join("\n")
    }
}

/// Generate SQL DDL from a PSM (CWM Relational) model.
pub fn generate_ddl(psm: &ModelRepository) -> Result<GeneratedCode, MddwsError> {
    let errors = psm.validate();
    if let Some(first) = errors.into_iter().next() {
        return Err(MddwsError::InvalidModel(first.to_string()));
    }
    let mut tables: Vec<_> = psm.instances_of("RelationalTable");
    tables.sort_by_key(|t| t.name().to_string());
    if tables.is_empty() {
        return Err(MddwsError::InvalidModel(
            "PSM contains no relational tables".into(),
        ));
    }
    let mut ddl = Vec::new();
    let mut load_skeletons = Vec::new();
    for table in tables {
        let cols = psm
            .resolve_refs(&table.id, "columns")
            .map_err(|e| MddwsError::InvalidModel(e.to_string()))?;
        if cols.is_empty() {
            return Err(MddwsError::InvalidModel(format!(
                "table {} has no columns",
                table.name()
            )));
        }
        let col_defs: Vec<String> = cols
            .iter()
            .map(|c| {
                let ty = c.get_str("sqlType").unwrap_or("TEXT");
                let nullable = c
                    .get("isNullable")
                    .and_then(|v| match v {
                        odbis_metamodel::AttrValue::Bool(b) => Some(*b),
                        _ => None,
                    })
                    .unwrap_or(true);
                format!(
                    "  {} {}{}",
                    c.name(),
                    ty,
                    if nullable { "" } else { " NOT NULL" }
                )
            })
            .collect();
        ddl.push(format!(
            "CREATE TABLE {} (\n{}\n);",
            table.name(),
            col_defs.join(",\n")
        ));
        let names: Vec<&str> = cols.iter().map(|c| c.name()).collect();
        load_skeletons.push(format!(
            "-- TODO(code completion): bind source columns\nINSERT INTO {} ({}) VALUES ({});",
            table.name(),
            names.join(", "),
            names.iter().map(|_| "?").collect::<Vec<_>>().join(", ")
        ));
    }
    Ok(GeneratedCode {
        ddl,
        load_skeletons,
    })
}

/// Deploy generated DDL into a live database (the deployment layer).
/// Returns the created table names.
pub fn deploy(code: &GeneratedCode, db: &Arc<Database>) -> Result<Vec<String>, MddwsError> {
    let engine = Engine::new();
    let mut created = Vec::new();
    for stmt in &code.ddl {
        engine
            .execute(db, stmt)
            .map_err(|e| MddwsError::Deployment(format!("{stmt}: {e}")))?;
        // extract the table name back out of the statement for the report
        if let Some(name) = stmt
            .strip_prefix("CREATE TABLE ")
            .and_then(|s| s.split_whitespace().next())
        {
            created.push(name.to_string());
        }
    }
    Ok(created)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{cim_to_pim, healthcare_cim, pim_metamodel, pim_to_psm, psm_metamodel};

    fn psm() -> ModelRepository {
        let bcim = healthcare_cim();
        let pim = cim_to_pim().execute(&bcim, pim_metamodel(), "pim").unwrap();
        pim_to_psm("ODBIS-STORAGE")
            .execute(&pim.target, psm_metamodel(), "psm")
            .unwrap()
            .target
    }

    #[test]
    fn ddl_generation_from_psm() {
        let code = generate_ddl(&psm()).unwrap();
        assert_eq!(code.ddl.len(), 2);
        let script = code.ddl_script();
        assert!(script.contains("CREATE TABLE fact_admission"));
        assert!(script.contains("cost DOUBLE"));
        assert!(script.contains("admission_day DATE"));
        assert!(script.contains("CREATE TABLE dim_department"));
        assert_eq!(code.load_skeletons.len(), 2);
        assert!(code.load_skeletons[1].contains("INSERT INTO fact_admission"));
    }

    #[test]
    fn deployment_creates_real_tables() {
        let code = generate_ddl(&psm()).unwrap();
        let db = Arc::new(Database::new());
        let created = deploy(&code, &db).unwrap();
        assert_eq!(created, vec!["dim_department", "fact_admission"]);
        assert!(db.has_table("fact_admission"));
        let schema = db.table_schema("fact_admission").unwrap();
        assert_eq!(
            schema.column("cost").unwrap().data_type,
            odbis_storage::DataType::Float
        );
        // deploying twice fails (tables exist)
        assert!(matches!(deploy(&code, &db), Err(MddwsError::Deployment(_))));
    }

    #[test]
    fn empty_or_invalid_models_rejected() {
        let empty = ModelRepository::new("psm", psm_metamodel());
        assert!(matches!(
            generate_ddl(&empty),
            Err(MddwsError::InvalidModel(_))
        ));
        let mut broken = ModelRepository::new("psm", psm_metamodel());
        broken
            .create("RelationalTable", vec![("name", "t".into())])
            .unwrap();
        // table with no columns
        assert!(matches!(
            generate_ddl(&broken),
            Err(MddwsError::InvalidModel(_))
        ));
    }
}
