//! # odbis-mddws
//!
//! The Model-Driven Data Warehouse Service (MDDWS) — the ODBIS design and
//! management layer (§3.2, Figures 2 & 3): an executable implementation of
//! the paper's unified MDA + 2TUP method for developing data warehouses.
//!
//! * [`framework`]: the DW design framework — MDA viewpoints (BCIM, TCIM,
//!   PIM, PDM, PSM, CODE) projected on the DW layers, the business CIM
//!   metamodel, and the standard `cim2pim` / `pim2psm` transformations;
//! * [`qvt`]: a QVT-lite transformation engine with trace links;
//! * [`process`]: the 2TUP engine — functional and technical tracks
//!   converging into realization, iterated per DW layer, risk-driven;
//! * [`codegen`]: PSM → SQL DDL + load skeletons, deployed onto the live
//!   storage engine;
//! * [`DwProject`]: the service facade running the whole Figure 3
//!   pipeline (`begin → BCIM → PIM → PSM → code → test → deploy`).

#![warn(missing_docs)]

pub mod codegen;
pub mod framework;
pub mod process;
pub mod qvt;
mod service;

pub use codegen::{deploy, generate_ddl, GeneratedCode};
pub use framework::{
    cim_metamodel, cim_to_pim, pim_metamodel, pim_to_psm, psm_metamodel, DwLayer, Viewpoint,
};
pub use process::{discipline, Discipline, Iteration, Risk, Track, TwoTrackProcess, DISCIPLINES};
pub use qvt::{
    AttrMapping, MappingRule, QvtError, TraceLink, Transformation, TransformationResult,
};
pub use service::DwProject;

/// Errors raised by the MDDWS layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MddwsError {
    /// A model failed validation.
    InvalidModel(String),
    /// A transformation failed or was incomplete.
    Transformation(String),
    /// 2TUP process-ordering violation.
    Process(String),
    /// Deployment into the warehouse failed.
    Deployment(String),
}

impl std::fmt::Display for MddwsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MddwsError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            MddwsError::Transformation(m) => write!(f, "transformation failed: {m}"),
            MddwsError::Process(m) => write!(f, "process violation: {m}"),
            MddwsError::Deployment(m) => write!(f, "deployment failed: {m}"),
        }
    }
}

impl std::error::Error for MddwsError {}
