//! The MDDWS facade: "a web-based environment to design and manage DW
//! projects using our model driven development approach" (ODBIS §3.1) —
//! here, the programmatic service the web layer exposes.
//!
//! One [`DwProject`] per customer DW: its 2TUP process state, the model
//! repositories per (layer, viewpoint), accumulated QVT traces, and the
//! generated/deployed code. The `derive_*` methods advance the process and
//! run the standard transformations in one step, so the Figure 3 pipeline
//! is executable end to end.

use std::collections::BTreeMap;
use std::sync::Arc;

use odbis_metamodel::ModelRepository;
use odbis_storage::Database;

use crate::codegen::{deploy, generate_ddl, GeneratedCode};
use crate::framework::{cim_to_pim, pim_metamodel, pim_to_psm, psm_metamodel, DwLayer, Viewpoint};
use crate::process::TwoTrackProcess;
use crate::qvt::TraceLink;
use crate::MddwsError;

/// A model-driven data warehouse project.
pub struct DwProject {
    /// Project name.
    pub name: String,
    process: TwoTrackProcess,
    models: BTreeMap<(DwLayer, Viewpoint), ModelRepository>,
    traces: Vec<TraceLink>,
    code: BTreeMap<DwLayer, GeneratedCode>,
}

impl DwProject {
    /// Start a project.
    pub fn new(name: impl Into<String>) -> Self {
        DwProject {
            name: name.into(),
            process: TwoTrackProcess::new(),
            models: BTreeMap::new(),
            traces: Vec::new(),
            code: BTreeMap::new(),
        }
    }

    /// Access the process state.
    pub fn process(&self) -> &TwoTrackProcess {
        &self.process
    }

    /// Mutable process access (risk logging, manual discipline completion).
    pub fn process_mut(&mut self) -> &mut TwoTrackProcess {
        &mut self.process
    }

    /// All accumulated QVT trace links.
    pub fn traces(&self) -> &[TraceLink] {
        &self.traces
    }

    /// The model for a (layer, viewpoint), if designed.
    pub fn model(&self, layer: DwLayer, viewpoint: Viewpoint) -> Option<&ModelRepository> {
        self.models.get(&(layer, viewpoint))
    }

    /// Generated code for a layer, if any.
    pub fn generated(&self, layer: DwLayer) -> Option<&GeneratedCode> {
        self.code.get(&layer)
    }

    /// Begin a layer: starts the 2TUP iteration and completes the
    /// preliminary study and technical-needs disciplines (the shared
    /// up-front work).
    pub fn begin_layer(&mut self, layer: DwLayer) -> Result<(), MddwsError> {
        self.process.start_iteration(layer)?;
        self.process.complete(layer, "preliminary-study", None)?;
        self.process.complete(
            layer,
            "capture-technical-needs",
            Some(format!("{}:tcim", layer.name())),
        )?;
        self.process.complete(
            layer,
            "technical-architecture",
            Some("platform: ODBIS-STORAGE".to_string()),
        )?;
        Ok(())
    }

    /// Submit the business CIM for a layer (output of the functional
    /// requirements capture).
    pub fn submit_bcim(&mut self, layer: DwLayer, bcim: ModelRepository) -> Result<(), MddwsError> {
        let errors = bcim.validate();
        if let Some(first) = errors.into_iter().next() {
            return Err(MddwsError::InvalidModel(first.to_string()));
        }
        self.process
            .complete(layer, "capture-functional-needs", Some(bcim.extent.clone()))?;
        self.models.insert((layer, Viewpoint::BusinessCim), bcim);
        Ok(())
    }

    /// Derive the PIM from the layer's BCIM via the standard `cim2pim`
    /// transformation.
    pub fn derive_pim(&mut self, layer: DwLayer) -> Result<usize, MddwsError> {
        let bcim = self
            .models
            .get(&(layer, Viewpoint::BusinessCim))
            .ok_or_else(|| MddwsError::Process(format!("no BCIM for {}", layer.name())))?;
        let result = cim_to_pim()
            .execute(bcim, pim_metamodel(), &format!("{}-pim", layer.name()))
            .map_err(|e| MddwsError::Transformation(e.to_string()))?;
        if !result.unmatched.is_empty() {
            return Err(MddwsError::Transformation(format!(
                "cim2pim left {} objects unmapped",
                result.unmatched.len()
            )));
        }
        let created = result.traces.len();
        self.process.complete(
            layer,
            "functional-analysis",
            Some(result.target.extent.clone()),
        )?;
        self.traces.extend(result.traces);
        self.models.insert((layer, Viewpoint::Pim), result.target);
        Ok(created)
    }

    /// Derive the PSM by binding the PIM to a platform.
    pub fn derive_psm(&mut self, layer: DwLayer, platform: &str) -> Result<usize, MddwsError> {
        let pim = self
            .models
            .get(&(layer, Viewpoint::Pim))
            .ok_or_else(|| MddwsError::Process(format!("no PIM for {}", layer.name())))?;
        let result = pim_to_psm(platform)
            .execute(pim, psm_metamodel(), &format!("{}-psm", layer.name()))
            .map_err(|e| MddwsError::Transformation(e.to_string()))?;
        let created = result.traces.len();
        self.process
            .complete(layer, "design", Some(result.target.extent.clone()))?;
        self.traces.extend(result.traces);
        self.models.insert((layer, Viewpoint::Psm), result.target);
        Ok(created)
    }

    /// Generate DDL + load skeletons from the layer's PSM.
    pub fn generate_code(&mut self, layer: DwLayer) -> Result<&GeneratedCode, MddwsError> {
        let psm = self
            .models
            .get(&(layer, Viewpoint::Psm))
            .ok_or_else(|| MddwsError::Process(format!("no PSM for {}", layer.name())))?;
        let code = generate_ddl(psm)?;
        self.process.complete(
            layer,
            "coding",
            Some(format!("{} DDL statements", code.ddl.len())),
        )?;
        self.code.insert(layer, code);
        Ok(self.code.get(&layer).expect("just inserted"))
    }

    /// Test the generated code: deploy into a scratch database and verify
    /// every table landed (the 2TUP `test` discipline).
    pub fn test_code(&mut self, layer: DwLayer) -> Result<usize, MddwsError> {
        let code = self
            .code
            .get(&layer)
            .ok_or_else(|| MddwsError::Process(format!("no code for {}", layer.name())))?;
        let scratch = Arc::new(Database::new());
        let created = deploy(code, &scratch)?;
        if created.len() != code.ddl.len() {
            return Err(MddwsError::Deployment(format!(
                "expected {} tables, deployed {}",
                code.ddl.len(),
                created.len()
            )));
        }
        self.process.complete(layer, "test", None)?;
        Ok(created.len())
    }

    /// Deploy the layer's code into the live warehouse database.
    pub fn deploy_layer(
        &mut self,
        layer: DwLayer,
        db: &Arc<Database>,
    ) -> Result<Vec<String>, MddwsError> {
        let code = self
            .code
            .get(&layer)
            .ok_or_else(|| MddwsError::Process(format!("no code for {}", layer.name())))?;
        let created = deploy(code, db)?;
        self.process.complete(layer, "deployment", None)?;
        Ok(created)
    }

    /// Run the entire Figure 3 pipeline for one layer in one call:
    /// begin → BCIM → PIM → PSM → code → test → deploy.
    pub fn run_layer_pipeline(
        &mut self,
        layer: DwLayer,
        bcim: ModelRepository,
        platform: &str,
        db: &Arc<Database>,
    ) -> Result<Vec<String>, MddwsError> {
        self.begin_layer(layer)?;
        self.submit_bcim(layer, bcim)?;
        self.derive_pim(layer)?;
        self.derive_psm(layer, platform)?;
        self.generate_code(layer)?;
        self.test_code(layer)?;
        self.deploy_layer(layer, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::healthcare_cim;

    #[test]
    fn full_pipeline_builds_a_layer() {
        let mut project = DwProject::new("healthcare-dw");
        let db = Arc::new(Database::new());
        let created = project
            .run_layer_pipeline(DwLayer::Warehouse, healthcare_cim(), "ODBIS-STORAGE", &db)
            .unwrap();
        assert_eq!(created.len(), 2);
        assert!(db.has_table("fact_admission"));
        assert!(db.has_table("dim_department"));
        let iter = project.process().iteration(DwLayer::Warehouse).unwrap();
        assert!(iter.is_done());
        // every viewpoint model is retained
        assert!(project
            .model(DwLayer::Warehouse, Viewpoint::BusinessCim)
            .is_some());
        assert!(project.model(DwLayer::Warehouse, Viewpoint::Pim).is_some());
        assert!(project.model(DwLayer::Warehouse, Viewpoint::Psm).is_some());
        // traces span both transformations
        assert!(project.traces().iter().any(|t| t.rule == "fact2table"));
        assert!(project.traces().iter().any(|t| t.rule == "table"));
    }

    #[test]
    fn steps_enforce_prerequisites() {
        let mut project = DwProject::new("p");
        assert!(project.derive_pim(DwLayer::Warehouse).is_err());
        project.begin_layer(DwLayer::Warehouse).unwrap();
        assert!(project.derive_pim(DwLayer::Warehouse).is_err()); // no BCIM yet
        project
            .submit_bcim(DwLayer::Warehouse, healthcare_cim())
            .unwrap();
        assert!(project.derive_psm(DwLayer::Warehouse, "X").is_err()); // no PIM yet
        project.derive_pim(DwLayer::Warehouse).unwrap();
        assert!(project.generate_code(DwLayer::Warehouse).is_err()); // no PSM yet
    }

    #[test]
    fn invalid_bcim_rejected() {
        let mut project = DwProject::new("p");
        project.begin_layer(DwLayer::Warehouse).unwrap();
        let mut bad = healthcare_cim();
        // missing required `kind`
        bad.create("BusinessConcept", vec![("name", "broken".into())])
            .unwrap();
        assert!(matches!(
            project.submit_bcim(DwLayer::Warehouse, bad),
            Err(MddwsError::InvalidModel(_))
        ));
    }

    #[test]
    fn two_layers_iterate_independently() {
        let mut project = DwProject::new("p");
        let db = Arc::new(Database::new());
        project
            .run_layer_pipeline(DwLayer::Warehouse, healthcare_cim(), "ODBIS-STORAGE", &db)
            .unwrap();
        // second layer would redeploy same table names into the same db ->
        // use a mart-specific BCIM
        let mut mart_cim = ModelRepository::new("mart-bcim", crate::framework::cim_metamodel());
        let p = mart_cim
            .create(
                "BusinessProperty",
                vec![("name", "total".into()), ("valueType", "NUMBER".into())],
            )
            .unwrap();
        mart_cim
            .create(
                "BusinessConcept",
                vec![
                    ("name", "dept_kpi".into()),
                    ("kind", "FACT".into()),
                    ("properties", odbis_metamodel::AttrValue::RefList(vec![p])),
                ],
            )
            .unwrap();
        let created = project
            .run_layer_pipeline(DwLayer::Mart, mart_cim, "ODBIS-STORAGE", &db)
            .unwrap();
        assert_eq!(created, vec!["fact_dept_kpi"]);
        let (done, total) = project.process().progress();
        assert_eq!((done, total), (18, 18));
    }
}
