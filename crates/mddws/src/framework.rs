//! The DW design framework: MDA viewpoints projected on the data
//! warehousing architecture (ODBIS Figure 2, design layer), plus the
//! built-in CIM metamodel and the standard CIM→PIM→PSM transformations.

use odbis_metamodel::{cwm, AttrKind, ClassBuilder, MetaModel};

use crate::qvt::{AttrMapping, MappingRule, Transformation};

/// MDA viewpoints used by the DW design framework (M1 models designed
/// during development: "CIM, PIM, PDM, and PSM", ODBIS §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Viewpoint {
    /// Business CIM: computation-independent business concepts.
    BusinessCim,
    /// Technical CIM: platform capabilities and constraints.
    TechnicalCim,
    /// Platform-independent model (logical star schema).
    Pim,
    /// Platform description model (the target platform's traits).
    Pdm,
    /// Platform-specific model (PIM bound to a platform).
    Psm,
    /// Generated code (DDL, job definitions).
    Code,
}

impl Viewpoint {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Viewpoint::BusinessCim => "BCIM",
            Viewpoint::TechnicalCim => "TCIM",
            Viewpoint::Pim => "PIM",
            Viewpoint::Pdm => "PDM",
            Viewpoint::Psm => "PSM",
            Viewpoint::Code => "CODE",
        }
    }
}

/// Layers of the data warehousing architecture each of which is built by
/// one MDA pass (ODBIS Figure 3: "the MDA process is repeated for the
/// construction of each DW layer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DwLayer {
    /// Operational source integration.
    Source,
    /// Staging / ODS.
    Staging,
    /// The core warehouse.
    Warehouse,
    /// Departmental data marts.
    Mart,
    /// OLAP / analysis layer.
    Analysis,
}

impl DwLayer {
    /// All layers in build order.
    pub const ALL: [DwLayer; 5] = [
        DwLayer::Source,
        DwLayer::Staging,
        DwLayer::Warehouse,
        DwLayer::Mart,
        DwLayer::Analysis,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DwLayer::Source => "source",
            DwLayer::Staging => "staging",
            DwLayer::Warehouse => "warehouse",
            DwLayer::Mart => "mart",
            DwLayer::Analysis => "analysis",
        }
    }
}

/// The Business CIM metamodel: facts, dimensions and their business
/// properties, as business analysts describe them before any platform
/// decision.
pub fn cim_metamodel() -> MetaModel {
    let mut m = MetaModel::new("ODBIS-CIM");
    m.add_class(
        ClassBuilder::new("BusinessGoal")
            .required("name", AttrKind::Str)
            .attr("description", AttrKind::Str)
            .attr("measuredBy", AttrKind::RefList("BusinessConcept".into()))
            .build(),
    )
    .expect("static metamodel");
    m.add_class(
        ClassBuilder::new("BusinessProperty")
            .required("name", AttrKind::Str)
            .required(
                "valueType",
                AttrKind::Enum(vec!["NUMBER".into(), "TEXT".into(), "DATE".into()]),
            )
            .build(),
    )
    .expect("static metamodel");
    m.add_class(
        ClassBuilder::new("BusinessConcept")
            .required("name", AttrKind::Str)
            .required(
                "kind",
                AttrKind::Enum(vec!["FACT".into(), "DIMENSION".into()]),
            )
            .attr("properties", AttrKind::RefList("BusinessProperty".into()))
            .build(),
    )
    .expect("static metamodel");
    m
}

/// The PIM metamodel: the CWM Relational package (platform-independent
/// logical schema).
pub fn pim_metamodel() -> MetaModel {
    cwm::relational()
}

/// The PSM metamodel: CWMX — CWM plus platform bindings.
pub fn psm_metamodel() -> MetaModel {
    cwm::cwmx()
}

/// The standard CIM → PIM transformation: business facts become
/// `fact_<name>` tables, dimensions become `dim_<name>` tables, and
/// properties become typed relational columns.
pub fn cim_to_pim() -> Transformation {
    Transformation::new("cim2pim")
        .rule(
            MappingRule::new("property2column", "BusinessProperty", "RelationalColumn")
                .map(AttrMapping::Copy {
                    from: "name".into(),
                    to: "name".into(),
                })
                .map(AttrMapping::Translate {
                    from: "valueType".into(),
                    to: "sqlType".into(),
                    map: vec![
                        ("NUMBER".into(), "DOUBLE".into()),
                        ("TEXT".into(), "TEXT".into()),
                        ("DATE".into(), "DATE".into()),
                    ],
                }),
        )
        .rule(
            MappingRule::new("fact2table", "BusinessConcept", "RelationalTable")
                .when("kind", "FACT")
                .map(AttrMapping::Template {
                    to: "name".into(),
                    template: "fact_{name}".into(),
                })
                .map(AttrMapping::MapRefs {
                    from: "properties".into(),
                    to: "columns".into(),
                }),
        )
        .rule(
            MappingRule::new("dimension2table", "BusinessConcept", "RelationalTable")
                .when("kind", "DIMENSION")
                .map(AttrMapping::Template {
                    to: "name".into(),
                    template: "dim_{name}".into(),
                })
                .map(AttrMapping::MapRefs {
                    from: "properties".into(),
                    to: "columns".into(),
                }),
        )
        .rule(
            // goals carry documentation into the PIM as schema descriptions
            MappingRule::new("goal2schema", "BusinessGoal", "RelationalSchema").map(
                AttrMapping::Copy {
                    from: "name".into(),
                    to: "name".into(),
                },
            ),
        )
}

/// The PIM → PSM transformation for the `ODBIS-STORAGE` platform: the
/// relational model is copied and each table gains a platform binding.
pub fn pim_to_psm(platform: &str) -> Transformation {
    Transformation::new("pim2psm")
        .rule(
            MappingRule::new("column", "RelationalColumn", "RelationalColumn")
                .map(AttrMapping::Copy {
                    from: "name".into(),
                    to: "name".into(),
                })
                .map(AttrMapping::Copy {
                    from: "sqlType".into(),
                    to: "sqlType".into(),
                }),
        )
        .rule(
            MappingRule::new("table", "RelationalTable", "RelationalTable")
                .map(AttrMapping::Copy {
                    from: "name".into(),
                    to: "name".into(),
                })
                .map(AttrMapping::MapRefs {
                    from: "columns".into(),
                    to: "columns".into(),
                })
                .map(AttrMapping::Const {
                    to: "description".into(),
                    value: format!("bound to platform {platform}").into(),
                }),
        )
        .rule(
            MappingRule::new("schema", "RelationalSchema", "RelationalSchema").map(
                AttrMapping::Copy {
                    from: "name".into(),
                    to: "name".into(),
                },
            ),
        )
}

#[cfg(test)]
pub(crate) use tests::healthcare_cim;

#[cfg(test)]
mod tests {
    use super::*;
    use odbis_metamodel::{AttrValue, ModelRepository};

    /// Build a small healthcare BCIM (the paper's Figure 6 domain).
    pub fn healthcare_cim() -> ModelRepository {
        let mut repo = ModelRepository::new("bcim", cim_metamodel());
        let cost = repo
            .create(
                "BusinessProperty",
                vec![("name", "cost".into()), ("valueType", "NUMBER".into())],
            )
            .unwrap();
        let day = repo
            .create(
                "BusinessProperty",
                vec![
                    ("name", "admission_day".into()),
                    ("valueType", "DATE".into()),
                ],
            )
            .unwrap();
        let dept_name = repo
            .create(
                "BusinessProperty",
                vec![("name", "dept_name".into()), ("valueType", "TEXT".into())],
            )
            .unwrap();
        let fact = repo
            .create(
                "BusinessConcept",
                vec![
                    ("name", "admission".into()),
                    ("kind", "FACT".into()),
                    ("properties", AttrValue::RefList(vec![cost, day])),
                ],
            )
            .unwrap();
        repo.create(
            "BusinessConcept",
            vec![
                ("name", "department".into()),
                ("kind", "DIMENSION".into()),
                ("properties", AttrValue::RefList(vec![dept_name])),
            ],
        )
        .unwrap();
        repo.create(
            "BusinessGoal",
            vec![
                ("name", "reduce_cost_per_admission".into()),
                ("measuredBy", AttrValue::RefList(vec![fact])),
            ],
        )
        .unwrap();
        repo
    }

    #[test]
    fn cim_to_pim_produces_valid_star_schema_model() {
        let bcim = healthcare_cim();
        assert!(bcim.validate().is_empty());
        let result = cim_to_pim().execute(&bcim, pim_metamodel(), "pim").unwrap();
        assert!(
            result.unmatched.is_empty(),
            "unmatched: {:?}",
            result.unmatched
        );
        assert!(result.target.validate().is_empty());
        let tables: Vec<&str> = result
            .target
            .instances_of("RelationalTable")
            .iter()
            .map(|t| t.name())
            .collect();
        assert!(tables.contains(&"fact_admission"));
        assert!(tables.contains(&"dim_department"));
        let cols = result.target.instances_of("RelationalColumn");
        assert_eq!(cols.len(), 3);
        assert!(cols
            .iter()
            .any(|c| c.name() == "cost" && c.get_str("sqlType") == Some("DOUBLE")));
    }

    #[test]
    fn pim_to_psm_binds_platform() {
        let bcim = healthcare_cim();
        let pim = cim_to_pim().execute(&bcim, pim_metamodel(), "pim").unwrap();
        let psm = pim_to_psm("ODBIS-STORAGE")
            .execute(&pim.target, psm_metamodel(), "psm")
            .unwrap();
        assert!(psm.target.validate().is_empty());
        let tables = psm.target.instances_of("RelationalTable");
        assert_eq!(tables.len(), 2);
        for t in tables {
            assert!(t.get_str("description").unwrap().contains("ODBIS-STORAGE"));
        }
    }

    #[test]
    fn viewpoint_and_layer_names() {
        assert_eq!(Viewpoint::BusinessCim.name(), "BCIM");
        assert_eq!(Viewpoint::Code.name(), "CODE");
        assert_eq!(DwLayer::ALL.len(), 5);
        assert_eq!(DwLayer::Warehouse.name(), "warehouse");
    }
}
