//! The 2TUP engineering process engine (ODBIS Figure 3): two tracks —
//! functional and technical — converging into a realization track, applied
//! iteratively per DW layer.

use std::collections::BTreeMap;

use crate::framework::{DwLayer, Viewpoint};
use crate::MddwsError;

/// The three 2TUP tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// Business/functional branch (left track).
    Functional,
    /// Technical branch (right track).
    Technical,
    /// Merged realization branch.
    Realization,
}

/// A 2TUP discipline, ordered within its track. Disciplines that produce a
/// model artifact name their viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Discipline {
    /// Discipline name.
    pub name: &'static str,
    /// Track the discipline belongs to.
    pub track: Track,
    /// Position within the track (0-based).
    pub order: usize,
    /// Viewpoint artifact produced, if any.
    pub produces: Option<Viewpoint>,
}

/// The 2TUP discipline catalogue, aligned with the MDA transformation
/// process as in the paper's Figure 3.
pub const DISCIPLINES: [Discipline; 9] = [
    Discipline {
        name: "preliminary-study",
        track: Track::Functional,
        order: 0,
        produces: None,
    },
    Discipline {
        name: "capture-functional-needs",
        track: Track::Functional,
        order: 1,
        produces: Some(Viewpoint::BusinessCim),
    },
    Discipline {
        name: "functional-analysis",
        track: Track::Functional,
        order: 2,
        produces: Some(Viewpoint::Pim),
    },
    Discipline {
        name: "capture-technical-needs",
        track: Track::Technical,
        order: 0,
        produces: Some(Viewpoint::TechnicalCim),
    },
    Discipline {
        name: "technical-architecture",
        track: Track::Technical,
        order: 1,
        produces: Some(Viewpoint::Pdm),
    },
    Discipline {
        name: "design",
        track: Track::Realization,
        order: 0,
        produces: Some(Viewpoint::Psm),
    },
    Discipline {
        name: "coding",
        track: Track::Realization,
        order: 1,
        produces: Some(Viewpoint::Code),
    },
    Discipline {
        name: "test",
        track: Track::Realization,
        order: 2,
        produces: None,
    },
    Discipline {
        name: "deployment",
        track: Track::Realization,
        order: 3,
        produces: None,
    },
];

/// Find a discipline by name.
pub fn discipline(name: &str) -> Option<&'static Discipline> {
    DISCIPLINES.iter().find(|d| d.name == name)
}

/// A logged project risk (2TUP is risk-driven).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Risk {
    /// Free-form description.
    pub description: String,
    /// 1 (minor) ..= 5 (project-threatening).
    pub severity: u8,
    /// Whether the risk has been mitigated.
    pub mitigated: bool,
}

/// One iteration: building the components of one DW layer.
#[derive(Debug, Clone, Default)]
pub struct Iteration {
    completed: Vec<&'static str>,
    artifacts: BTreeMap<Viewpoint, String>,
    risks: Vec<Risk>,
}

impl Iteration {
    /// Disciplines completed so far, in completion order.
    pub fn completed(&self) -> &[&'static str] {
        &self.completed
    }

    /// Artifact reference (extent name / script) per produced viewpoint.
    pub fn artifact(&self, v: Viewpoint) -> Option<&str> {
        self.artifacts.get(&v).map(String::as_str)
    }

    /// Logged risks.
    pub fn risks(&self) -> &[Risk] {
        &self.risks
    }

    fn track_done(&self, track: Track) -> bool {
        DISCIPLINES
            .iter()
            .filter(|d| d.track == track)
            .all(|d| self.completed.contains(&d.name))
    }

    /// Milestone: the whole iteration is done.
    pub fn is_done(&self) -> bool {
        self.track_done(Track::Functional)
            && self.track_done(Track::Technical)
            && self.track_done(Track::Realization)
    }
}

/// The engineering process for one DW project: one [`Iteration`] per layer,
/// discipline ordering enforced.
#[derive(Debug, Default)]
pub struct TwoTrackProcess {
    iterations: BTreeMap<DwLayer, Iteration>,
}

impl TwoTrackProcess {
    /// Fresh process with no iterations started.
    pub fn new() -> Self {
        TwoTrackProcess::default()
    }

    /// Start the iteration for a layer.
    pub fn start_iteration(&mut self, layer: DwLayer) -> Result<(), MddwsError> {
        if self.iterations.contains_key(&layer) {
            return Err(MddwsError::Process(format!(
                "iteration for layer {} already started",
                layer.name()
            )));
        }
        self.iterations.insert(layer, Iteration::default());
        Ok(())
    }

    /// The iteration for a layer.
    pub fn iteration(&self, layer: DwLayer) -> Result<&Iteration, MddwsError> {
        self.iterations.get(&layer).ok_or_else(|| {
            MddwsError::Process(format!("no iteration started for {}", layer.name()))
        })
    }

    /// Complete a discipline in a layer's iteration, optionally recording
    /// the produced artifact. Enforces:
    ///
    /// * within a track, disciplines complete in order;
    /// * realization disciplines require both feeding tracks to be done
    ///   (the 2TUP convergence point);
    /// * a discipline completes at most once.
    pub fn complete(
        &mut self,
        layer: DwLayer,
        name: &str,
        artifact: Option<String>,
    ) -> Result<(), MddwsError> {
        let d = discipline(name)
            .ok_or_else(|| MddwsError::Process(format!("unknown discipline {name}")))?;
        let iter = self.iterations.get_mut(&layer).ok_or_else(|| {
            MddwsError::Process(format!("no iteration started for {}", layer.name()))
        })?;
        if iter.completed.contains(&d.name) {
            return Err(MddwsError::Process(format!(
                "discipline {name} already completed for {}",
                layer.name()
            )));
        }
        // in-track predecessor check
        for p in DISCIPLINES
            .iter()
            .filter(|p| p.track == d.track && p.order < d.order)
        {
            if !iter.completed.contains(&p.name) {
                return Err(MddwsError::Process(format!(
                    "{name} requires {} to be completed first",
                    p.name
                )));
            }
        }
        // convergence: realization requires both tracks
        if d.track == Track::Realization
            && !(iter.track_done(Track::Functional) && iter.track_done(Track::Technical))
        {
            return Err(MddwsError::Process(format!(
                "{name} requires both functional and technical tracks to be complete"
            )));
        }
        iter.completed.push(d.name);
        if let (Some(v), Some(a)) = (d.produces, artifact) {
            iter.artifacts.insert(v, a);
        }
        Ok(())
    }

    /// Log a risk against a layer's iteration.
    pub fn log_risk(
        &mut self,
        layer: DwLayer,
        description: &str,
        severity: u8,
    ) -> Result<(), MddwsError> {
        let iter = self.iterations.get_mut(&layer).ok_or_else(|| {
            MddwsError::Process(format!("no iteration started for {}", layer.name()))
        })?;
        iter.risks.push(Risk {
            description: description.to_string(),
            severity: severity.clamp(1, 5),
            mitigated: false,
        });
        Ok(())
    }

    /// Mark the first unmitigated risk matching `needle` as mitigated.
    pub fn mitigate_risk(&mut self, layer: DwLayer, needle: &str) -> Result<bool, MddwsError> {
        let iter = self.iterations.get_mut(&layer).ok_or_else(|| {
            MddwsError::Process(format!("no iteration started for {}", layer.name()))
        })?;
        for r in &mut iter.risks {
            if !r.mitigated && r.description.contains(needle) {
                r.mitigated = true;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Overall progress: completed / total disciplines across started
    /// iterations.
    pub fn progress(&self) -> (usize, usize) {
        let done: usize = self.iterations.values().map(|i| i.completed.len()).sum();
        let total = self.iterations.len() * DISCIPLINES.len();
        (done, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tracks(p: &mut TwoTrackProcess, layer: DwLayer) {
        for d in [
            "preliminary-study",
            "capture-functional-needs",
            "functional-analysis",
            "capture-technical-needs",
            "technical-architecture",
        ] {
            p.complete(layer, d, Some(format!("{d}-artifact"))).unwrap();
        }
    }

    #[test]
    fn full_iteration_in_order() {
        let mut p = TwoTrackProcess::new();
        p.start_iteration(DwLayer::Warehouse).unwrap();
        run_tracks(&mut p, DwLayer::Warehouse);
        for d in ["design", "coding", "test", "deployment"] {
            p.complete(DwLayer::Warehouse, d, None).unwrap();
        }
        let iter = p.iteration(DwLayer::Warehouse).unwrap();
        assert!(iter.is_done());
        assert_eq!(iter.completed().len(), DISCIPLINES.len());
        assert_eq!(
            iter.artifact(Viewpoint::Pim),
            Some("functional-analysis-artifact")
        );
        assert_eq!(p.progress(), (9, 9));
    }

    #[test]
    fn in_track_ordering_enforced() {
        let mut p = TwoTrackProcess::new();
        p.start_iteration(DwLayer::Warehouse).unwrap();
        let err = p
            .complete(DwLayer::Warehouse, "functional-analysis", None)
            .unwrap_err();
        assert!(err.to_string().contains("requires preliminary-study"));
    }

    #[test]
    fn realization_requires_both_tracks() {
        let mut p = TwoTrackProcess::new();
        p.start_iteration(DwLayer::Warehouse).unwrap();
        // only functional track done
        for d in [
            "preliminary-study",
            "capture-functional-needs",
            "functional-analysis",
        ] {
            p.complete(DwLayer::Warehouse, d, None).unwrap();
        }
        let err = p.complete(DwLayer::Warehouse, "design", None).unwrap_err();
        assert!(err.to_string().contains("both"));
        // finish technical track, then design is allowed
        p.complete(DwLayer::Warehouse, "capture-technical-needs", None)
            .unwrap();
        p.complete(DwLayer::Warehouse, "technical-architecture", None)
            .unwrap();
        p.complete(DwLayer::Warehouse, "design", None).unwrap();
    }

    #[test]
    fn double_completion_and_unknown_disciplines() {
        let mut p = TwoTrackProcess::new();
        p.start_iteration(DwLayer::Mart).unwrap();
        p.complete(DwLayer::Mart, "preliminary-study", None)
            .unwrap();
        assert!(p
            .complete(DwLayer::Mart, "preliminary-study", None)
            .is_err());
        assert!(p.complete(DwLayer::Mart, "vibing", None).is_err());
        assert!(p
            .complete(DwLayer::Source, "preliminary-study", None)
            .is_err());
        assert!(p.start_iteration(DwLayer::Mart).is_err());
    }

    #[test]
    fn iterations_are_independent_per_layer() {
        let mut p = TwoTrackProcess::new();
        p.start_iteration(DwLayer::Staging).unwrap();
        p.start_iteration(DwLayer::Warehouse).unwrap();
        p.complete(DwLayer::Staging, "preliminary-study", None)
            .unwrap();
        assert_eq!(
            p.iteration(DwLayer::Warehouse).unwrap().completed().len(),
            0
        );
        assert_eq!(p.progress(), (1, 18));
    }

    #[test]
    fn risk_logging_and_mitigation() {
        let mut p = TwoTrackProcess::new();
        p.start_iteration(DwLayer::Warehouse).unwrap();
        p.log_risk(DwLayer::Warehouse, "source data quality unknown", 9)
            .unwrap();
        let iter = p.iteration(DwLayer::Warehouse).unwrap();
        assert_eq!(iter.risks()[0].severity, 5); // clamped
        assert!(p.mitigate_risk(DwLayer::Warehouse, "data quality").unwrap());
        assert!(!p.mitigate_risk(DwLayer::Warehouse, "data quality").unwrap());
        assert!(p.iteration(DwLayer::Warehouse).unwrap().risks()[0].mitigated);
    }
}
