//! QVT-lite: declarative model-to-model transformations with trace links.
//!
//! The MDA transformation process of ODBIS §3.2 derives each viewpoint
//! from the previous one "using Query View Transformation (QVT)". This
//! module provides the executable equivalent: transformations are sets of
//! declarative mapping rules from source metaclasses to target
//! metaclasses; execution records a [`TraceLink`] per created object, and
//! reference attributes are resolved through the trace in a second pass —
//! the QVT-Relations trace-model idea.

use std::collections::HashMap;

use odbis_metamodel::{AttrValue, MetaModel, ModelError, ModelRepository};

/// Transformation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum QvtError {
    /// Underlying model/metamodel error.
    Model(ModelError),
    /// A mapping referenced an attribute missing on a source object.
    #[allow(missing_docs)] // self-documenting
    MissingSource { object: String, attribute: String },
    /// A referenced object has no trace-mapped counterpart in the target.
    #[allow(missing_docs)] // self-documenting
    Untraced { source: String },
    /// Transformation definition error.
    Definition(String),
}

impl std::fmt::Display for QvtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QvtError::Model(e) => write!(f, "model error: {e}"),
            QvtError::MissingSource { object, attribute } => {
                write!(f, "source {object} lacks attribute {attribute}")
            }
            QvtError::Untraced { source } => {
                write!(f, "no trace for referenced source object {source}")
            }
            QvtError::Definition(m) => write!(f, "transformation definition error: {m}"),
        }
    }
}

impl std::error::Error for QvtError {}

impl From<ModelError> for QvtError {
    fn from(e: ModelError) -> Self {
        QvtError::Model(e)
    }
}

/// How one target attribute gets its value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrMapping {
    /// Copy a source attribute verbatim.
    Copy {
        /// Source attribute.
        from: String,
        /// Target attribute.
        to: String,
    },
    /// Set a constant.
    Const {
        /// Target attribute.
        to: String,
        /// Constant value.
        value: AttrValue,
    },
    /// Build a string from a template; `{attr}` substitutes source string
    /// attributes (e.g. `"fact_{name}"`).
    Template {
        /// Target attribute.
        to: String,
        /// Template text.
        template: String,
    },
    /// Map a `Ref`/`RefList` attribute through the trace: each referenced
    /// source object is replaced by its transformed counterpart.
    MapRefs {
        /// Source reference attribute.
        from: String,
        /// Target reference attribute.
        to: String,
    },
    /// Translate a source enum/string value through a lookup table,
    /// falling back to the source value when unlisted.
    Translate {
        /// Source attribute.
        from: String,
        /// Target attribute.
        to: String,
        /// `(source literal, target literal)` pairs.
        map: Vec<(String, String)>,
    },
}

/// One mapping rule: source metaclass → target metaclass.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingRule {
    /// Rule name (appears in traces).
    pub name: String,
    /// Source metaclass (subclasses match too).
    pub source_class: String,
    /// Target metaclass to instantiate.
    pub target_class: String,
    /// Optional guard: only sources whose `attr` equals `value` match.
    pub guard: Option<(String, AttrValue)>,
    /// Attribute mappings.
    pub mappings: Vec<AttrMapping>,
}

impl MappingRule {
    /// Start a rule.
    pub fn new(
        name: impl Into<String>,
        source_class: impl Into<String>,
        target_class: impl Into<String>,
    ) -> Self {
        MappingRule {
            name: name.into(),
            source_class: source_class.into(),
            target_class: target_class.into(),
            guard: None,
            mappings: Vec::new(),
        }
    }

    /// Add a guard.
    pub fn when(mut self, attr: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.guard = Some((attr.into(), value.into()));
        self
    }

    /// Add a mapping.
    pub fn map(mut self, m: AttrMapping) -> Self {
        self.mappings.push(m);
        self
    }

    fn matches(&self, repo: &ModelRepository, obj: &odbis_metamodel::ModelObject) -> bool {
        if !repo.metamodel().is_kind_of(&obj.class, &self.source_class) {
            return false;
        }
        match &self.guard {
            None => true,
            Some((attr, value)) => obj.get(attr) == Some(value),
        }
    }
}

/// A trace link: which rule turned which source object into which target.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLink {
    /// Rule that fired.
    pub rule: String,
    /// Source object id.
    pub source: String,
    /// Created target object id.
    pub target: String,
}

/// A named model-to-model transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct Transformation {
    /// Transformation name (e.g. `cim2pim`).
    pub name: String,
    /// Mapping rules, tried in order; the first matching rule per source
    /// object wins.
    pub rules: Vec<MappingRule>,
}

/// Result of executing a transformation.
pub struct TransformationResult {
    /// The produced target model.
    pub target: ModelRepository,
    /// One trace link per created object.
    pub traces: Vec<TraceLink>,
    /// Source objects no rule matched (not an error: transformations may
    /// be partial, but callers can assert completeness).
    pub unmatched: Vec<String>,
}

impl Transformation {
    /// Create an empty transformation.
    pub fn new(name: impl Into<String>) -> Self {
        Transformation {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// Add a rule.
    pub fn rule(mut self, rule: MappingRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Execute against `source`, producing a target extent over
    /// `target_metamodel`.
    ///
    /// Pass 1 creates target objects with non-reference attributes and
    /// records traces; pass 2 resolves `MapRefs` mappings through the
    /// trace.
    pub fn execute(
        &self,
        source: &ModelRepository,
        target_metamodel: MetaModel,
        target_extent: &str,
    ) -> Result<TransformationResult, QvtError> {
        let mut target = ModelRepository::new(target_extent, target_metamodel);
        let mut traces = Vec::new();
        let mut trace_map: HashMap<String, String> = HashMap::new();
        let mut unmatched = Vec::new();
        // deferred reference fixups: (target id, target attr, source refs, is_list)
        let mut fixups: Vec<(String, String, Vec<String>, bool)> = Vec::new();

        for obj in source.objects() {
            let Some(rule) = self.rules.iter().find(|r| r.matches(source, obj)) else {
                unmatched.push(obj.id.clone());
                continue;
            };
            let mut attrs: Vec<(String, AttrValue)> = Vec::new();
            let mut deferred: Vec<(String, Vec<String>, bool)> = Vec::new();
            for m in &rule.mappings {
                match m {
                    AttrMapping::Copy { from, to } => {
                        let v = obj
                            .get(from)
                            .cloned()
                            .ok_or_else(|| QvtError::MissingSource {
                                object: obj.id.clone(),
                                attribute: from.clone(),
                            })?;
                        attrs.push((to.clone(), v));
                    }
                    AttrMapping::Const { to, value } => {
                        attrs.push((to.clone(), value.clone()));
                    }
                    AttrMapping::Template { to, template } => {
                        attrs.push((to.clone(), AttrValue::Str(render_template(template, obj))));
                    }
                    AttrMapping::Translate { from, to, map } => {
                        let v = obj
                            .get(from)
                            .cloned()
                            .ok_or_else(|| QvtError::MissingSource {
                                object: obj.id.clone(),
                                attribute: from.clone(),
                            })?;
                        let out = match &v {
                            AttrValue::Str(s) => map
                                .iter()
                                .find(|(k, _)| k == s)
                                .map(|(_, t)| AttrValue::Str(t.clone()))
                                .unwrap_or(v),
                            _ => v,
                        };
                        attrs.push((to.clone(), out));
                    }
                    AttrMapping::MapRefs { from, to } => match obj.get(from) {
                        None => {}
                        Some(AttrValue::Ref(r)) => {
                            deferred.push((to.clone(), vec![r.clone()], false));
                        }
                        Some(AttrValue::RefList(rs)) => {
                            deferred.push((to.clone(), rs.clone(), true));
                        }
                        Some(_) => {
                            return Err(QvtError::Definition(format!(
                                "MapRefs source {from} is not a reference attribute"
                            )))
                        }
                    },
                }
            }
            let attr_refs: Vec<(&str, AttrValue)> =
                attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            let target_id = target.create(&rule.target_class, attr_refs)?;
            trace_map.insert(obj.id.clone(), target_id.clone());
            traces.push(TraceLink {
                rule: rule.name.clone(),
                source: obj.id.clone(),
                target: target_id.clone(),
            });
            for (to, sources, is_list) in deferred {
                fixups.push((target_id.clone(), to, sources, is_list));
            }
        }

        // pass 2: resolve references through the trace
        for (target_id, attr, sources, is_list) in fixups {
            let mapped: Result<Vec<String>, QvtError> = sources
                .iter()
                .map(|s| {
                    trace_map
                        .get(s)
                        .cloned()
                        .ok_or_else(|| QvtError::Untraced { source: s.clone() })
                })
                .collect();
            let mapped = mapped?;
            let value = if is_list {
                AttrValue::RefList(mapped)
            } else {
                AttrValue::Ref(mapped.into_iter().next().expect("single ref"))
            };
            target.set(&target_id, &attr, value)?;
        }

        Ok(TransformationResult {
            target,
            traces,
            unmatched,
        })
    }
}

fn render_template(template: &str, obj: &odbis_metamodel::ModelObject) -> String {
    let mut out = template.to_string();
    for (k, v) in &obj.attrs {
        if let AttrValue::Str(s) = v {
            out = out.replace(&format!("{{{k}}}"), s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbis_metamodel::{AttrKind, ClassBuilder};

    fn source_mm() -> MetaModel {
        let mut m = MetaModel::new("Src");
        m.add_class(
            ClassBuilder::new("Concept")
                .required("name", AttrKind::Str)
                .attr("kind", AttrKind::Enum(vec!["FACT".into(), "DIM".into()]))
                .attr("parts", AttrKind::RefList("Part".into()))
                .build(),
        )
        .unwrap();
        m.add_class(
            ClassBuilder::new("Part")
                .required("name", AttrKind::Str)
                .attr(
                    "vtype",
                    AttrKind::Enum(vec!["NUMBER".into(), "TEXT".into()]),
                )
                .build(),
        )
        .unwrap();
        m
    }

    fn target_mm() -> MetaModel {
        let mut m = MetaModel::new("Tgt");
        m.add_class(
            ClassBuilder::new("Table")
                .required("name", AttrKind::Str)
                .attr("columns", AttrKind::RefList("Col".into()))
                .build(),
        )
        .unwrap();
        m.add_class(
            ClassBuilder::new("Col")
                .required("name", AttrKind::Str)
                .attr("sqlType", AttrKind::Str)
                .build(),
        )
        .unwrap();
        m
    }

    fn source_repo() -> ModelRepository {
        let mut repo = ModelRepository::new("src", source_mm());
        let p1 = repo
            .create(
                "Part",
                vec![("name", "amount".into()), ("vtype", "NUMBER".into())],
            )
            .unwrap();
        let p2 = repo
            .create(
                "Part",
                vec![("name", "label".into()), ("vtype", "TEXT".into())],
            )
            .unwrap();
        repo.create(
            "Concept",
            vec![
                ("name", "sales".into()),
                ("kind", "FACT".into()),
                ("parts", AttrValue::RefList(vec![p1, p2])),
            ],
        )
        .unwrap();
        repo
    }

    fn transformation() -> Transformation {
        Transformation::new("concept2table")
            .rule(
                MappingRule::new("part2col", "Part", "Col")
                    .map(AttrMapping::Copy {
                        from: "name".into(),
                        to: "name".into(),
                    })
                    .map(AttrMapping::Translate {
                        from: "vtype".into(),
                        to: "sqlType".into(),
                        map: vec![
                            ("NUMBER".into(), "DOUBLE".into()),
                            ("TEXT".into(), "TEXT".into()),
                        ],
                    }),
            )
            .rule(
                MappingRule::new("fact2table", "Concept", "Table")
                    .when("kind", "FACT")
                    .map(AttrMapping::Template {
                        to: "name".into(),
                        template: "fact_{name}".into(),
                    })
                    .map(AttrMapping::MapRefs {
                        from: "parts".into(),
                        to: "columns".into(),
                    }),
            )
    }

    #[test]
    fn transformation_creates_objects_and_traces() {
        let src = source_repo();
        let result = transformation().execute(&src, target_mm(), "tgt").unwrap();
        assert!(result.unmatched.is_empty());
        assert_eq!(result.traces.len(), 3);
        let tables = result.target.instances_of("Table");
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name(), "fact_sales");
        // references resolved through trace
        let cols = result
            .target
            .resolve_refs(&tables[0].id, "columns")
            .unwrap();
        assert_eq!(cols.len(), 2);
        let amount = cols.iter().find(|c| c.name() == "amount").unwrap();
        assert_eq!(amount.get_str("sqlType"), Some("DOUBLE"));
        // the target model validates
        assert!(result.target.validate().is_empty());
    }

    #[test]
    fn trace_completeness() {
        let src = source_repo();
        let result = transformation().execute(&src, target_mm(), "tgt").unwrap();
        // every source object appears in exactly one trace
        for obj in src.objects() {
            assert_eq!(
                result.traces.iter().filter(|t| t.source == obj.id).count(),
                1,
                "object {} should be traced exactly once",
                obj.id
            );
        }
    }

    #[test]
    fn guards_select_rules_and_unmatched_is_reported() {
        let mut src = source_repo();
        src.create(
            "Concept",
            vec![("name", "store".into()), ("kind", "DIM".into())],
        )
        .unwrap();
        let result = transformation().execute(&src, target_mm(), "tgt").unwrap();
        // DIM concept matches no rule
        assert_eq!(result.unmatched.len(), 1);
        assert_eq!(result.target.instances_of("Table").len(), 1);
    }

    #[test]
    fn missing_source_attribute_errors() {
        let mut repo = ModelRepository::new("src", source_mm());
        repo.create("Part", vec![("name", "x".into())]).unwrap(); // no vtype
        let t = Transformation::new("t").rule(MappingRule::new("r", "Part", "Col").map(
            AttrMapping::Translate {
                from: "vtype".into(),
                to: "sqlType".into(),
                map: vec![],
            },
        ));
        assert!(matches!(
            t.execute(&repo, target_mm(), "tgt"),
            Err(QvtError::MissingSource { .. })
        ));
    }

    #[test]
    fn untraced_reference_errors() {
        let src = source_repo();
        // only map the Concept, not the Parts → refs cannot resolve
        let t = Transformation::new("broken").rule(
            MappingRule::new("fact2table", "Concept", "Table")
                .map(AttrMapping::Copy {
                    from: "name".into(),
                    to: "name".into(),
                })
                .map(AttrMapping::MapRefs {
                    from: "parts".into(),
                    to: "columns".into(),
                }),
        );
        assert!(matches!(
            t.execute(&src, target_mm(), "tgt"),
            Err(QvtError::Untraced { .. })
        ));
    }

    #[test]
    fn template_rendering() {
        let mut repo = ModelRepository::new("s", source_mm());
        let id = repo
            .create(
                "Part",
                vec![("name", "qty".into()), ("vtype", "NUMBER".into())],
            )
            .unwrap();
        let obj = repo.get(&id).unwrap();
        assert_eq!(render_template("col_{name}_{vtype}", obj), "col_qty_NUMBER");
        assert_eq!(render_template("{missing}", obj), "{missing}");
    }
}
