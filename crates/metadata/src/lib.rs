//! # odbis-metadata
//!
//! The Meta-Data Service (MDS) — the first of the five core business
//! intelligence services in the ODBIS architecture (§3.1): it "allows
//! meta-data and business information definition to facilitate information
//! sharing and exchange between all services".
//!
//! * [`DataSource`] — connection descriptors resolved to live database
//!   handles;
//! * [`DataSet`] — named SQL query abstractions reused by the integration,
//!   analysis and reporting services (experiment C3);
//! * [`Glossary`] — business terms stored as CWM `Term` instances, mapped
//!   onto technical metadata and exchangeable via XMI;
//! * lineage extraction and cross-metadata search.

#![warn(missing_docs)]

mod glossary;
mod service;

pub use glossary::Glossary;
pub use service::{DataSet, DataSource, MetadataError, MetadataResult, MetadataService};
