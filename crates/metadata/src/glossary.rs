//! Business glossary backed by the CWM BusinessNomenclature metamodel.

use odbis_metamodel::{cwm, AttrValue, ModelRepository};

use crate::service::{MetadataError, MetadataResult};

/// The business glossary: terms with definitions, related-term links and
/// mappings onto technical metadata (data sets). Terms are stored as M1
/// instances of the CWM `Term` metaclass, so the glossary is itself
/// exchangeable via XMI.
#[derive(Debug, Clone)]
pub struct Glossary {
    repo: ModelRepository,
}

impl Default for Glossary {
    fn default() -> Self {
        Glossary::new()
    }
}

impl Glossary {
    /// Empty glossary.
    pub fn new() -> Self {
        Glossary {
            repo: ModelRepository::new("glossary", cwm::business_nomenclature()),
        }
    }

    /// Define a term; `mapped_dataset` links it to a technical data set.
    pub fn define_term(
        &mut self,
        name: &str,
        definition: &str,
        mapped_dataset: Option<&str>,
    ) -> MetadataResult<String> {
        if self.find_term(name).is_some() {
            return Err(MetadataError::AlreadyExists(format!("term {name}")));
        }
        let mut attrs = vec![
            ("name", AttrValue::from(name)),
            ("definition", AttrValue::from(definition)),
        ];
        if let Some(ds) = mapped_dataset {
            attrs.push(("mappedElement", AttrValue::from(ds)));
        }
        self.repo
            .create("Term", attrs)
            .map_err(|e| MetadataError::Storage(e.to_string()))
    }

    /// Relate two existing terms (bidirectional is the caller's choice).
    pub fn relate(&mut self, from: &str, to: &str) -> MetadataResult<()> {
        let from_id = self
            .find_term(from)
            .ok_or_else(|| MetadataError::NotFound(format!("term {from}")))?;
        let to_id = self
            .find_term(to)
            .ok_or_else(|| MetadataError::NotFound(format!("term {to}")))?;
        self.repo
            .add_ref(&from_id, "relatedTerms", &to_id)
            .map_err(|e| MetadataError::Storage(e.to_string()))
    }

    fn find_term(&self, name: &str) -> Option<String> {
        self.repo
            .instances_of("Term")
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(name))
            .map(|t| t.id.clone())
    }

    /// A term's definition.
    pub fn definition(&self, name: &str) -> Option<String> {
        let id = self.find_term(name)?;
        self.repo
            .get(&id)
            .ok()
            .and_then(|t| t.get_str("definition").map(String::from))
    }

    /// The data set a term maps onto.
    pub fn mapped_dataset(&self, name: &str) -> Option<String> {
        let id = self.find_term(name)?;
        self.repo
            .get(&id)
            .ok()
            .and_then(|t| t.get_str("mappedElement").map(String::from))
    }

    /// Names of terms related to `name`.
    pub fn related_terms(&self, name: &str) -> Vec<String> {
        let Some(id) = self.find_term(name) else {
            return Vec::new();
        };
        self.repo
            .resolve_refs(&id, "relatedTerms")
            .map(|ts| ts.iter().map(|t| t.name().to_string()).collect())
            .unwrap_or_default()
    }

    /// All term names.
    pub fn term_names(&self) -> Vec<String> {
        self.repo
            .instances_of("Term")
            .iter()
            .map(|t| t.name().to_string())
            .collect()
    }

    /// Export the glossary as an XMI-style interchange document.
    pub fn export_xmi(&self) -> MetadataResult<String> {
        odbis_metamodel::export_repository(&self.repo)
            .map_err(|e| MetadataError::Storage(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_lookup_relate() {
        let mut g = Glossary::new();
        g.define_term("Revenue", "income from sales", Some("sales_kpi"))
            .unwrap();
        g.define_term("Margin", "revenue minus cost", None).unwrap();
        g.relate("Margin", "Revenue").unwrap();
        assert_eq!(g.definition("revenue").unwrap(), "income from sales");
        assert_eq!(g.mapped_dataset("Revenue").unwrap(), "sales_kpi");
        assert_eq!(g.related_terms("Margin"), vec!["Revenue".to_string()]);
        assert!(g.related_terms("Revenue").is_empty());
        assert_eq!(g.term_names().len(), 2);
    }

    #[test]
    fn duplicate_and_missing_terms() {
        let mut g = Glossary::new();
        g.define_term("KPI", "a metric", None).unwrap();
        assert!(matches!(
            g.define_term("kpi", "again", None),
            Err(MetadataError::AlreadyExists(_))
        ));
        assert!(matches!(
            g.relate("KPI", "Ghost"),
            Err(MetadataError::NotFound(_))
        ));
        assert_eq!(g.definition("Ghost"), None);
    }

    #[test]
    fn glossary_exports_as_xmi() {
        let mut g = Glossary::new();
        g.define_term("Churn", "customer loss rate", None).unwrap();
        let xmi = g.export_xmi().unwrap();
        assert!(xmi.contains("Churn"));
        // the exported document is loadable by the metamodel layer
        let loaded = odbis_metamodel::import_repository(&xmi).unwrap();
        assert_eq!(loaded.instances_of("Term").len(), 1);
    }
}
