//! The Meta-Data Service (MDS).

use std::collections::BTreeMap;
use std::sync::Arc;

use odbis_sql::{Engine, QueryResult, SqlError};
use odbis_storage::{Database, DbError};
use parking_lot::RwLock;

use crate::glossary::Glossary;

/// Connection details for a registered data source (ODBIS §3.3:
/// "DataSource objects provide a set of information (URL, User, Password,
/// etc.) used to connect to database servers").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSource {
    /// Unique data-source name.
    pub name: String,
    /// Connection URL (e.g. `odbis://warehouse`).
    pub url: String,
    /// Login user.
    pub user: String,
    /// Secret; never rendered by [`DataSource::describe`].
    pub password: String,
    /// Driver identifier.
    pub driver: String,
}

impl DataSource {
    /// Human-readable description with the password redacted.
    pub fn describe(&self) -> String {
        format!(
            "{} ({} via {}, user {})",
            self.name, self.url, self.driver, self.user
        )
    }
}

/// A DataSet: "a SQL query abstraction used by charts, data-tables and
/// dashboards" (ODBIS §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSet {
    /// Unique data-set name.
    pub name: String,
    /// Data source the query runs against.
    pub source: String,
    /// The SQL `SELECT` defining the set.
    pub sql: String,
    /// Business description.
    pub description: String,
}

/// Metadata-service errors.
#[derive(Debug, Clone, PartialEq)]
pub enum MetadataError {
    /// Named entity not found.
    NotFound(String),
    /// Entity already defined.
    AlreadyExists(String),
    /// The data set's SQL failed to parse or is not a SELECT.
    InvalidDataSet(String),
    /// Error executing a data set.
    Execution(String),
    /// Storage-level failure.
    Storage(String),
}

impl std::fmt::Display for MetadataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetadataError::NotFound(e) => write!(f, "not found: {e}"),
            MetadataError::AlreadyExists(e) => write!(f, "already exists: {e}"),
            MetadataError::InvalidDataSet(e) => write!(f, "invalid data set: {e}"),
            MetadataError::Execution(e) => write!(f, "execution failed: {e}"),
            MetadataError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for MetadataError {}

impl From<SqlError> for MetadataError {
    fn from(e: SqlError) -> Self {
        MetadataError::Execution(e.to_string())
    }
}

impl From<DbError> for MetadataError {
    fn from(e: DbError) -> Self {
        MetadataError::Storage(e.to_string())
    }
}

/// Result alias for MDS operations.
pub type MetadataResult<T> = Result<T, MetadataError>;

/// The Meta-Data Service: the shared definition layer that "allows
/// meta-data and business information definition to facilitate information
/// sharing and exchange between all services" (ODBIS §3.1).
///
/// Data sources are resolved to live [`Database`] handles through an
/// internal connection registry (the JDBC analogue); data sets execute
/// through the SQL engine.
pub struct MetadataService {
    inner: RwLock<Inner>,
    engine: Engine,
}

struct Inner {
    sources: BTreeMap<String, DataSource>,
    connections: BTreeMap<String, Arc<Database>>,
    datasets: BTreeMap<String, DataSet>,
    glossary: Glossary,
}

impl Default for MetadataService {
    fn default() -> Self {
        MetadataService::new()
    }
}

impl MetadataService {
    /// Empty service.
    pub fn new() -> Self {
        MetadataService {
            inner: RwLock::new(Inner {
                sources: BTreeMap::new(),
                connections: BTreeMap::new(),
                datasets: BTreeMap::new(),
                glossary: Glossary::new(),
            }),
            engine: Engine::new(),
        }
    }

    // ---- data sources -------------------------------------------------------

    /// Register a data source and bind it to a live database handle.
    pub fn register_source(
        &self,
        source: DataSource,
        connection: Arc<Database>,
    ) -> MetadataResult<()> {
        let mut inner = self.inner.write();
        if inner.sources.contains_key(&source.name) {
            return Err(MetadataError::AlreadyExists(source.name));
        }
        inner.connections.insert(source.name.clone(), connection);
        inner.sources.insert(source.name.clone(), source);
        Ok(())
    }

    /// Fetch a data source definition.
    pub fn source(&self, name: &str) -> MetadataResult<DataSource> {
        self.inner
            .read()
            .sources
            .get(name)
            .cloned()
            .ok_or_else(|| MetadataError::NotFound(format!("data source {name}")))
    }

    /// Resolve a data source to its database connection.
    pub fn connection(&self, name: &str) -> MetadataResult<Arc<Database>> {
        self.inner
            .read()
            .connections
            .get(name)
            .cloned()
            .ok_or_else(|| MetadataError::NotFound(format!("data source {name}")))
    }

    /// All data-source names.
    pub fn source_names(&self) -> Vec<String> {
        self.inner.read().sources.keys().cloned().collect()
    }

    // ---- data sets ----------------------------------------------------------

    /// Define a data set. The SQL is validated (must parse as a `SELECT`)
    /// and the source must exist.
    pub fn define_dataset(&self, dataset: DataSet) -> MetadataResult<()> {
        match odbis_sql::parse(&dataset.sql) {
            Ok(odbis_sql::ast::Statement::Select(_)) => {}
            Ok(_) => {
                return Err(MetadataError::InvalidDataSet(format!(
                    "data set {} must be a SELECT",
                    dataset.name
                )))
            }
            Err(e) => {
                return Err(MetadataError::InvalidDataSet(format!(
                    "data set {}: {e}",
                    dataset.name
                )))
            }
        }
        let mut inner = self.inner.write();
        if !inner.sources.contains_key(&dataset.source) {
            return Err(MetadataError::NotFound(format!(
                "data source {}",
                dataset.source
            )));
        }
        if inner.datasets.contains_key(&dataset.name) {
            return Err(MetadataError::AlreadyExists(dataset.name));
        }
        inner.datasets.insert(dataset.name.clone(), dataset);
        Ok(())
    }

    /// Fetch a data set definition.
    pub fn dataset(&self, name: &str) -> MetadataResult<DataSet> {
        self.inner
            .read()
            .datasets
            .get(name)
            .cloned()
            .ok_or_else(|| MetadataError::NotFound(format!("data set {name}")))
    }

    /// All data-set names.
    pub fn dataset_names(&self) -> Vec<String> {
        self.inner.read().datasets.keys().cloned().collect()
    }

    /// Remove a data set.
    pub fn drop_dataset(&self, name: &str) -> MetadataResult<()> {
        self.inner
            .write()
            .datasets
            .remove(name)
            .map(drop)
            .ok_or_else(|| MetadataError::NotFound(format!("data set {name}")))
    }

    /// Execute a data set against its source connection.
    pub fn execute_dataset(&self, name: &str) -> MetadataResult<QueryResult> {
        let (sql, conn) = {
            let inner = self.inner.read();
            let ds = inner
                .datasets
                .get(name)
                .ok_or_else(|| MetadataError::NotFound(format!("data set {name}")))?;
            let conn = inner
                .connections
                .get(&ds.source)
                .cloned()
                .ok_or_else(|| MetadataError::NotFound(format!("data source {}", ds.source)))?;
            (ds.sql.clone(), conn)
        };
        Ok(self.engine.execute(&conn, &sql)?)
    }

    /// Execute a data set and return its columnar [`Batch`](odbis_storage::Batch) without the row
    /// pivot — the entry point for streamed exports (CSV downloads) that
    /// serialize straight from column storage.
    pub fn execute_dataset_batch(
        &self,
        name: &str,
    ) -> MetadataResult<(Vec<String>, odbis_storage::Batch)> {
        let (sql, conn) = {
            let inner = self.inner.read();
            let ds = inner
                .datasets
                .get(name)
                .ok_or_else(|| MetadataError::NotFound(format!("data set {name}")))?;
            let conn = inner
                .connections
                .get(&ds.source)
                .cloned()
                .ok_or_else(|| MetadataError::NotFound(format!("data source {}", ds.source)))?;
            (ds.sql.clone(), conn)
        };
        Ok(self.engine.execute_select_batch(&conn, &sql)?)
    }

    /// Tables a data set reads from (lineage extracted from the SQL AST).
    pub fn lineage(&self, name: &str) -> MetadataResult<Vec<String>> {
        let ds = self.dataset(name)?;
        let stmt =
            odbis_sql::parse(&ds.sql).map_err(|e| MetadataError::InvalidDataSet(e.to_string()))?;
        let odbis_sql::ast::Statement::Select(sel) = stmt else {
            return Ok(Vec::new());
        };
        let mut tables = Vec::new();
        if let Some(from) = &sel.from {
            tables.push(from.table.clone());
        }
        for j in &sel.joins {
            tables.push(j.table.table.clone());
        }
        tables.sort();
        tables.dedup();
        Ok(tables)
    }

    // ---- glossary -----------------------------------------------------------

    /// Mutable access to the business glossary.
    pub fn with_glossary<R>(&self, f: impl FnOnce(&mut Glossary) -> R) -> R {
        f(&mut self.inner.write().glossary)
    }

    /// Read access to the business glossary.
    pub fn read_glossary<R>(&self, f: impl FnOnce(&Glossary) -> R) -> R {
        f(&self.inner.read().glossary)
    }

    // ---- search ---------------------------------------------------------------

    /// Search all metadata (sources, data sets, glossary terms) by
    /// substring; returns `kind: name` strings.
    pub fn search(&self, needle: &str) -> Vec<String> {
        let needle = needle.to_ascii_lowercase();
        let inner = self.inner.read();
        let mut hits = Vec::new();
        for s in inner.sources.keys() {
            if s.to_ascii_lowercase().contains(&needle) {
                hits.push(format!("datasource: {s}"));
            }
        }
        for (name, ds) in &inner.datasets {
            if name.to_ascii_lowercase().contains(&needle)
                || ds.description.to_ascii_lowercase().contains(&needle)
            {
                hits.push(format!("dataset: {name}"));
            }
        }
        for term in inner.glossary.term_names() {
            if term.to_ascii_lowercase().contains(&needle) {
                hits.push(format!("term: {term}"));
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbis_storage::Value;

    fn service_with_warehouse() -> (MetadataService, Arc<Database>) {
        let mds = MetadataService::new();
        let db = Arc::new(Database::new());
        let engine = Engine::new();
        engine
            .execute_script(
                &db,
                "CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, amount DOUBLE);
                 INSERT INTO sales VALUES (1, 'EU', 10), (2, 'US', 20), (3, 'EU', 30);",
            )
            .unwrap();
        mds.register_source(
            DataSource {
                name: "warehouse".into(),
                url: "odbis://warehouse".into(),
                user: "bi".into(),
                password: "s3cret".into(),
                driver: "odbis-storage".into(),
            },
            Arc::clone(&db),
        )
        .unwrap();
        (mds, db)
    }

    #[test]
    fn source_registration_and_redaction() {
        let (mds, _db) = service_with_warehouse();
        assert_eq!(mds.source_names(), vec!["warehouse".to_string()]);
        let desc = mds.source("warehouse").unwrap().describe();
        assert!(!desc.contains("s3cret"));
        assert!(desc.contains("odbis://warehouse"));
        assert!(matches!(
            mds.source("nope"),
            Err(MetadataError::NotFound(_))
        ));
        let dup = DataSource {
            name: "warehouse".into(),
            url: "x".into(),
            user: "u".into(),
            password: "p".into(),
            driver: "d".into(),
        };
        assert!(matches!(
            mds.register_source(dup, Arc::new(Database::new())),
            Err(MetadataError::AlreadyExists(_))
        ));
    }

    #[test]
    fn dataset_definition_validates_sql() {
        let (mds, _db) = service_with_warehouse();
        mds.define_dataset(DataSet {
            name: "sales_by_region".into(),
            source: "warehouse".into(),
            sql: "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY region"
                .into(),
            description: "revenue per region".into(),
        })
        .unwrap();
        assert!(matches!(
            mds.define_dataset(DataSet {
                name: "bad".into(),
                source: "warehouse".into(),
                sql: "DELETE FROM sales".into(),
                description: String::new(),
            }),
            Err(MetadataError::InvalidDataSet(_))
        ));
        assert!(matches!(
            mds.define_dataset(DataSet {
                name: "unparsable".into(),
                source: "warehouse".into(),
                sql: "SELECT FROM FROM".into(),
                description: String::new(),
            }),
            Err(MetadataError::InvalidDataSet(_))
        ));
        assert!(matches!(
            mds.define_dataset(DataSet {
                name: "orphan".into(),
                source: "ghost".into(),
                sql: "SELECT 1".into(),
                description: String::new(),
            }),
            Err(MetadataError::NotFound(_))
        ));
    }

    #[test]
    fn dataset_execution_returns_rows() {
        let (mds, _db) = service_with_warehouse();
        mds.define_dataset(DataSet {
            name: "sales_by_region".into(),
            source: "warehouse".into(),
            sql: "SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY region"
                .into(),
            description: String::new(),
        })
        .unwrap();
        let r = mds.execute_dataset("sales_by_region").unwrap();
        assert_eq!(r.columns, vec!["region", "total"]);
        assert_eq!(r.rows[0], vec![Value::from("EU"), Value::Float(40.0)]);
        assert!(matches!(
            mds.execute_dataset("missing"),
            Err(MetadataError::NotFound(_))
        ));
    }

    #[test]
    fn lineage_extracts_tables() {
        let (mds, db) = service_with_warehouse();
        Engine::new()
            .execute(
                &db,
                "CREATE TABLE regions (code TEXT PRIMARY KEY, name TEXT)",
            )
            .unwrap();
        mds.define_dataset(DataSet {
            name: "joined".into(),
            source: "warehouse".into(),
            sql: "SELECT s.id FROM sales s JOIN regions r ON s.region = r.code".into(),
            description: String::new(),
        })
        .unwrap();
        assert_eq!(
            mds.lineage("joined").unwrap(),
            vec!["regions".to_string(), "sales".to_string()]
        );
    }

    #[test]
    fn search_spans_all_metadata() {
        let (mds, _db) = service_with_warehouse();
        mds.define_dataset(DataSet {
            name: "sales_kpi".into(),
            source: "warehouse".into(),
            sql: "SELECT COUNT(*) FROM sales".into(),
            description: "the headline revenue KPI".into(),
        })
        .unwrap();
        mds.with_glossary(|g| g.define_term("Revenue", "money in", Some("sales_kpi")))
            .unwrap();
        assert_eq!(mds.search("warehouse").len(), 1);
        assert_eq!(mds.search("kpi").len(), 1); // matches description
        assert!(mds.search("revenue").iter().any(|h| h.starts_with("term:")));
        assert!(mds.search("zzz").is_empty());
    }

    #[test]
    fn drop_dataset() {
        let (mds, _db) = service_with_warehouse();
        mds.define_dataset(DataSet {
            name: "tmp".into(),
            source: "warehouse".into(),
            sql: "SELECT 1".into(),
            description: String::new(),
        })
        .unwrap();
        mds.drop_dataset("tmp").unwrap();
        assert!(mds.drop_dataset("tmp").is_err());
        assert!(mds.dataset_names().is_empty());
    }
}
