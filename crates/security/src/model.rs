//! Security domain model: authorities, roles, groups, users.

use std::collections::BTreeSet;

/// A granted authority (privilege), e.g. `REPORT_VIEW` or `ADMIN_USERS`.
///
/// Newtype over the authority string so authorities cannot be confused with
/// role or user names in APIs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Authority(pub String);

impl Authority {
    /// Construct an authority.
    pub fn new(name: impl Into<String>) -> Self {
        Authority(name.into())
    }

    /// The authority string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Authority {
    fn from(s: &str) -> Self {
        Authority(s.to_string())
    }
}

impl std::fmt::Display for Authority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A role: a named bundle of authorities, optionally inheriting from parent
/// roles (Spring Security's role hierarchy).
#[derive(Debug, Clone, PartialEq)]
pub struct Role {
    /// Role name, e.g. `ROLE_ANALYST`.
    pub name: String,
    /// Directly granted authorities.
    pub authorities: BTreeSet<Authority>,
    /// Parent roles whose authorities are inherited.
    pub parents: BTreeSet<String>,
}

impl Role {
    /// New role without authorities.
    pub fn new(name: impl Into<String>) -> Self {
        Role {
            name: name.into(),
            authorities: BTreeSet::new(),
            parents: BTreeSet::new(),
        }
    }

    /// Grant an authority.
    pub fn grant(mut self, authority: impl Into<Authority>) -> Self {
        self.authorities.insert(authority.into());
        self
    }

    /// Inherit from a parent role.
    pub fn inherits(mut self, parent: impl Into<String>) -> Self {
        self.parents.insert(parent.into());
        self
    }
}

/// A user group: members share the group's roles.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Group name.
    pub name: String,
    /// Roles granted to every member.
    pub roles: BTreeSet<String>,
}

impl Group {
    /// New empty group.
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            roles: BTreeSet::new(),
        }
    }

    /// Add a role to the group.
    pub fn with_role(mut self, role: impl Into<String>) -> Self {
        self.roles.insert(role.into());
        self
    }
}

/// A platform user account.
#[derive(Debug, Clone, PartialEq)]
pub struct User {
    /// Login name, unique per tenant realm.
    pub username: String,
    /// Salted iterated password hash (hex).
    pub password_hash: String,
    /// Per-user random salt (hex-decoded bytes).
    pub salt: Vec<u8>,
    /// Directly assigned roles.
    pub roles: BTreeSet<String>,
    /// Group memberships.
    pub groups: BTreeSet<String>,
    /// Disabled accounts cannot authenticate.
    pub enabled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let r = Role::new("ROLE_ANALYST")
            .grant("REPORT_VIEW")
            .grant("CUBE_QUERY")
            .inherits("ROLE_USER");
        assert_eq!(r.authorities.len(), 2);
        assert!(r.parents.contains("ROLE_USER"));
        let g = Group::new("analysts").with_role("ROLE_ANALYST");
        assert!(g.roles.contains("ROLE_ANALYST"));
        assert_eq!(Authority::from("X").to_string(), "X");
    }
}
