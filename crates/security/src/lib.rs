//! # odbis-security
//!
//! Enterprise security for the ODBIS platform — the reproduction's
//! substitute for Spring Security in the paper's administration service
//! (§3.3): "a secure web-based application to manage authorities
//! (privileges), roles, users, and groups".
//!
//! Provides authentication (salted iterated password hashing over a
//! from-scratch SHA-256), token sessions with expiry, a transitive role
//! hierarchy, groups, per-object ACLs and an audit log.
//!
//! ```
//! use odbis_security::{Role, SecurityManager};
//!
//! let sm = SecurityManager::new();
//! sm.create_role(Role::new("ROLE_ANALYST").grant("REPORT_VIEW")).unwrap();
//! sm.create_user("ada", "pw").unwrap();
//! sm.assign_role("ada", "ROLE_ANALYST").unwrap();
//! let session = sm.login("ada", "pw").unwrap();
//! assert_eq!(sm.authenticate(&session.token).unwrap(), "ada");
//! assert!(sm.has_authority("ada", "REPORT_VIEW"));
//! ```

#![warn(missing_docs)]

mod hash;
mod manager;
mod model;

pub use hash::{constant_time_eq, hash_password, hex, sha256, PBKDF_ITERATIONS};
pub use manager::{AuditEvent, Permission, SecResult, SecurityError, SecurityManager, Session};
pub use model::{Authority, Group, Role, User};
