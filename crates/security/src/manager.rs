//! The security manager: authentication, sessions, role-hierarchy
//! authorization, ACLs and audit.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::hash::{constant_time_eq, hash_password, hex, sha256};
use crate::model::{Authority, Group, Role, User};

/// Security errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecurityError {
    /// Unknown user, wrong password, or disabled account. Deliberately a
    /// single variant: authentication failures must not reveal which part
    /// failed.
    BadCredentials,
    /// The session token is unknown or has expired.
    InvalidSession,
    /// The principal lacks the required authority.
    AccessDenied {
        /// Authenticated principal.
        principal: String,
        /// Authority that was required.
        authority: String,
    },
    /// Referenced entity (user/role/group) does not exist.
    NotFound(String),
    /// Entity already exists.
    AlreadyExists(String),
    /// Role hierarchy contains a cycle.
    RoleCycle(String),
}

impl std::fmt::Display for SecurityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecurityError::BadCredentials => write!(f, "bad credentials"),
            SecurityError::InvalidSession => write!(f, "invalid or expired session"),
            SecurityError::AccessDenied {
                principal,
                authority,
            } => write!(f, "access denied: {principal} lacks {authority}"),
            SecurityError::NotFound(e) => write!(f, "not found: {e}"),
            SecurityError::AlreadyExists(e) => write!(f, "already exists: {e}"),
            SecurityError::RoleCycle(r) => write!(f, "role hierarchy cycle through {r}"),
        }
    }
}

impl std::error::Error for SecurityError {}

/// Result alias for security operations.
pub type SecResult<T> = Result<T, SecurityError>;

/// An authenticated session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Opaque token handed to the client.
    pub token: String,
    /// Authenticated username.
    pub username: String,
    created: Instant,
    ttl: Duration,
}

impl Session {
    /// Whether the session has expired.
    pub fn expired(&self) -> bool {
        self.created.elapsed() > self.ttl
    }
}

/// One audit-log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// Event kind: `LOGIN`, `LOGIN_FAILED`, `LOGOUT`, `ACCESS_DENIED`,
    /// `USER_CREATED`, ...
    pub kind: String,
    /// Principal involved.
    pub principal: String,
    /// Free-form detail.
    pub detail: String,
}

/// Permissions on ACL-protected objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Permission {
    /// Read the object.
    Read,
    /// Modify the object.
    Write,
    /// Change the object's ACL / delete it.
    Administer,
}

/// The central security service — the reproduction of the ODBIS
/// administration service's Spring-Security-based "authorities, roles,
/// users and groups management" (§3.3).
pub struct SecurityManager {
    inner: Mutex<Inner>,
    /// Realm-unique nonce mixed into every token so that two realms never
    /// mint identical tokens even for identical usernames and counters.
    realm_nonce: u64,
    /// Session lifetime.
    pub session_ttl: Duration,
}

/// Process-wide realm counter feeding `realm_nonce`.
static REALM_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

struct Inner {
    users: BTreeMap<String, User>,
    roles: BTreeMap<String, Role>,
    groups: BTreeMap<String, Group>,
    sessions: HashMap<String, Session>,
    acls: HashMap<String, Vec<(String, Permission)>>,
    audit: Vec<AuditEvent>,
    token_counter: u64,
}

impl Inner {
    /// Drop every expired session. `authenticate` only evicts the token it
    /// is presented with, so abandoned sessions (the browser that never
    /// comes back) would otherwise accumulate forever; `login` calls this
    /// so the map is bounded by the number of sessions opened within one
    /// TTL window.
    fn sweep_expired(&mut self) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| !s.expired());
        before - self.sessions.len()
    }
}

impl Default for SecurityManager {
    fn default() -> Self {
        SecurityManager::new()
    }
}

impl SecurityManager {
    /// Empty realm with a 30-minute session TTL.
    pub fn new() -> Self {
        SecurityManager {
            inner: Mutex::new(Inner {
                users: BTreeMap::new(),
                roles: BTreeMap::new(),
                groups: BTreeMap::new(),
                sessions: HashMap::new(),
                acls: HashMap::new(),
                audit: Vec::new(),
                token_counter: 0,
            }),
            realm_nonce: REALM_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            session_ttl: Duration::from_secs(30 * 60),
        }
    }

    // ---- role / group / user administration --------------------------------

    /// Define a role. Parent roles must already exist; cycles are rejected.
    pub fn create_role(&self, role: Role) -> SecResult<()> {
        let mut inner = self.inner.lock();
        if inner.roles.contains_key(&role.name) {
            return Err(SecurityError::AlreadyExists(role.name));
        }
        for p in &role.parents {
            if !inner.roles.contains_key(p) {
                return Err(SecurityError::NotFound(format!("parent role {p}")));
            }
        }
        inner.roles.insert(role.name.clone(), role);
        Ok(())
    }

    /// Define a group (roles must exist).
    pub fn create_group(&self, group: Group) -> SecResult<()> {
        let mut inner = self.inner.lock();
        if inner.groups.contains_key(&group.name) {
            return Err(SecurityError::AlreadyExists(group.name));
        }
        for r in &group.roles {
            if !inner.roles.contains_key(r) {
                return Err(SecurityError::NotFound(format!("role {r}")));
            }
        }
        inner.groups.insert(group.name.clone(), group);
        Ok(())
    }

    /// Create a user with a password (hashed with a per-user salt).
    pub fn create_user(&self, username: &str, password: &str) -> SecResult<()> {
        let mut inner = self.inner.lock();
        if inner.users.contains_key(username) {
            return Err(SecurityError::AlreadyExists(username.to_string()));
        }
        // deterministic-but-unique salt: hash of username + counter
        inner.token_counter += 1;
        let salt =
            sha256(format!("{}:{username}:{}", self.realm_nonce, inner.token_counter).as_bytes())
                .to_vec();
        let user = User {
            username: username.to_string(),
            password_hash: hash_password(password, &salt),
            salt,
            roles: BTreeSet::new(),
            groups: BTreeSet::new(),
            enabled: true,
        };
        inner.users.insert(username.to_string(), user);
        inner.audit.push(AuditEvent {
            kind: "USER_CREATED".into(),
            principal: username.to_string(),
            detail: String::new(),
        });
        Ok(())
    }

    /// Assign a role directly to a user.
    pub fn assign_role(&self, username: &str, role: &str) -> SecResult<()> {
        let mut inner = self.inner.lock();
        if !inner.roles.contains_key(role) {
            return Err(SecurityError::NotFound(format!("role {role}")));
        }
        inner
            .users
            .get_mut(username)
            .ok_or_else(|| SecurityError::NotFound(format!("user {username}")))?
            .roles
            .insert(role.to_string());
        Ok(())
    }

    /// Add a user to a group.
    pub fn add_to_group(&self, username: &str, group: &str) -> SecResult<()> {
        let mut inner = self.inner.lock();
        if !inner.groups.contains_key(group) {
            return Err(SecurityError::NotFound(format!("group {group}")));
        }
        inner
            .users
            .get_mut(username)
            .ok_or_else(|| SecurityError::NotFound(format!("user {username}")))?
            .groups
            .insert(group.to_string());
        Ok(())
    }

    /// Enable or disable an account.
    pub fn set_enabled(&self, username: &str, enabled: bool) -> SecResult<()> {
        let mut inner = self.inner.lock();
        inner
            .users
            .get_mut(username)
            .ok_or_else(|| SecurityError::NotFound(format!("user {username}")))?
            .enabled = enabled;
        Ok(())
    }

    /// List usernames (sorted).
    pub fn usernames(&self) -> Vec<String> {
        self.inner.lock().users.keys().cloned().collect()
    }

    /// Search users by substring (the paper's admin service "search
    /// features").
    pub fn search_users(&self, needle: &str) -> Vec<String> {
        let needle = needle.to_ascii_lowercase();
        self.inner
            .lock()
            .users
            .keys()
            .filter(|u| u.to_ascii_lowercase().contains(&needle))
            .cloned()
            .collect()
    }

    // ---- authentication -----------------------------------------------------

    /// Authenticate and open a session. All failure modes collapse into
    /// [`SecurityError::BadCredentials`].
    pub fn login(&self, username: &str, password: &str) -> SecResult<Session> {
        let mut inner = self.inner.lock();
        let ok = match inner.users.get(username) {
            Some(u) if u.enabled => {
                constant_time_eq(&hash_password(password, &u.salt), &u.password_hash)
            }
            _ => {
                // burn comparable time for unknown users
                let _ = hash_password(password, b"timing-equalizer");
                false
            }
        };
        if !ok {
            inner.audit.push(AuditEvent {
                kind: "LOGIN_FAILED".into(),
                principal: username.to_string(),
                detail: String::new(),
            });
            return Err(SecurityError::BadCredentials);
        }
        inner.sweep_expired();
        inner.token_counter += 1;
        let token = hex(&sha256(
            format!(
                "session:{}:{username}:{}",
                self.realm_nonce, inner.token_counter
            )
            .as_bytes(),
        ));
        let session = Session {
            token: token.clone(),
            username: username.to_string(),
            created: Instant::now(),
            ttl: self.session_ttl,
        };
        inner.sessions.insert(token, session.clone());
        inner.audit.push(AuditEvent {
            kind: "LOGIN".into(),
            principal: username.to_string(),
            detail: String::new(),
        });
        Ok(session)
    }

    /// Resolve a session token to its principal.
    pub fn authenticate(&self, token: &str) -> SecResult<String> {
        let mut inner = self.inner.lock();
        match inner.sessions.get(token) {
            Some(s) if !s.expired() => Ok(s.username.clone()),
            Some(_) => {
                inner.sessions.remove(token);
                Err(SecurityError::InvalidSession)
            }
            None => Err(SecurityError::InvalidSession),
        }
    }

    /// Evict every expired session now. Runs automatically on each
    /// successful login; exposed for periodic housekeeping (an idle realm
    /// that nobody logs into again still frees its map eventually) and for
    /// tests. Returns how many sessions were dropped.
    pub fn sweep_expired_sessions(&self) -> usize {
        self.inner.lock().sweep_expired()
    }

    /// Live (non-expired) sessions currently held in the session map —
    /// the `odbis_sessions_active` gauge.
    pub fn session_count(&self) -> usize {
        self.inner
            .lock()
            .sessions
            .values()
            .filter(|s| !s.expired())
            .count()
    }

    /// Every live (non-expired) session, cloned out of the map. Used by
    /// tenant live-migration to hand a realm's sessions to the target
    /// node's realm ([`SecurityManager::adopt_session`]) so tokens a
    /// client already holds keep authenticating after cutover.
    pub fn active_sessions(&self) -> Vec<Session> {
        self.inner
            .lock()
            .sessions
            .values()
            .filter(|s| !s.expired())
            .cloned()
            .collect()
    }

    /// Adopt a session minted by another realm instance of the same
    /// tenant. The remaining TTL travels with the session (its `created`
    /// instant is preserved), so adoption never extends a lifetime.
    pub fn adopt_session(&self, session: Session) {
        let mut inner = self.inner.lock();
        inner.audit.push(AuditEvent {
            kind: "SESSION_ADOPTED".into(),
            principal: session.username.clone(),
            detail: String::new(),
        });
        inner.sessions.insert(session.token.clone(), session);
    }

    /// Close a session.
    pub fn logout(&self, token: &str) {
        let mut inner = self.inner.lock();
        if let Some(s) = inner.sessions.remove(token) {
            inner.audit.push(AuditEvent {
                kind: "LOGOUT".into(),
                principal: s.username,
                detail: String::new(),
            });
        }
    }

    // ---- authorization ------------------------------------------------------

    /// All authorities effectively granted to a user: direct roles plus
    /// group roles, with the role hierarchy expanded transitively.
    pub fn effective_authorities(&self, username: &str) -> SecResult<BTreeSet<Authority>> {
        let inner = self.inner.lock();
        let user = inner
            .users
            .get(username)
            .ok_or_else(|| SecurityError::NotFound(format!("user {username}")))?;
        let mut role_names: Vec<String> = user.roles.iter().cloned().collect();
        for g in &user.groups {
            if let Some(group) = inner.groups.get(g) {
                role_names.extend(group.roles.iter().cloned());
            }
        }
        let mut out = BTreeSet::new();
        let mut visited = BTreeSet::new();
        let mut stack = role_names;
        while let Some(rn) = stack.pop() {
            if !visited.insert(rn.clone()) {
                continue;
            }
            if visited.len() > inner.roles.len() + 8 {
                return Err(SecurityError::RoleCycle(rn));
            }
            if let Some(role) = inner.roles.get(&rn) {
                out.extend(role.authorities.iter().cloned());
                stack.extend(role.parents.iter().cloned());
            }
        }
        Ok(out)
    }

    /// Does the user hold `authority`?
    pub fn has_authority(&self, username: &str, authority: &str) -> bool {
        self.effective_authorities(username)
            .map(|a| a.contains(&Authority::new(authority)))
            .unwrap_or(false)
    }

    /// Enforce an authority; logs an `ACCESS_DENIED` audit event on
    /// failure.
    pub fn require_authority(&self, username: &str, authority: &str) -> SecResult<()> {
        if self.has_authority(username, authority) {
            Ok(())
        } else {
            self.inner.lock().audit.push(AuditEvent {
                kind: "ACCESS_DENIED".into(),
                principal: username.to_string(),
                detail: authority.to_string(),
            });
            Err(SecurityError::AccessDenied {
                principal: username.to_string(),
                authority: authority.to_string(),
            })
        }
    }

    // ---- ACLs ----------------------------------------------------------------

    /// Grant `permission` on `object` (e.g. `"report:42"`) to a user.
    pub fn grant_acl(&self, object: &str, username: &str, permission: Permission) {
        self.inner
            .lock()
            .acls
            .entry(object.to_string())
            .or_default()
            .push((username.to_string(), permission));
    }

    /// ACL check: `Administer` implies `Write` implies `Read`.
    pub fn check_acl(&self, object: &str, username: &str, needed: Permission) -> bool {
        self.inner
            .lock()
            .acls
            .get(object)
            .is_some_and(|entries| entries.iter().any(|(u, p)| u == username && *p >= needed))
    }

    // ---- audit ----------------------------------------------------------------

    /// Snapshot of the audit log.
    pub fn audit_log(&self) -> Vec<AuditEvent> {
        self.inner.lock().audit.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realm() -> SecurityManager {
        let sm = SecurityManager::new();
        sm.create_role(Role::new("ROLE_USER").grant("PLATFORM_LOGIN"))
            .unwrap();
        sm.create_role(
            Role::new("ROLE_ANALYST")
                .grant("REPORT_VIEW")
                .grant("CUBE_QUERY")
                .inherits("ROLE_USER"),
        )
        .unwrap();
        sm.create_role(
            Role::new("ROLE_ADMIN")
                .grant("ADMIN_USERS")
                .inherits("ROLE_ANALYST"),
        )
        .unwrap();
        sm.create_group(Group::new("analysts").with_role("ROLE_ANALYST"))
            .unwrap();
        sm.create_user("alice", "alice-pw").unwrap();
        sm.create_user("bob", "bob-pw").unwrap();
        sm.assign_role("alice", "ROLE_ADMIN").unwrap();
        sm.add_to_group("bob", "analysts").unwrap();
        sm
    }

    #[test]
    fn login_success_and_failure_modes() {
        let sm = realm();
        let s = sm.login("alice", "alice-pw").unwrap();
        assert_eq!(sm.authenticate(&s.token).unwrap(), "alice");
        assert_eq!(
            sm.login("alice", "wrong").unwrap_err(),
            SecurityError::BadCredentials
        );
        assert_eq!(
            sm.login("ghost", "x").unwrap_err(),
            SecurityError::BadCredentials
        );
        sm.set_enabled("alice", false).unwrap();
        assert_eq!(
            sm.login("alice", "alice-pw").unwrap_err(),
            SecurityError::BadCredentials
        );
    }

    #[test]
    fn logout_and_invalid_tokens() {
        let sm = realm();
        let s = sm.login("bob", "bob-pw").unwrap();
        sm.logout(&s.token);
        assert_eq!(
            sm.authenticate(&s.token).unwrap_err(),
            SecurityError::InvalidSession
        );
        assert_eq!(
            sm.authenticate("forged-token").unwrap_err(),
            SecurityError::InvalidSession
        );
    }

    /// Migration hand-off: a session minted on one realm authenticates on
    /// another after adoption, with its TTL clock preserved.
    #[test]
    fn adopted_sessions_authenticate_on_the_target_realm() {
        let source = realm();
        let target = realm();
        let s = source.login("alice", "alice-pw").unwrap();
        assert_eq!(
            target.authenticate(&s.token).unwrap_err(),
            SecurityError::InvalidSession
        );
        for session in source.active_sessions() {
            target.adopt_session(session);
        }
        assert_eq!(target.authenticate(&s.token).unwrap(), "alice");
        // expired sessions are not exported in the first place
        let mut stale = realm();
        stale.session_ttl = Duration::from_millis(1);
        stale.login("bob", "bob-pw").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(stale.active_sessions().is_empty());
    }

    #[test]
    fn session_expiry() {
        let mut sm = realm();
        sm.session_ttl = Duration::from_millis(1);
        let s = sm.login("bob", "bob-pw").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            sm.authenticate(&s.token).unwrap_err(),
            SecurityError::InvalidSession
        );
    }

    #[test]
    fn expired_sessions_are_evicted_not_leaked() {
        let mut sm = realm();
        sm.session_ttl = Duration::from_millis(1);
        // Abandoned sessions: opened, never authenticated again.
        for _ in 0..50 {
            sm.login("bob", "bob-pw").unwrap();
        }
        std::thread::sleep(Duration::from_millis(10));
        // The map still physically holds the stale entries...
        assert_eq!(sm.session_count(), 0, "gauge must not count expired");
        // ...until the next login sweeps them: only the new session remains.
        sm.session_ttl = Duration::from_secs(60);
        let s = sm.login("alice", "alice-pw").unwrap();
        assert_eq!(sm.inner.lock().sessions.len(), 1);
        assert_eq!(sm.session_count(), 1);
        assert_eq!(sm.authenticate(&s.token).unwrap(), "alice");
        // Manual sweep is a no-op when nothing is expired.
        assert_eq!(sm.sweep_expired_sessions(), 0);
        assert_eq!(sm.session_count(), 1);
    }

    #[test]
    fn manual_sweep_frees_idle_realm() {
        let mut sm = realm();
        sm.session_ttl = Duration::from_millis(1);
        for _ in 0..10 {
            sm.login("bob", "bob-pw").unwrap();
        }
        std::thread::sleep(Duration::from_millis(10));
        // No further logins happen; periodic housekeeping reclaims the map.
        // (Logins during the loop may already have swept early arrivals, so
        // assert on what is left rather than an exact count.)
        let lingering = sm.inner.lock().sessions.len();
        assert_eq!(sm.sweep_expired_sessions(), lingering);
        assert_eq!(sm.inner.lock().sessions.len(), 0);
    }

    #[test]
    fn role_hierarchy_is_transitive() {
        let sm = realm();
        // admin inherits analyst inherits user
        for auth in ["ADMIN_USERS", "REPORT_VIEW", "CUBE_QUERY", "PLATFORM_LOGIN"] {
            assert!(sm.has_authority("alice", auth), "alice should have {auth}");
        }
        // bob gets analyst powers through the group, not admin
        assert!(sm.has_authority("bob", "REPORT_VIEW"));
        assert!(sm.has_authority("bob", "PLATFORM_LOGIN"));
        assert!(!sm.has_authority("bob", "ADMIN_USERS"));
    }

    #[test]
    fn require_authority_denies_and_audits() {
        let sm = realm();
        assert!(sm.require_authority("bob", "REPORT_VIEW").is_ok());
        let err = sm.require_authority("bob", "ADMIN_USERS").unwrap_err();
        assert!(matches!(err, SecurityError::AccessDenied { .. }));
        assert!(sm
            .audit_log()
            .iter()
            .any(|e| e.kind == "ACCESS_DENIED" && e.principal == "bob"));
    }

    #[test]
    fn acl_permission_ordering() {
        let sm = realm();
        sm.grant_acl("report:1", "bob", Permission::Write);
        assert!(sm.check_acl("report:1", "bob", Permission::Read));
        assert!(sm.check_acl("report:1", "bob", Permission::Write));
        assert!(!sm.check_acl("report:1", "bob", Permission::Administer));
        assert!(!sm.check_acl("report:1", "alice", Permission::Read));
        assert!(!sm.check_acl("report:2", "bob", Permission::Read));
    }

    #[test]
    fn admin_crud_errors() {
        let sm = realm();
        assert!(matches!(
            sm.create_user("alice", "x"),
            Err(SecurityError::AlreadyExists(_))
        ));
        assert!(matches!(
            sm.assign_role("alice", "ROLE_GHOST"),
            Err(SecurityError::NotFound(_))
        ));
        assert!(matches!(
            sm.assign_role("ghost", "ROLE_USER"),
            Err(SecurityError::NotFound(_))
        ));
        assert!(matches!(
            sm.create_role(Role::new("R").inherits("NOPE")),
            Err(SecurityError::NotFound(_))
        ));
        assert!(matches!(
            sm.create_group(Group::new("g").with_role("NOPE")),
            Err(SecurityError::NotFound(_))
        ));
    }

    #[test]
    fn user_search() {
        let sm = realm();
        assert_eq!(sm.search_users("ali"), vec!["alice".to_string()]);
        assert_eq!(sm.search_users("B"), vec!["bob".to_string()]);
        assert!(sm.search_users("zzz").is_empty());
        assert_eq!(sm.usernames().len(), 2);
    }

    #[test]
    fn audit_trail_records_lifecycle() {
        let sm = realm();
        let s = sm.login("alice", "alice-pw").unwrap();
        let _ = sm.login("alice", "bad");
        sm.logout(&s.token);
        let log = sm.audit_log();
        let kinds: Vec<&str> = log.iter().map(|e| e.kind.as_str()).collect();
        for k in ["USER_CREATED", "LOGIN", "LOGIN_FAILED", "LOGOUT"] {
            assert!(kinds.contains(&k), "missing audit kind {k}");
        }
    }
}
