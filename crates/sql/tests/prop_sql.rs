//! Property-based tests for the SQL engine.

use odbis_sql::{parse, Engine};
use odbis_storage::{Database, Value};
use proptest::prelude::*;

// The parser must be total: arbitrary input never panics.
proptest! {
    #[test]
    fn parser_never_panics(s in ".{0,120}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_sqlish(
        kw in prop::sample::select(vec!["SELECT", "FROM", "WHERE", "GROUP BY", "ORDER", "INSERT", "(", ")", ",", "*", "'x'", "1", "t", "=", "AND"]),
        tail in ".{0,40}"
    ) {
        let _ = parse(&format!("{kw} {tail}"));
    }
}

// The optimized plan (with index selection) must return the same rows as
// the naive plan, for randomly generated data and predicates.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn optimizer_preserves_semantics(
        rows in prop::collection::vec((0i64..40, -20i64..20), 1..60),
        pivot in -25i64..25,
        op in prop::sample::select(vec!["=", "<", "<=", ">", ">=", "<>"]),
    ) {
        let db = Database::new();
        let opt = Engine::new();
        let naive = Engine::without_index_selection();
        opt.execute(&db, "CREATE TABLE t (k INT, v INT)").unwrap();
        opt.execute(&db, "CREATE INDEX ix_k ON t (k)").unwrap();
        for (k, v) in &rows {
            opt.execute(&db, &format!("INSERT INTO t VALUES ({k}, {v})")).unwrap();
        }
        let q = format!("SELECT k, v FROM t WHERE k {op} {pivot} ORDER BY k, v");
        let a = opt.execute(&db, &q).unwrap();
        let b = naive.execute(&db, &q).unwrap();
        prop_assert_eq!(a.rows, b.rows);
    }

    /// GROUP BY aggregation agrees with a manual fold over the same rows.
    #[test]
    fn aggregation_matches_manual_fold(
        rows in prop::collection::vec((0i64..5, -100i64..100), 0..80),
    ) {
        let db = Database::new();
        let e = Engine::new();
        e.execute(&db, "CREATE TABLE t (g INT, x INT)").unwrap();
        for (g, x) in &rows {
            e.execute(&db, &format!("INSERT INTO t VALUES ({g}, {x})")).unwrap();
        }
        let r = e
            .execute(&db, "SELECT g, COUNT(*), SUM(x), MIN(x), MAX(x) FROM t GROUP BY g ORDER BY g")
            .unwrap();
        use std::collections::BTreeMap;
        let mut manual: BTreeMap<i64, (i64, i64, i64, i64)> = BTreeMap::new();
        for (g, x) in &rows {
            let ent = manual.entry(*g).or_insert((0, 0, i64::MAX, i64::MIN));
            ent.0 += 1;
            ent.1 += x;
            ent.2 = ent.2.min(*x);
            ent.3 = ent.3.max(*x);
        }
        prop_assert_eq!(r.rows.len(), manual.len());
        for (row, (g, (n, s, mn, mx))) in r.rows.iter().zip(manual) {
            prop_assert_eq!(row[0].clone(), Value::Int(g));
            prop_assert_eq!(row[1].clone(), Value::Int(n));
            prop_assert_eq!(row[2].clone(), Value::Int(s));
            prop_assert_eq!(row[3].clone(), Value::Int(mn));
            prop_assert_eq!(row[4].clone(), Value::Int(mx));
        }
    }

    /// LIKE matching agrees with a reference regex-free implementation on
    /// simple alphabets.
    #[test]
    fn like_agrees_with_reference(s in "[ab]{0,8}", p in "[ab%_]{0,6}") {
        fn reference(s: &str, p: &str) -> bool {
            // dynamic programming over chars
            let sc: Vec<char> = s.chars().collect();
            let pc: Vec<char> = p.chars().collect();
            let mut dp = vec![vec![false; pc.len() + 1]; sc.len() + 1];
            dp[0][0] = true;
            for j in 1..=pc.len() {
                dp[0][j] = pc[j - 1] == '%' && dp[0][j - 1];
            }
            for i in 1..=sc.len() {
                for j in 1..=pc.len() {
                    dp[i][j] = match pc[j - 1] {
                        '%' => dp[i][j - 1] || dp[i - 1][j],
                        '_' => dp[i - 1][j - 1],
                        c => c == sc[i - 1] && dp[i - 1][j - 1],
                    };
                }
            }
            dp[sc.len()][pc.len()]
        }
        prop_assert_eq!(odbis_sql::like_match(&s, &p), reference(&s, &p));
    }

    /// DELETE then COUNT agrees with the predicate's true set.
    #[test]
    fn delete_count_consistency(rows in prop::collection::vec(-30i64..30, 0..50), cut in -30i64..30) {
        let db = Database::new();
        let e = Engine::new();
        e.execute(&db, "CREATE TABLE t (x INT)").unwrap();
        for x in &rows {
            e.execute(&db, &format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let deleted = e.execute(&db, &format!("DELETE FROM t WHERE x < {cut}")).unwrap();
        let expect_deleted = rows.iter().filter(|&&x| x < cut).count();
        prop_assert_eq!(deleted.rows_affected, expect_deleted);
        let left = e.execute(&db, "SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(left.rows[0][0].clone(), Value::Int((rows.len() - expect_deleted) as i64));
    }
}
