//! Golden-EXPLAIN snapshot tests for the optimizer rule pipeline.
//!
//! One test per rule compares the optimized plan rendering against the same
//! plan with that single rule ablated (`Engine::with_optimizer_rules`),
//! proving both the rewrite itself and that every rule can be disabled
//! independently — the other rules keep firing in the ablated snapshots
//! (e.g. `cols=[..]` pruning stays visible when only pushdown is off).
//! The last test drives the same ablation through the
//! `ODBIS_SQL_OPTIMIZER_RULES` environment default that backs the
//! `sql.optimizer_rules` platform config key.

use odbis_sql::Engine;
use odbis_storage::Database;

/// A small star schema: `fact` (200 rows) is much larger than `dim` (2) and
/// `dim_year` (3), so join reordering and build-side selection have a
/// live `row_count` signal to act on.
fn star_db() -> Database {
    let db = Database::new();
    let engine = Engine::new();
    engine
        .execute_script(
            &db,
            "CREATE TABLE dim (dept_id INT PRIMARY KEY, name TEXT, head_count INT);
             CREATE TABLE dim_year (year INT PRIMARY KEY, label TEXT);
             CREATE TABLE fact (id INT PRIMARY KEY, dept_id INT, year INT, cost DOUBLE);
             CREATE INDEX ix_fact_year ON fact (year);
             INSERT INTO dim VALUES (0, 'er', 40), (1, 'icu', 25);
             INSERT INTO dim_year VALUES (2008, 'y08'), (2009, 'y09'), (2010, 'y10');",
        )
        .expect("DDL");
    let rows: Vec<String> = (0..200)
        .map(|i| format!("({i}, {}, {}, {}.0)", i % 2, 2008 + i % 3, 100 + i))
        .collect();
    engine
        .execute(&db, &format!("INSERT INTO fact VALUES {}", rows.join(", ")))
        .expect("fact rows");
    db
}

fn explain(db: &Database, spec: &str, sql: &str) -> String {
    Engine::new()
        .with_optimizer_rules(spec)
        .explain(db, sql)
        .unwrap_or_else(|e| panic!("EXPLAIN failed for {sql}: {e}"))
}

#[test]
fn pushdown_through_join_golden() {
    let db = star_db();
    let q = "SELECT f.id, d.name FROM fact f JOIN dim d ON f.dept_id = d.dept_id \
             WHERE f.cost > 150.0 AND d.head_count > 30";
    // The conjunction splits by side: each half lands in its own scan.
    assert_eq!(
        explain(&db, "all", q),
        "Project [id, name] (2 exprs)\n\
         \x20 Join Inner\n\
         \x20   TableScan fact cols=[id, dept_id, cost] filter=Binary { op: Gt, left: Column(2), right: Literal(Float(150.0)) }\n\
         \x20   TableScan dim filter=Binary { op: Gt, left: Column(2), right: Literal(Int(30)) }\n"
    );
    // Ablated: the whole predicate stays in a Filter above the Join, while
    // projection pruning (still enabled) keeps trimming the fact scan.
    assert_eq!(
        explain(&db, "-pushdown", q),
        "Project [id, name] (2 exprs)\n\
         \x20 Filter Binary { op: And, left: Binary { op: Gt, left: Column(2), right: Literal(Float(150.0)) }, right: Binary { op: Gt, left: Column(5), right: Literal(Int(30)) } }\n\
         \x20   Join Inner\n\
         \x20     TableScan fact cols=[id, dept_id, cost]\n\
         \x20     TableScan dim\n"
    );
}

#[test]
fn projection_pruning_golden() {
    let db = star_db();
    let q = "SELECT d.name FROM fact f JOIN dim d ON f.dept_id = d.dept_id";
    // Required-column sets thread down to both scans.
    assert_eq!(
        explain(&db, "all", q),
        "Project [name] (1 exprs)\n\
         \x20 Join Inner\n\
         \x20   TableScan fact cols=[dept_id]\n\
         \x20   TableScan dim cols=[dept_id, name]\n"
    );
    assert_eq!(
        explain(&db, "-prune", q),
        "Project [name] (1 exprs)\n\
         \x20 Join Inner\n\
         \x20   TableScan fact\n\
         \x20   TableScan dim\n"
    );
}

#[test]
fn join_reorder_golden() {
    let db = star_db();
    let q = "SELECT f.id, d.name, y.label FROM fact f \
             JOIN dim d ON f.dept_id = d.dept_id \
             JOIN dim_year y ON f.year = y.year";
    // Greedy reorder starts from the smallest connected table (dim, 2
    // rows), joins fact next, and restores output order with a Project.
    assert_eq!(
        explain(&db, "all", q),
        "Project [id, name, label] (3 exprs)\n\
         \x20 Project [id, name, label] (3 exprs)\n\
         \x20   Join Inner\n\
         \x20     Join Inner\n\
         \x20       TableScan dim cols=[dept_id, name]\n\
         \x20       TableScan fact cols=[id, dept_id, year]\n\
         \x20     TableScan dim_year\n"
    );
    // Ablated: the syntactic order (fact first) survives.
    assert_eq!(
        explain(&db, "-reorder", q),
        "Project [id, name, label] (3 exprs)\n\
         \x20 Join Inner\n\
         \x20   Join Inner\n\
         \x20     TableScan fact cols=[id, dept_id, year]\n\
         \x20     TableScan dim cols=[dept_id, name]\n\
         \x20   TableScan dim_year\n"
    );
}

#[test]
fn constant_folding_golden() {
    let db = star_db();
    let q = "SELECT id FROM fact WHERE cost > 100.0 + 50.0 AND 1 + 1 = 2";
    assert_eq!(
        explain(&db, "all", q),
        "Project [id] (1 exprs)\n\
         \x20 TableScan fact cols=[id, cost] filter=Binary { op: And, left: Binary { op: Gt, left: Column(1), right: Literal(Float(150.0)) }, right: Literal(Bool(true)) }\n"
    );
    // Ablated: both constant subexpressions survive unevaluated.
    assert_eq!(
        explain(&db, "-fold", q),
        "Project [id] (1 exprs)\n\
         \x20 TableScan fact cols=[id, cost] filter=Binary { op: And, left: Binary { op: Gt, left: Column(1), right: Binary { op: Add, left: Literal(Float(100.0)), right: Literal(Float(50.0)) } }, right: Binary { op: Eq, left: Binary { op: Add, left: Literal(Int(1)), right: Literal(Int(1)) }, right: Literal(Int(2)) } }\n"
    );
}

#[test]
fn index_selection_golden_renders_residual() {
    let db = star_db();
    let q = "SELECT id FROM fact WHERE year = 2009 AND cost > 150.0";
    // The secondary index serves the equality; the full predicate is kept
    // as the rendered residual re-checked after the index probe.
    assert_eq!(
        explain(&db, "all", q),
        "Project [id] (1 exprs)\n\
         \x20 IndexScan fact via ix_fact_year range=[2009, 2009] residual=Binary { op: And, left: Binary { op: Eq, left: Column(2), right: Literal(Int(2009)) }, right: Binary { op: Gt, left: Column(3), right: Literal(Float(150.0)) } }\n"
    );
    assert_eq!(
        explain(&db, "-index", q),
        "Project [id] (1 exprs)\n\
         \x20 TableScan fact cols=[id, year, cost] filter=Binary { op: And, left: Binary { op: Eq, left: Column(1), right: Literal(Int(2009)) }, right: Binary { op: Gt, left: Column(2), right: Literal(Float(150.0)) } }\n"
    );
}

#[test]
fn env_default_ablates_rules_like_spec() {
    let db = star_db();
    let q = "SELECT d.name FROM fact f JOIN dim d ON f.dept_id = d.dept_id";
    std::env::set_var("ODBIS_SQL_OPTIMIZER_RULES", "-prune");
    let via_env = Engine::new().explain(&db, q).unwrap();
    std::env::remove_var("ODBIS_SQL_OPTIMIZER_RULES");
    assert_eq!(via_env, explain(&db, "-prune", q));
    assert_ne!(via_env, explain(&db, "all", q));
}
