//! Regression tests for the top-k fast path: `LIMIT` directly above
//! `ORDER BY` runs through a bounded binary heap instead of a full sort,
//! and must reproduce the stable full-sort prefix exactly — including tie
//! order, DESC keys, NULL placement, and OFFSET handling.

use odbis_sql::Engine;
use odbis_storage::Database;

/// 300 rows with heavy duplication in the sort key so ties are the common
/// case, plus NULLs in both a sort key and a payload column.
fn db() -> Database {
    let db = Database::new();
    let engine = Engine::new();
    engine
        .execute(
            &db,
            "CREATE TABLE ranked (id INT PRIMARY KEY, bucket INT, score DOUBLE, tag TEXT)",
        )
        .expect("DDL");
    let rows: Vec<String> = (0..300)
        .map(|i| {
            let bucket = i % 7;
            let score = if i % 11 == 0 {
                "NULL".to_string()
            } else {
                format!("{}.5", i % 13)
            };
            let tag = if i % 5 == 0 {
                "NULL".to_string()
            } else {
                format!("'t{}'", i % 3)
            };
            format!("({i}, {bucket}, {score}, {tag})")
        })
        .collect();
    engine
        .execute(
            &db,
            &format!("INSERT INTO ranked VALUES {}", rows.join(", ")),
        )
        .expect("rows");
    db
}

/// The heap path must equal the full sort truncated at the same point.
fn assert_topk_matches_full_sort(db: &Database, order: &str, limit: usize, offset: usize) {
    let engine = Engine::new();
    let full = engine
        .execute(
            db,
            &format!("SELECT id, bucket, score FROM ranked ORDER BY {order}"),
        )
        .expect("full sort");
    let suffix = if offset > 0 {
        format!(" LIMIT {limit} OFFSET {offset}")
    } else {
        format!(" LIMIT {limit}")
    };
    let topk = engine
        .execute(
            db,
            &format!("SELECT id, bucket, score FROM ranked ORDER BY {order}{suffix}"),
        )
        .expect("top-k");
    let expected: Vec<_> = full.rows.iter().skip(offset).take(limit).cloned().collect();
    assert_eq!(
        topk.rows, expected,
        "top-k mismatch for ORDER BY {order}{suffix}"
    );
}

#[test]
fn topk_equals_full_sort_prefix() {
    let db = db();
    assert_topk_matches_full_sort(&db, "bucket, id", 10, 0);
    assert_topk_matches_full_sort(&db, "score DESC, id", 25, 0);
    assert_topk_matches_full_sort(&db, "bucket", 40, 0);
}

#[test]
fn topk_ties_are_stable_like_full_sort() {
    // `bucket` alone leaves ~43 ties per key; the heap's sequence-number
    // tiebreak must reproduce the stable sort's input order.
    let db = db();
    assert_topk_matches_full_sort(&db, "bucket", 50, 0);
    assert_topk_matches_full_sort(&db, "tag, bucket", 60, 0);
}

#[test]
fn topk_respects_offset() {
    let db = db();
    assert_topk_matches_full_sort(&db, "bucket, id", 10, 35);
    assert_topk_matches_full_sort(&db, "score, id", 5, 295); // tail
    assert_topk_matches_full_sort(&db, "id", 5, 400); // past the end
}

#[test]
fn topk_with_limit_beyond_input_is_the_whole_sort() {
    let db = db();
    assert_topk_matches_full_sort(&db, "score DESC, id DESC", 1000, 0);
}

#[test]
fn topk_agrees_with_row_engine() {
    let db = db();
    let q = "SELECT id, score FROM ranked WHERE bucket < 5 ORDER BY score DESC, id LIMIT 12";
    let vectorized = Engine::new().execute(&db, q).expect("vectorized");
    let row = Engine::with_row_execution().execute(&db, q).expect("row");
    assert_eq!(vectorized.rows, row.rows);
    assert_eq!(vectorized.columns, row.columns);
}
