//! Integration test: a full star-schema analytics workload through the SQL
//! engine — the query shapes the ODBIS Analysis and Reporting services
//! generate.

use odbis_sql::Engine;
use odbis_storage::{Database, Value};

fn warehouse() -> (Database, Engine) {
    let db = Database::new();
    let e = Engine::new();
    e.execute_script(
        &db,
        "CREATE TABLE dim_date (date_id INT PRIMARY KEY, year INT, quarter INT, month INT);
         CREATE TABLE dim_product (product_id INT PRIMARY KEY, name TEXT, category TEXT, price DOUBLE);
         CREATE TABLE dim_store (store_id INT PRIMARY KEY, region TEXT, city TEXT);
         CREATE TABLE fact_sales (
             sale_id INT PRIMARY KEY, date_id INT, product_id INT, store_id INT,
             qty INT, amount DOUBLE
         );
         CREATE INDEX ix_sales_date ON fact_sales (date_id);
         CREATE INDEX ix_sales_product ON fact_sales (product_id);",
    )
    .unwrap();
    // dates: 2009 Q1..Q4 and 2010 Q1
    let mut date_rows = Vec::new();
    for (i, (y, q, m)) in [
        (2009, 1, 2),
        (2009, 2, 5),
        (2009, 3, 8),
        (2009, 4, 11),
        (2010, 1, 2),
    ]
    .iter()
    .enumerate()
    {
        date_rows.push(format!("({}, {y}, {q}, {m})", i + 1));
    }
    e.execute(
        &db,
        &format!("INSERT INTO dim_date VALUES {}", date_rows.join(", ")),
    )
    .unwrap();
    e.execute(
        &db,
        "INSERT INTO dim_product VALUES
           (1, 'widget', 'hardware', 9.99), (2, 'gadget', 'hardware', 19.99),
           (3, 'ebook', 'digital', 4.99)",
    )
    .unwrap();
    e.execute(
        &db,
        "INSERT INTO dim_store VALUES (1, 'EU', 'Paris'), (2, 'EU', 'Berlin'), (3, 'US', 'NYC')",
    )
    .unwrap();
    // deterministic fact data: 60 sales round-robin over dims
    let mut rows = Vec::new();
    for i in 0..60i64 {
        let date = 1 + (i % 5);
        let product = 1 + (i % 3);
        let store = 1 + ((i / 3) % 3);
        let qty = 1 + (i % 4);
        let amount = (qty as f64) * (product as f64) * 10.0;
        rows.push(format!(
            "({i}, {date}, {product}, {store}, {qty}, {amount})"
        ));
    }
    e.execute(
        &db,
        &format!("INSERT INTO fact_sales VALUES {}", rows.join(", ")),
    )
    .unwrap();
    (db, e)
}

#[test]
fn three_way_star_join_with_rollup() {
    let (db, e) = warehouse();
    let r = e
        .execute(
            &db,
            "SELECT d.year, s.region, p.category,
                    COUNT(*) AS sales, SUM(f.amount) AS revenue
             FROM fact_sales f
             JOIN dim_date d ON f.date_id = d.date_id
             JOIN dim_store s ON f.store_id = s.store_id
             JOIN dim_product p ON f.product_id = p.product_id
             GROUP BY d.year, s.region, p.category
             ORDER BY d.year, s.region, p.category",
        )
        .unwrap();
    assert_eq!(
        r.columns,
        vec!["year", "region", "category", "sales", "revenue"]
    );
    assert!(!r.rows.is_empty());
    // grand total across groups equals the ungrouped total
    let grouped_total: f64 = r.rows.iter().map(|row| row[4].as_f64().unwrap()).sum();
    let grand = e
        .execute(&db, "SELECT SUM(amount) FROM fact_sales")
        .unwrap();
    assert!((grouped_total - grand.rows[0][0].as_f64().unwrap()).abs() < 1e-9);
    // group counts sum to the fact count
    let n: i64 = r.rows.iter().map(|row| row[3].as_i64().unwrap()).sum();
    assert_eq!(n, 60);
}

#[test]
fn filtered_drilldown_uses_indexes_and_matches_naive() {
    let (db, e) = warehouse();
    let naive = Engine::without_index_selection();
    let q = "SELECT p.name, SUM(f.qty) AS units
             FROM fact_sales f JOIN dim_product p ON f.product_id = p.product_id
             WHERE f.date_id = 5 AND f.amount > 15
             GROUP BY p.name ORDER BY units DESC, p.name";
    let a = e.execute(&db, q).unwrap();
    let b = naive.execute(&db, q).unwrap();
    assert_eq!(a.rows, b.rows);
    let explain = e.explain(&db, q).unwrap();
    assert!(explain.contains("IndexScan"), "{explain}");
}

#[test]
fn having_and_case_banding() {
    let (db, e) = warehouse();
    let r = e
        .execute(
            &db,
            "SELECT s.city,
                    CASE WHEN SUM(f.amount) >= 500 THEN 'major' ELSE 'minor' END AS tier,
                    SUM(f.amount) AS revenue
             FROM fact_sales f JOIN dim_store s ON f.store_id = s.store_id
             GROUP BY s.city
             HAVING COUNT(*) > 5
             ORDER BY revenue DESC",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    for row in &r.rows {
        let tier = row[1].as_str().unwrap();
        let rev = row[2].as_f64().unwrap();
        assert_eq!(tier == "major", rev >= 500.0, "banding must match revenue");
    }
}

#[test]
fn left_join_finds_dimension_members_without_sales() {
    let (db, e) = warehouse();
    e.execute(
        &db,
        "INSERT INTO dim_product VALUES (4, 'unsold thing', 'misc', 1.0)",
    )
    .unwrap();
    let r = e
        .execute(
            &db,
            "SELECT p.name, COUNT(f.sale_id) AS sales
             FROM dim_product p LEFT JOIN fact_sales f ON p.product_id = f.product_id
             GROUP BY p.name HAVING COUNT(f.sale_id) = 0",
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::from("unsold thing"), Value::Int(0)]]
    );
}

#[test]
fn update_cascades_into_aggregates() {
    let (db, e) = warehouse();
    let before = e
        .execute(
            &db,
            "SELECT SUM(amount) FROM fact_sales WHERE product_id = 3",
        )
        .unwrap();
    e.execute(
        &db,
        "UPDATE fact_sales SET amount = amount * 2 WHERE product_id = 3",
    )
    .unwrap();
    let after = e
        .execute(
            &db,
            "SELECT SUM(amount) FROM fact_sales WHERE product_id = 3",
        )
        .unwrap();
    assert!(
        (after.rows[0][0].as_f64().unwrap() - 2.0 * before.rows[0][0].as_f64().unwrap()).abs()
            < 1e-9
    );
}

#[test]
fn distinct_and_in_subsets() {
    let (db, e) = warehouse();
    let r = e
        .execute(
            &db,
            "SELECT DISTINCT s.region FROM fact_sales f
             JOIN dim_store s ON f.store_id = s.store_id
             WHERE f.product_id IN (1, 2) ORDER BY s.region",
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::from("EU")], vec![Value::from("US")]]
    );
}
