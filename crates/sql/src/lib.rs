//! # odbis-sql
//!
//! A SQL query engine over [`odbis_storage`] — the reproduction's substitute
//! for the JDBC/SQL access path in the ODBIS paper's technical architecture.
//! The Meta-Data Service's *DataSet* objects ("a SQL query abstraction used
//! by charts, data-tables and dashboards", ODBIS §3.3) execute through this
//! engine, as do ad-hoc reports and ETL extracts.
//!
//! Pipeline: [`parse`] → bind/plan ([`planner`]) → optimize (an ordered
//! rule pipeline — constant folding, filter pushdown, join reordering,
//! index selection, projection pruning; see [`optimizer`]) → execute
//! (vectorized, optionally morsel-parallel).
//!
//! ```
//! use odbis_sql::Engine;
//! use odbis_storage::Database;
//!
//! let db = Database::new();
//! let engine = Engine::new();
//! engine.execute(&db, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
//! engine.execute(&db, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
//! let r = engine.execute(&db, "SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(r.rows[0][0], odbis_storage::Value::Int(2));
//! ```

#![warn(missing_docs)]

pub mod ast;
mod error;
mod exec;
pub mod expr;
mod functions;
mod lexer;
pub mod optimizer;
mod parser;
pub mod plan;
pub mod planner;

pub use error::{SqlError, SqlResult};
pub use expr::{like_match, BExpr};
pub use functions::{cast_value, ScalarFunc};
pub use parser::{parse, parse_script};

use odbis_storage::{Batch, Column, Database, Schema, Value};

use ast::Statement;

/// Result of executing one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted (0 for queries and DDL).
    pub rows_affected: usize,
}

impl QueryResult {
    fn dml(rows_affected: usize) -> Self {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            rows_affected,
        }
    }

    /// Build a result from output column names and a columnar [`Batch`] —
    /// the single row-pivot point at the end of vectorized execution.
    pub fn from_batch(columns: Vec<String>, batch: &Batch) -> Self {
        QueryResult {
            columns,
            rows: batch.to_rows(),
            rows_affected: 0,
        }
    }

    /// Index of an output column by name, via the platform-wide
    /// [`odbis_storage::resolve_column`] rule (ASCII case-insensitive,
    /// first match wins).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        odbis_storage::resolve_column(self.columns.iter().map(String::as_str), name)
    }

    /// Iterate one output column's values down all rows (columnar access
    /// for consumers like reporting that read results column-wise).
    pub fn column(&self, i: usize) -> impl Iterator<Item = &Value> + '_ {
        self.rows.iter().map(move |r| &r[i])
    }

    /// Pretty-print the result as an aligned text table (SQL-shell style).
    pub fn to_text_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("| {:<width$} ", c, width = widths[i]));
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("| {:<width$} ", cell, width = widths[i]));
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

/// Warehouse tables a SQL text reads or writes, in first-mention order
/// (lower-cased, deduplicated). Used by the streaming layer to key watch
/// subscriptions: a dataset's watchers wake when any of its referenced
/// tables changes. Errors if the text does not parse.
pub fn referenced_tables(sql: &str) -> SqlResult<Vec<String>> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |name: &str| {
        let lower = name.to_ascii_lowercase();
        if !out.contains(&lower) {
            out.push(lower);
        }
    };
    for stmt in parse_script(sql)? {
        match &stmt {
            Statement::Select(sel) => {
                if let Some(t) = &sel.from {
                    push(&t.table);
                }
                for j in &sel.joins {
                    push(&j.table.table);
                }
            }
            Statement::CreateTable { name, .. }
            | Statement::DropTable { name, .. }
            | Statement::Insert { table: name, .. }
            | Statement::Update { table: name, .. }
            | Statement::Delete { table: name, .. }
            | Statement::CreateIndex { table: name, .. }
            | Statement::DropIndex { table: name, .. } => push(name),
        }
    }
    Ok(out)
}

/// The SQL engine. Stateless apart from configuration; cheap to clone.
#[derive(Debug, Clone)]
pub struct Engine {
    use_indexes: bool,
    vectorized: bool,
    parallelism: usize,
    rules: optimizer::RuleSet,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Default worker count for morsel-parallel execution: env
/// `ODBIS_SQL_PARALLELISM` when set, otherwise the machine's available
/// parallelism.
fn parallelism_default() -> usize {
    match std::env::var("ODBIS_SQL_PARALLELISM") {
        Ok(v) => v.trim().parse().ok().filter(|&n| n >= 1).unwrap_or(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Default optimizer rule set: env `ODBIS_SQL_OPTIMIZER_RULES` when set
/// (see [`optimizer::RuleSet::from_spec`] for the grammar), otherwise all
/// rules.
fn rules_default() -> optimizer::RuleSet {
    match std::env::var("ODBIS_SQL_OPTIMIZER_RULES") {
        Ok(spec) => optimizer::RuleSet::from_spec(&spec),
        Err(_) => optimizer::RuleSet::all(),
    }
}

impl Engine {
    /// Engine with all optimizations enabled (vectorized columnar
    /// execution, the full optimizer rule pipeline, index selection, and
    /// morsel-parallel execution sized to the machine).
    pub fn new() -> Self {
        Engine {
            use_indexes: true,
            vectorized: true,
            parallelism: parallelism_default(),
            rules: rules_default(),
        }
    }

    /// Engine that never selects index scans (ablation A1 baseline; every
    /// query runs as a filtered heap scan).
    pub fn without_index_selection() -> Self {
        Engine {
            use_indexes: false,
            ..Engine::new()
        }
    }

    /// Engine that executes row-at-a-time instead of over columnar batches
    /// (the pre-columnar baseline; kept for ablations and as the reference
    /// side of the differential harness).
    pub fn with_row_execution() -> Self {
        Engine {
            vectorized: false,
            ..Engine::new()
        }
    }

    /// Set the worker count for morsel-parallel execution (`<= 1` =
    /// serial vectorized execution).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Set the optimizer rule set from a spec string (see
    /// [`optimizer::RuleSet::from_spec`]), e.g. `"all"`, `"none"`, or
    /// `"-reorder,-prune"`.
    pub fn with_optimizer_rules(mut self, spec: &str) -> Self {
        self.rules = optimizer::RuleSet::from_spec(spec);
        self
    }

    /// Whether SELECTs run on the vectorized columnar path.
    pub fn is_vectorized(&self) -> bool {
        self.vectorized
    }

    /// Worker count used by morsel-parallel execution.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn exec_options(&self) -> exec::ExecOptions {
        exec::ExecOptions {
            parallelism: self.parallelism,
        }
    }

    /// Parse, plan, optimize and execute one statement.
    pub fn execute(&self, db: &Database, sql: &str) -> SqlResult<QueryResult> {
        let mut span = odbis_telemetry::child_span(
            "sql",
            if self.vectorized {
                "execute.vectorized"
            } else {
                "execute.row"
            },
        );
        span.set_detail(sql);
        let result = parse(sql).and_then(|stmt| self.execute_statement(db, &stmt));
        match &result {
            Ok(r) => span.set_rows((r.rows.len() + r.rows_affected) as u64),
            Err(_) => span.fail(),
        }
        result
    }

    /// Execute a `;`-separated script; returns the result of each statement.
    pub fn execute_script(&self, db: &Database, sql: &str) -> SqlResult<Vec<QueryResult>> {
        let stmts = parse_script(sql)?;
        stmts
            .iter()
            .map(|s| self.execute_statement(db, s))
            .collect()
    }

    /// Execute a pre-parsed statement.
    pub fn execute_statement(&self, db: &Database, stmt: &Statement) -> SqlResult<QueryResult> {
        match stmt {
            Statement::Select(sel) => {
                let plan = planner::plan_select(db, sel)?;
                let plan = optimizer::optimize(plan, db, self.use_indexes, &self.rules);
                let columns: Vec<String> = plan.schema.iter().map(|c| c.name.clone()).collect();
                if self.vectorized {
                    let batch = exec::run_batch_with(db, &plan, self.exec_options())?;
                    Ok(QueryResult::from_batch(columns, &batch))
                } else {
                    Ok(QueryResult {
                        columns,
                        rows: exec::run(db, &plan)?,
                        rows_affected: 0,
                    })
                }
            }
            Statement::CreateTable {
                name,
                if_not_exists,
                columns,
                primary_key,
            } => {
                if *if_not_exists && db.has_table(name) {
                    return Ok(QueryResult::dml(0));
                }
                let cols: Vec<Column> = columns
                    .iter()
                    .map(|c| {
                        let mut col = Column::new(c.name.clone(), c.data_type);
                        if c.not_null {
                            col = col.not_null();
                        }
                        if let Some(d) = &c.default {
                            let d = d.coerce_to(c.data_type).ok_or_else(|| {
                                SqlError::Type(format!(
                                    "default for {} is not a {}",
                                    c.name, c.data_type
                                ))
                            })?;
                            col = col.with_default(d);
                        }
                        Ok(col)
                    })
                    .collect::<SqlResult<_>>()?;
                let mut schema = Schema::new(cols)?;
                if !primary_key.is_empty() {
                    let refs: Vec<&str> = primary_key.iter().map(String::as_str).collect();
                    schema = schema.with_primary_key(&refs)?;
                }
                db.create_table(name, schema)?;
                Ok(QueryResult::dml(0))
            }
            Statement::DropTable { name, if_exists } => {
                if *if_exists && !db.has_table(name) {
                    return Ok(QueryResult::dml(0));
                }
                db.drop_table(name)?;
                Ok(QueryResult::dml(0))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => {
                let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
                db.write_table(table, |t| t.create_index(name, &refs, *unique))??;
                Ok(QueryResult::dml(0))
            }
            Statement::DropIndex { name, table } => {
                db.write_table(table, |t| t.drop_index(name))??;
                Ok(QueryResult::dml(0))
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.insert(db, table, columns, rows),
            Statement::Update {
                table,
                sets,
                filter,
            } => self.update(db, table, sets, filter.as_ref()),
            Statement::Delete { table, filter } => self.delete(db, table, filter.as_ref()),
        }
    }

    /// Execute a single `SELECT` and return its output column names plus
    /// the columnar [`Batch`] *without* the final row pivot — the entry
    /// point for columnar consumers (OLAP cube builds, ETL extracts).
    pub fn execute_select_batch(
        &self,
        db: &Database,
        sql: &str,
    ) -> SqlResult<(Vec<String>, Batch)> {
        let stmt = parse(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(SqlError::Bind(
                "execute_select_batch supports only SELECT".into(),
            ));
        };
        let plan = planner::plan_select(db, &sel)?;
        let plan = optimizer::optimize(plan, db, self.use_indexes, &self.rules);
        let columns: Vec<String> = plan.schema.iter().map(|c| c.name.clone()).collect();
        let batch = exec::run_batch_with(db, &plan, self.exec_options())?;
        Ok((columns, batch))
    }

    /// Produce the optimized plan for a `SELECT`, rendered as text.
    pub fn explain(&self, db: &Database, sql: &str) -> SqlResult<String> {
        let stmt = parse(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(SqlError::Bind("EXPLAIN supports only SELECT".into()));
        };
        let plan = planner::plan_select(db, &sel)?;
        let plan = optimizer::optimize(plan, db, self.use_indexes, &self.rules);
        Ok(plan.explain())
    }

    fn insert(
        &self,
        db: &Database,
        table: &str,
        columns: &[String],
        rows: &[Vec<ast::Expr>],
    ) -> SqlResult<QueryResult> {
        let schema = db.table_schema(table)?;
        let mut txn = db.begin();
        for exprs in rows {
            let values: Vec<Value> = exprs
                .iter()
                .map(|e| planner::bind(e, &[])?.eval(&[]))
                .collect::<SqlResult<_>>()?;
            let row = if columns.is_empty() {
                schema.check_row(table, &values)?
            } else {
                if columns.len() != values.len() {
                    return Err(SqlError::Bind(format!(
                        "{} columns but {} values",
                        columns.len(),
                        values.len()
                    )));
                }
                let pairs: Vec<(&str, Value)> =
                    columns.iter().map(String::as_str).zip(values).collect();
                schema.row_from_pairs(table, &pairs)?
            };
            txn.insert(table, row)?;
        }
        let n = rows.len();
        txn.commit()?;
        Ok(QueryResult::dml(n))
    }

    fn update(
        &self,
        db: &Database,
        table: &str,
        sets: &[(String, ast::Expr)],
        filter: Option<&ast::Expr>,
    ) -> SqlResult<QueryResult> {
        let schema = db.table_schema(table)?;
        let plan_schema: Vec<plan::PlanCol> = schema
            .columns()
            .iter()
            .map(|c| plan::PlanCol {
                qualifier: Some(table.to_string()),
                name: c.name.clone(),
            })
            .collect();
        let bound_sets: Vec<(usize, BExpr)> = sets
            .iter()
            .map(|(name, e)| {
                let i = schema
                    .index_of(name)
                    .ok_or_else(|| SqlError::Bind(format!("unknown column {name}")))?;
                Ok((i, planner::bind(e, &plan_schema)?))
            })
            .collect::<SqlResult<_>>()?;
        let pred = filter.map(|f| planner::bind(f, &plan_schema)).transpose()?;

        db.write_table(table, |t| -> SqlResult<QueryResult> {
            let mut updates = Vec::new();
            for (id, row) in t.scan() {
                let keep = match &pred {
                    Some(p) => expr::truth(&p.eval(row)?) == Some(true),
                    None => true,
                };
                if keep {
                    let mut new_row = row.to_vec();
                    for (i, e) in &bound_sets {
                        new_row[*i] = e.eval(row)?;
                    }
                    updates.push((id, new_row));
                }
            }
            let n = updates.len();
            for (id, new_row) in updates {
                t.update(id, new_row)?;
            }
            Ok(QueryResult::dml(n))
        })?
    }

    fn delete(
        &self,
        db: &Database,
        table: &str,
        filter: Option<&ast::Expr>,
    ) -> SqlResult<QueryResult> {
        let schema = db.table_schema(table)?;
        let plan_schema: Vec<plan::PlanCol> = schema
            .columns()
            .iter()
            .map(|c| plan::PlanCol {
                qualifier: Some(table.to_string()),
                name: c.name.clone(),
            })
            .collect();
        let pred = filter.map(|f| planner::bind(f, &plan_schema)).transpose()?;
        db.write_table(table, |t| -> SqlResult<QueryResult> {
            let mut ids = Vec::new();
            for (id, row) in t.scan() {
                let hit = match &pred {
                    Some(p) => expr::truth(&p.eval(row)?) == Some(true),
                    None => true,
                };
                if hit {
                    ids.push(id);
                }
            }
            let n = ids.len();
            for id in ids {
                t.delete(id)?;
            }
            Ok(QueryResult::dml(n))
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Database, Engine) {
        let db = Database::new();
        let e = Engine::new();
        e.execute_script(
            &db,
            "CREATE TABLE dept (id INT PRIMARY KEY, name TEXT NOT NULL, region TEXT);
             CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, name TEXT, salary DOUBLE, hired DATE);
             INSERT INTO dept VALUES (1, 'Eng', 'EU'), (2, 'Sales', 'US'), (3, 'HR', 'EU');",
        )
        .unwrap();
        e.execute(
            &db,
            "INSERT INTO emp VALUES \
               (1, 1, 'ana', 95000, NULL), \
               (2, 1, 'bob', 85000, NULL), \
               (3, 2, 'carol', 70000, NULL), \
               (4, 2, 'dan', 72000, NULL), \
               (5, NULL, 'eve', 50000, NULL)",
        )
        .unwrap();
        e.execute_script(
            &db,
            "UPDATE emp SET hired = DATE '2009-01-15' WHERE id = 1;
             UPDATE emp SET hired = DATE '2009-06-01' WHERE id = 2;
             UPDATE emp SET hired = DATE '2008-11-20' WHERE id = 3;
             UPDATE emp SET hired = DATE '2010-02-01' WHERE id = 4;
             UPDATE emp SET hired = DATE '2010-03-22' WHERE id = 5;",
        )
        .unwrap();
        (db, e)
    }

    #[test]
    fn select_star_and_where() {
        let (db, e) = setup();
        let r = e
            .execute(&db, "SELECT * FROM emp WHERE salary > 80000")
            .unwrap();
        assert_eq!(r.columns.len(), 5);
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn projection_expressions_and_aliases() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "SELECT name, salary * 1.1 AS raised, UPPER(name) FROM emp WHERE id = 1",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["name", "raised", "UPPER(name)"]);
        assert_eq!(r.rows[0][1], Value::Float(95000.0 * 1.1));
        assert_eq!(r.rows[0][2], Value::from("ANA"));
    }

    #[test]
    fn inner_and_left_join() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.id",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 4); // eve has NULL dept
        let r = e
            .execute(
                &db,
                "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id ORDER BY e.id",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.rows[4][1], Value::Null);
    }

    #[test]
    fn group_by_having_order() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "SELECT d.region, COUNT(*) AS n, AVG(e.salary) AS avg_sal \
                 FROM emp e JOIN dept d ON e.dept_id = d.id \
                 GROUP BY d.region HAVING COUNT(*) >= 2 ORDER BY avg_sal DESC",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["region", "n", "avg_sal"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::from("EU")); // 90k avg beats 71k
        assert_eq!(r.rows[0][1], Value::Int(2));
    }

    #[test]
    fn global_aggregates_and_empty_input() {
        let (db, e) = setup();
        let r = e
            .execute(&db, "SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5));
        let r = e
            .execute(&db, "SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 100")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Null);
    }

    #[test]
    fn sum_overflow_promotes_to_float_instead_of_wrapping() {
        // Two i64::MAX values overflow any integer accumulator; the SUM
        // must come back as the (lossy but ordered) f64 total, never as a
        // wrapped negative integer.
        for engine in [Engine::new(), Engine::with_row_execution()] {
            let db = Database::new();
            engine
                .execute_script(
                    &db,
                    &format!(
                        "CREATE TABLE big (g INT, v INT);
                         INSERT INTO big VALUES (1, {max}), (1, {max}), (2, 7);",
                        max = i64::MAX
                    ),
                )
                .unwrap();
            // global aggregate
            let r = engine.execute(&db, "SELECT SUM(v) FROM big").unwrap();
            assert_eq!(
                r.rows[0][0],
                Value::Float(i64::MAX as f64 + i64::MAX as f64 + 7.0)
            );
            // grouped aggregate: only the overflowing group promotes
            let r = engine
                .execute(&db, "SELECT g, SUM(v) FROM big GROUP BY g ORDER BY g")
                .unwrap();
            assert_eq!(r.rows[0][1], Value::Float(i64::MAX as f64 * 2.0));
            assert_eq!(r.rows[1][1], Value::Int(7));
        }
    }

    #[test]
    fn count_distinct_and_null_skipping() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "SELECT COUNT(dept_id), COUNT(DISTINCT dept_id) FROM emp",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4)); // NULL skipped
        assert_eq!(r.rows[0][1], Value::Int(2));
    }

    #[test]
    fn distinct_order_limit_offset() {
        let (db, e) = setup();
        let r = e
            .execute(&db, "SELECT DISTINCT region FROM dept ORDER BY region")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = e
            .execute(&db, "SELECT id FROM emp ORDER BY id DESC LIMIT 2 OFFSET 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(4)], vec![Value::Int(3)]]);
    }

    #[test]
    fn order_by_expression_not_in_select() {
        let (db, e) = setup();
        let r = e
            .execute(&db, "SELECT name FROM emp ORDER BY salary DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::from("ana"));
        assert_eq!(r.columns, vec!["name"]); // hidden sort column removed
    }

    #[test]
    fn update_and_delete_with_filters() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "UPDATE emp SET salary = salary + 1000 WHERE dept_id = 1",
            )
            .unwrap();
        assert_eq!(r.rows_affected, 2);
        let r = e
            .execute(&db, "SELECT salary FROM emp WHERE id = 1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(96000.0));
        let r = e
            .execute(&db, "DELETE FROM emp WHERE salary < 60000")
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        assert_eq!(db.row_count("emp").unwrap(), 4);
    }

    #[test]
    fn insert_with_column_list_and_defaults() {
        let (db, e) = setup();
        e.execute(
            &db,
            "CREATE TABLE cfg (k TEXT PRIMARY KEY, v TEXT, n INT DEFAULT 7)",
        )
        .unwrap();
        e.execute(&db, "INSERT INTO cfg (k, v) VALUES ('a', 'x')")
            .unwrap();
        let r = e.execute(&db, "SELECT n FROM cfg").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(7));
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let (db, e) = setup();
        let err = e
            .execute(
                &db,
                "INSERT INTO dept VALUES (10, 'X', 'EU'), (1, 'dup', 'EU')",
            )
            .unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)));
        // first row must have been rolled back
        assert_eq!(db.row_count("dept").unwrap(), 3);
    }

    #[test]
    fn index_scan_selected_and_equivalent() {
        let (db, e) = setup();
        e.execute(&db, "CREATE INDEX ix_sal ON emp (salary)")
            .unwrap();
        let explain = e
            .explain(&db, "SELECT name FROM emp WHERE salary = 70000")
            .unwrap();
        assert!(explain.contains("IndexScan"), "{explain}");
        let naive = Engine::without_index_selection();
        let a = e
            .execute(&db, "SELECT name FROM emp WHERE salary = 70000")
            .unwrap();
        let b = naive
            .execute(&db, "SELECT name FROM emp WHERE salary = 70000")
            .unwrap();
        assert_eq!(a.rows, b.rows);
        // pk lookups use the auto index
        let explain = e.explain(&db, "SELECT name FROM emp WHERE id = 3").unwrap();
        assert!(explain.contains("pk_emp"), "{explain}");
    }

    #[test]
    fn range_predicates_via_index_match_scan() {
        let (db, e) = setup();
        e.execute(&db, "CREATE INDEX ix_sal ON emp (salary)")
            .unwrap();
        let naive = Engine::without_index_selection();
        for q in [
            "SELECT id FROM emp WHERE salary > 70000 ORDER BY id",
            "SELECT id FROM emp WHERE salary >= 70000 ORDER BY id",
            "SELECT id FROM emp WHERE salary < 85000 ORDER BY id",
            "SELECT id FROM emp WHERE salary <= 85000 ORDER BY id",
            "SELECT id FROM emp WHERE salary BETWEEN 60000 AND 90000 ORDER BY id",
        ] {
            assert_eq!(
                e.execute(&db, q).unwrap().rows,
                naive.execute(&db, q).unwrap().rows,
                "query: {q}"
            );
        }
    }

    #[test]
    fn case_like_in_between() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "SELECT name, CASE WHEN salary >= 85000 THEN 'high' \
                 WHEN salary >= 60000 THEN 'mid' ELSE 'low' END AS band \
                 FROM emp WHERE name LIKE '%a%' ORDER BY id",
            )
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::from("ana"), Value::from("high")]);
        let r = e
            .execute(&db, "SELECT id FROM emp WHERE id IN (1, 3, 99) ORDER BY id")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn date_functions_and_literals() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "SELECT name FROM emp WHERE hired >= DATE '2010-01-01' ORDER BY hired",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = e
            .execute(
                &db,
                "SELECT YEAR(hired), MONTH(hired) FROM emp WHERE id = 5",
            )
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(2010), Value::Int(3)]);
    }

    #[test]
    fn from_less_select() {
        let (db, e) = setup();
        let r = e.execute(&db, "SELECT 1 + 1 AS two, 'x' || 'y'").unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(2), Value::from("xy")]);
    }

    #[test]
    fn bind_errors() {
        let (db, e) = setup();
        assert!(matches!(
            e.execute(&db, "SELECT ghost FROM emp"),
            Err(SqlError::Bind(_))
        ));
        assert!(matches!(
            e.execute(
                &db,
                "SELECT name FROM emp e JOIN dept d ON e.dept_id = d.id"
            ),
            Err(SqlError::Bind(_)) // ambiguous `name`
        ));
        assert!(matches!(
            e.execute(&db, "SELECT salary FROM emp GROUP BY dept_id"),
            Err(SqlError::Bind(_))
        ));
        assert!(matches!(
            e.execute(&db, "SELECT NOSUCHFN(1)"),
            Err(SqlError::Bind(_))
        ));
    }

    #[test]
    fn three_valued_where_excludes_nulls() {
        let (db, e) = setup();
        // eve's dept_id is NULL: neither = 1 nor <> 1 matches her
        let a = e
            .execute(&db, "SELECT COUNT(*) FROM emp WHERE dept_id = 1")
            .unwrap();
        let b = e
            .execute(&db, "SELECT COUNT(*) FROM emp WHERE dept_id <> 1")
            .unwrap();
        assert_eq!(a.rows[0][0], Value::Int(2));
        assert_eq!(b.rows[0][0], Value::Int(2));
    }

    #[test]
    fn text_table_rendering() {
        let (db, e) = setup();
        let r = e
            .execute(&db, "SELECT id, name FROM emp WHERE id = 1")
            .unwrap();
        let t = r.to_text_table();
        assert!(t.contains("| id |"));
        assert!(t.contains("| ana"));
    }

    #[test]
    fn group_by_expression() {
        let (db, e) = setup();
        let r = e
            .execute(
                &db,
                "SELECT YEAR(hired) AS y, COUNT(*) FROM emp GROUP BY YEAR(hired) ORDER BY y",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3); // 2008, 2009, 2010
        assert_eq!(r.rows[2], vec![Value::Int(2010), Value::Int(2)]);
    }

    #[test]
    fn tumble_in_group_by() {
        let (db, e) = setup();
        // 2-year tumbling windows over hire dates, expressed on YEAR()
        let r = e
            .execute(
                &db,
                "SELECT TUMBLE(YEAR(hired), 2) AS w, COUNT(*) FROM emp GROUP BY TUMBLE(YEAR(hired), 2) ORDER BY w",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(2008), Value::Int(3)], // 2008 + 2009×2
                vec![Value::Int(2010), Value::Int(2)],
            ]
        );
    }

    /// The TUMBLE overflow guard holds on both executors: aligning a value
    /// at the type minimum onto a non-divisor width is an eval error on the
    /// vectorized and the row engine alike — never a wrap or a panic.
    #[test]
    fn tumble_extreme_values_error_on_both_engines() {
        for engine in [Engine::new(), Engine::with_row_execution()] {
            let db = Database::new();
            engine
                .execute(&db, "CREATE TABLE ev (t BIGINT)")
                .unwrap();
            // i64::MIN has no positive literal; build it arithmetically
            engine
                .execute(&db, "INSERT INTO ev VALUES (-9223372036854775807 - 1)")
                .unwrap();
            let err = engine
                .execute(&db, "SELECT TUMBLE(t, 3) FROM ev")
                .unwrap_err();
            assert!(
                matches!(err, SqlError::Eval(ref m) if m.contains("overflow")),
                "expected TUMBLE overflow eval error, got {err:?}"
            );
            // a width the minimum divides exactly still evaluates
            let r = engine.execute(&db, "SELECT TUMBLE(t, 2) FROM ev").unwrap();
            assert_eq!(r.rows[0][0], Value::Int(i64::MIN));
        }
    }

    #[test]
    fn referenced_tables_walks_statements() {
        assert_eq!(
            referenced_tables("SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id")
                .unwrap(),
            vec!["emp", "dept"]
        );
        assert_eq!(
            referenced_tables("INSERT INTO Emp VALUES (1); DELETE FROM emp").unwrap(),
            vec!["emp"]
        );
        assert_eq!(
            referenced_tables("SELECT 1 + 1").unwrap(),
            Vec::<String>::new()
        );
        assert!(referenced_tables("NOT SQL AT ALL").is_err());
    }

    #[test]
    fn ddl_if_variants() {
        let (db, e) = setup();
        assert!(e
            .execute(&db, "CREATE TABLE IF NOT EXISTS dept (id INT)")
            .is_ok());
        assert!(e.execute(&db, "DROP TABLE IF EXISTS nothere").is_ok());
        assert!(e.execute(&db, "DROP TABLE nothere").is_err());
    }
}
