//! Bound expressions: name-resolved, directly evaluable against a row.

use odbis_storage::{parse_date, parse_timestamp, DataType, Value};

use crate::ast::{BinOp, UnOp};
use crate::error::{SqlError, SqlResult};
use crate::functions::ScalarFunc;

/// A bound (name-resolved) scalar expression. Column references are
/// ordinals into the input row.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum BExpr {
    /// Constant.
    Literal(Value),
    /// Input-row ordinal.
    Column(usize),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<BExpr>,
        right: Box<BExpr>,
    },
    /// Unary operation.
    Unary { op: UnOp, expr: Box<BExpr> },
    /// `IS [NOT] NULL`.
    IsNull { expr: Box<BExpr>, negated: bool },
    /// `[NOT] IN (list)`.
    InList {
        expr: Box<BExpr>,
        list: Vec<BExpr>,
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        expr: Box<BExpr>,
        lo: Box<BExpr>,
        hi: Box<BExpr>,
        negated: bool,
    },
    /// Scalar function call.
    Function { func: ScalarFunc, args: Vec<BExpr> },
    /// `CASE`.
    Case {
        branches: Vec<(BExpr, BExpr)>,
        else_expr: Option<Box<BExpr>>,
    },
}

impl BExpr {
    /// Evaluate against one input row.
    pub fn eval(&self, row: &[Value]) -> SqlResult<Value> {
        match self {
            BExpr::Literal(v) => Ok(v.clone()),
            BExpr::Column(i) => row.get(*i).cloned().ok_or_else(|| {
                SqlError::Eval(format!("column ordinal {i} out of range ({})", row.len()))
            }),
            BExpr::Binary { op, left, right } => {
                // short-circuit three-valued AND/OR
                match op {
                    BinOp::And => {
                        let l = left.eval(row)?;
                        match truth(&l) {
                            Some(false) => return Ok(Value::Bool(false)),
                            l_truth => {
                                let r = right.eval(row)?;
                                return Ok(match (l_truth, truth(&r)) {
                                    (_, Some(false)) => Value::Bool(false),
                                    (Some(true), Some(true)) => Value::Bool(true),
                                    _ => Value::Null,
                                });
                            }
                        }
                    }
                    BinOp::Or => {
                        let l = left.eval(row)?;
                        match truth(&l) {
                            Some(true) => return Ok(Value::Bool(true)),
                            l_truth => {
                                let r = right.eval(row)?;
                                return Ok(match (l_truth, truth(&r)) {
                                    (_, Some(true)) => Value::Bool(true),
                                    (Some(false), Some(false)) => Value::Bool(false),
                                    _ => Value::Null,
                                });
                            }
                        }
                    }
                    _ => {}
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            BExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(SqlError::Type(format!(
                            "cannot negate {}",
                            other.render()
                        ))),
                    },
                    UnOp::Not => Ok(match truth(&v) {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    }),
                }
            }
            BExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    match v.sql_eq(&iv) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                })
            }
            BExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = lo.eval(row)?;
                let hi = hi.eval(row)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let within = a != std::cmp::Ordering::Less
                            && b != std::cmp::Ordering::Greater;
                        Ok(Value::Bool(within != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            BExpr::Function { func, args } => {
                let vals: SqlResult<Vec<Value>> = args.iter().map(|a| a.eval(row)).collect();
                func.eval(&vals?)
            }
            BExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, result) in branches {
                    if truth(&cond.eval(row)?) == Some(true) {
                        return result.eval(row);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// True if the expression references no columns (safe to pre-evaluate).
    pub fn is_constant(&self) -> bool {
        match self {
            BExpr::Literal(_) => true,
            BExpr::Column(_) => false,
            BExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            BExpr::Unary { expr, .. } | BExpr::IsNull { expr, .. } => expr.is_constant(),
            BExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(BExpr::is_constant)
            }
            BExpr::Between { expr, lo, hi, .. } => {
                expr.is_constant() && lo.is_constant() && hi.is_constant()
            }
            BExpr::Function { args, .. } => args.iter().all(BExpr::is_constant),
            BExpr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .all(|(c, r)| c.is_constant() && r.is_constant())
                    && else_expr.as_ref().is_none_or(|e| e.is_constant())
            }
        }
    }

    /// Fold constant sub-expressions into literals. Evaluation errors are
    /// left in place (they will surface at run time with row context).
    pub fn fold(self) -> BExpr {
        if self.is_constant() {
            if let Ok(v) = self.eval(&[]) {
                return BExpr::Literal(v);
            }
            return self;
        }
        match self {
            BExpr::Binary { op, left, right } => BExpr::Binary {
                op,
                left: Box::new(left.fold()),
                right: Box::new(right.fold()),
            },
            BExpr::Unary { op, expr } => BExpr::Unary {
                op,
                expr: Box::new(expr.fold()),
            },
            BExpr::IsNull { expr, negated } => BExpr::IsNull {
                expr: Box::new(expr.fold()),
                negated,
            },
            BExpr::InList {
                expr,
                list,
                negated,
            } => BExpr::InList {
                expr: Box::new(expr.fold()),
                list: list.into_iter().map(BExpr::fold).collect(),
                negated,
            },
            BExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => BExpr::Between {
                expr: Box::new(expr.fold()),
                lo: Box::new(lo.fold()),
                hi: Box::new(hi.fold()),
                negated,
            },
            BExpr::Function { func, args } => BExpr::Function {
                func,
                args: args.into_iter().map(BExpr::fold).collect(),
            },
            BExpr::Case {
                branches,
                else_expr,
            } => BExpr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.fold(), r.fold()))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.fold())),
            },
            other => other,
        }
    }

    /// Shift every column ordinal by `delta` (used when splicing an
    /// expression bound to the right side of a join).
    pub fn shift_columns(&mut self, delta: usize) {
        match self {
            BExpr::Literal(_) => {}
            BExpr::Column(i) => *i += delta,
            BExpr::Binary { left, right, .. } => {
                left.shift_columns(delta);
                right.shift_columns(delta);
            }
            BExpr::Unary { expr, .. } | BExpr::IsNull { expr, .. } => expr.shift_columns(delta),
            BExpr::InList { expr, list, .. } => {
                expr.shift_columns(delta);
                for e in list {
                    e.shift_columns(delta);
                }
            }
            BExpr::Between { expr, lo, hi, .. } => {
                expr.shift_columns(delta);
                lo.shift_columns(delta);
                hi.shift_columns(delta);
            }
            BExpr::Function { args, .. } => {
                for a in args {
                    a.shift_columns(delta);
                }
            }
            BExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.shift_columns(delta);
                    r.shift_columns(delta);
                }
                if let Some(e) = else_expr {
                    e.shift_columns(delta);
                }
            }
        }
    }
}

/// SQL truth of a value: `Some(bool)` for booleans (and numerics, where
/// non-zero is true), `None` for NULL.
pub fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        Value::Int(i) => Some(*i != 0),
        Value::Float(f) => Some(*f != 0.0),
        _ => Some(true),
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    use BinOp::*;
    match op {
        Eq | Neq | Lt | Lte | Gt | Gte => {
            let Some(ord) = l.sql_cmp(r) else {
                return Ok(Value::Null);
            };
            use std::cmp::Ordering::*;
            let b = match op {
                Eq => ord == Equal,
                Neq => ord != Equal,
                Lt => ord == Less,
                Lte => ord != Greater,
                Gt => ord == Greater,
                Gte => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            arith(op, l, r)
        }
        Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!("{}{}", l.render(), r.render())))
        }
        Like => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let (s, p) = (
                l.as_str().ok_or_else(|| {
                    SqlError::Type(format!("LIKE expects TEXT, got {}", l.render()))
                })?,
                r.as_str().ok_or_else(|| {
                    SqlError::Type(format!("LIKE pattern must be TEXT, got {}", r.render()))
                })?,
            );
            Ok(Value::Bool(like_match(s, p)))
        }
        And | Or => unreachable!("handled with short-circuit in eval"),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    // Date/Timestamp +- Int days
    if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
        match op {
            BinOp::Add => return Ok(Value::Date(d + n as i32)),
            BinOp::Sub => return Ok(Value::Date(d - n as i32)),
            _ => {}
        }
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    return Err(SqlError::Eval("division by zero".into()));
                }
                // integer division with / like most SQL engines
                Value::Int(a.wrapping_div(*b))
            }
            BinOp::Mod => {
                if *b == 0 {
                    return Err(SqlError::Eval("modulo by zero".into()));
                }
                Value::Int(a.wrapping_rem(*b))
            }
            _ => unreachable!(),
        }),
        _ => {
            let (a, b) = (
                l.as_f64().ok_or_else(|| {
                    SqlError::Type(format!("non-numeric operand {}", l.render()))
                })?,
                r.as_f64().ok_or_else(|| {
                    SqlError::Type(format!("non-numeric operand {}", r.render()))
                })?,
            );
            Ok(match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(SqlError::Eval("division by zero".into()));
                    }
                    Value::Float(a / b)
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Err(SqlError::Eval("modulo by zero".into()));
                    }
                    Value::Float(a % b)
                }
                _ => unreachable!(),
            })
        }
    }
}

/// SQL `LIKE` matching: `%` matches any sequence, `_` any single character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // try to consume 0..=len characters
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

/// Parse a typed literal (`DATE '...'`) into a [`Value`].
pub fn typed_literal(ty: DataType, text: &str) -> SqlResult<Value> {
    match ty {
        DataType::Date => parse_date(text)
            .map(Value::Date)
            .ok_or_else(|| SqlError::Eval(format!("bad DATE literal {text:?}"))),
        DataType::Timestamp => parse_timestamp(text)
            .map(Value::Timestamp)
            .ok_or_else(|| SqlError::Eval(format!("bad TIMESTAMP literal {text:?}"))),
        other => Err(SqlError::Type(format!("no typed literal for {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> BExpr {
        BExpr::Literal(v.into())
    }

    fn bin(op: BinOp, l: BExpr, r: BExpr) -> BExpr {
        BExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        assert_eq!(
            bin(BinOp::Add, lit(1i64), lit(2i64)).eval(&[]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(BinOp::Div, lit(7i64), lit(2i64)).eval(&[]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(BinOp::Div, lit(7.0), lit(2i64)).eval(&[]).unwrap(),
            Value::Float(3.5)
        );
        assert!(bin(BinOp::Div, lit(1i64), lit(0i64)).eval(&[]).is_err());
        assert_eq!(
            bin(BinOp::Add, lit(1i64), BExpr::Literal(Value::Null))
                .eval(&[])
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        let null = BExpr::Literal(Value::Null);
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL
        assert_eq!(
            bin(BinOp::And, null.clone(), lit(false)).eval(&[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            bin(BinOp::Or, null.clone(), lit(true)).eval(&[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::And, null.clone(), lit(true)).eval(&[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            BExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(null)
            }
            .eval(&[])
            .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn comparisons_with_null_yield_null() {
        assert_eq!(
            bin(BinOp::Eq, lit(1i64), BExpr::Literal(Value::Null))
                .eval(&[])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            bin(BinOp::Lt, lit(1i64), lit(2.5)).eval(&[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_list_null_semantics() {
        // 3 IN (1, 2, NULL) is NULL (unknown); 1 IN (1, NULL) is TRUE
        let e = BExpr::InList {
            expr: Box::new(lit(3i64)),
            list: vec![lit(1i64), lit(2i64), BExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
        let e = BExpr::InList {
            expr: Box::new(lit(1i64)),
            list: vec![lit(1i64), BExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_and_case() {
        let e = BExpr::Between {
            expr: Box::new(lit(5i64)),
            lo: Box::new(lit(1i64)),
            hi: Box::new(lit(5i64)),
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
        let c = BExpr::Case {
            branches: vec![(lit(false), lit("a")), (lit(true), lit("b"))],
            else_expr: Some(Box::new(lit("c"))),
        };
        assert_eq!(c.eval(&[]).unwrap(), Value::from("b"));
        let c = BExpr::Case {
            branches: vec![(lit(false), lit("a"))],
            else_expr: None,
        };
        assert_eq!(c.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("x", "%%x%%"));
    }

    #[test]
    fn column_refs_and_shift() {
        let row = vec![Value::Int(10), Value::from("a")];
        assert_eq!(BExpr::Column(1).eval(&row).unwrap(), Value::from("a"));
        assert!(BExpr::Column(5).eval(&row).is_err());
        let mut e = bin(BinOp::Add, BExpr::Column(0), lit(1i64));
        e.shift_columns(3);
        assert_eq!(e, bin(BinOp::Add, BExpr::Column(3), lit(1i64)));
    }

    #[test]
    fn constant_folding() {
        let e = bin(BinOp::Mul, lit(3i64), bin(BinOp::Add, lit(1i64), lit(1i64)));
        assert_eq!(e.fold(), lit(6i64));
        // non-constant parts preserved
        let e = bin(BinOp::Add, BExpr::Column(0), bin(BinOp::Add, lit(1i64), lit(1i64)));
        assert_eq!(e.fold(), bin(BinOp::Add, BExpr::Column(0), lit(2i64)));
        // folding a division by zero is deferred to runtime
        let e = bin(BinOp::Div, lit(1i64), lit(0i64));
        assert!(e.fold().eval(&[]).is_err());
    }

    #[test]
    fn date_arithmetic() {
        let d = odbis_storage::parse_date("2010-03-22").unwrap();
        let e = bin(BinOp::Add, BExpr::Literal(Value::Date(d)), lit(4i64));
        assert_eq!(
            e.eval(&[]).unwrap(),
            Value::Date(odbis_storage::parse_date("2010-03-26").unwrap())
        );
    }

    #[test]
    fn typed_literals() {
        assert!(matches!(
            typed_literal(DataType::Date, "2010-03-22").unwrap(),
            Value::Date(_)
        ));
        assert!(typed_literal(DataType::Date, "nope").is_err());
        assert!(typed_literal(DataType::Int, "1").is_err());
    }
}
