//! Bound expressions: name-resolved, evaluable either against one row
//! ([`BExpr::eval`]) or column-wise against a whole [`Batch`]
//! ([`BExpr::eval_batch`]).

use std::sync::Arc;

use odbis_storage::{parse_date, parse_timestamp, Batch, ColumnData, ColumnVec, DataType, Value};

use crate::ast::{BinOp, UnOp};
use crate::error::{SqlError, SqlResult};
use crate::functions::ScalarFunc;

/// A bound (name-resolved) scalar expression. Column references are
/// ordinals into the input row.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum BExpr {
    /// Constant.
    Literal(Value),
    /// Input-row ordinal.
    Column(usize),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<BExpr>,
        right: Box<BExpr>,
    },
    /// Unary operation.
    Unary { op: UnOp, expr: Box<BExpr> },
    /// `IS [NOT] NULL`.
    IsNull { expr: Box<BExpr>, negated: bool },
    /// `[NOT] IN (list)`.
    InList {
        expr: Box<BExpr>,
        list: Vec<BExpr>,
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        expr: Box<BExpr>,
        lo: Box<BExpr>,
        hi: Box<BExpr>,
        negated: bool,
    },
    /// Scalar function call.
    Function { func: ScalarFunc, args: Vec<BExpr> },
    /// `CASE`.
    Case {
        branches: Vec<(BExpr, BExpr)>,
        else_expr: Option<Box<BExpr>>,
    },
}

impl BExpr {
    /// Evaluate against one input row.
    pub fn eval(&self, row: &[Value]) -> SqlResult<Value> {
        match self {
            BExpr::Literal(v) => Ok(v.clone()),
            BExpr::Column(i) => row.get(*i).cloned().ok_or_else(|| {
                SqlError::Eval(format!("column ordinal {i} out of range ({})", row.len()))
            }),
            BExpr::Binary { op, left, right } => {
                // short-circuit three-valued AND/OR
                match op {
                    BinOp::And => {
                        let l = left.eval(row)?;
                        match truth(&l) {
                            Some(false) => return Ok(Value::Bool(false)),
                            l_truth => {
                                let r = right.eval(row)?;
                                return Ok(match (l_truth, truth(&r)) {
                                    (_, Some(false)) => Value::Bool(false),
                                    (Some(true), Some(true)) => Value::Bool(true),
                                    _ => Value::Null,
                                });
                            }
                        }
                    }
                    BinOp::Or => {
                        let l = left.eval(row)?;
                        match truth(&l) {
                            Some(true) => return Ok(Value::Bool(true)),
                            l_truth => {
                                let r = right.eval(row)?;
                                return Ok(match (l_truth, truth(&r)) {
                                    (_, Some(true)) => Value::Bool(true),
                                    (Some(false), Some(false)) => Value::Bool(false),
                                    _ => Value::Null,
                                });
                            }
                        }
                    }
                    _ => {}
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            BExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(SqlError::Type(format!("cannot negate {}", other.render()))),
                    },
                    UnOp::Not => Ok(match truth(&v) {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    }),
                }
            }
            BExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    match v.sql_eq(&iv) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                })
            }
            BExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = lo.eval(row)?;
                let hi = hi.eval(row)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let within =
                            a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                        Ok(Value::Bool(within != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            BExpr::Function { func, args } => {
                let vals: SqlResult<Vec<Value>> = args.iter().map(|a| a.eval(row)).collect();
                func.eval(&vals?)
            }
            BExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, result) in branches {
                    if truth(&cond.eval(row)?) == Some(true) {
                        return result.eval(row);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate column-wise over a whole batch, producing one output column.
    ///
    /// Semantics are row-identical to mapping [`BExpr::eval`] over the
    /// batch's rows, including three-valued AND/OR short-circuiting: the
    /// right operand is evaluated only on the sub-batch of rows the left
    /// operand did not already decide, so a guarded expression such as
    /// `x <> 0 AND 1/x > 2` never divides by zero. Comparisons and
    /// arithmetic over Int/Float columns take allocation-free typed fast
    /// paths; everything else falls back to element-wise evaluation over
    /// boxed values. The only observable difference from the row path is
    /// *which* error surfaces when several rows would fail.
    pub fn eval_batch(&self, batch: &Batch) -> SqlResult<Arc<ColumnVec>> {
        let n = batch.num_rows();
        match self {
            BExpr::Literal(v) => Ok(Arc::new(ColumnVec::broadcast(v, n))),
            BExpr::Column(i) => batch.columns().get(*i).cloned().ok_or_else(|| {
                SqlError::Eval(format!(
                    "column ordinal {i} out of range ({})",
                    batch.num_columns()
                ))
            }),
            BExpr::Binary { op, left, right } if matches!(op, BinOp::And | BinOp::Or) => {
                eval_logical_batch(*op, left, right, batch)
            }
            BExpr::Binary { op, left, right } => {
                let l = left.eval_batch(batch)?;
                let r = right.eval_batch(batch)?;
                binary_columns(*op, &l, &r)
            }
            BExpr::Unary { op, expr } => {
                let v = expr.eval_batch(batch)?;
                match op {
                    UnOp::Neg => neg_column(&v),
                    UnOp::Not => {
                        let mut data = Vec::with_capacity(n);
                        let mut nulls = vec![false; n];
                        let mut any_null = false;
                        for (i, t) in truth_column(&v).into_iter().enumerate() {
                            match t {
                                Some(b) => data.push(!b),
                                None => {
                                    data.push(false);
                                    nulls[i] = true;
                                    any_null = true;
                                }
                            }
                        }
                        Ok(Arc::new(ColumnVec::new(
                            ColumnData::Bool(data),
                            any_null.then_some(nulls),
                        )))
                    }
                }
            }
            BExpr::IsNull { expr, negated } => {
                let v = expr.eval_batch(batch)?;
                let data: Vec<bool> = (0..n).map(|i| v.is_null(i) != *negated).collect();
                Ok(Arc::new(ColumnVec::new(ColumnData::Bool(data), None)))
            }
            BExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_batch(batch)?;
                let items: Vec<Arc<ColumnVec>> = list
                    .iter()
                    .map(|e| e.eval_batch(batch))
                    .collect::<SqlResult<_>>()?;
                let mut vals = Vec::with_capacity(n);
                for i in 0..n {
                    let x = v.value(i);
                    if x.is_null() {
                        vals.push(Value::Null);
                        continue;
                    }
                    let mut hit = false;
                    let mut saw_null = false;
                    for item in &items {
                        match x.sql_eq(&item.value(i)) {
                            Some(true) => {
                                hit = true;
                                break;
                            }
                            Some(false) => {}
                            None => saw_null = true,
                        }
                    }
                    vals.push(if hit {
                        Value::Bool(!*negated)
                    } else if saw_null {
                        Value::Null
                    } else {
                        Value::Bool(*negated)
                    });
                }
                Ok(Arc::new(ColumnVec::from_values(vals)))
            }
            BExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval_batch(batch)?;
                let lo = lo.eval_batch(batch)?;
                let hi = hi.eval_batch(batch)?;
                let mut vals = Vec::with_capacity(n);
                for i in 0..n {
                    let x = v.value(i);
                    match (x.sql_cmp(&lo.value(i)), x.sql_cmp(&hi.value(i))) {
                        (Some(a), Some(b)) => {
                            let within =
                                a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                            vals.push(Value::Bool(within != *negated));
                        }
                        _ => vals.push(Value::Null),
                    }
                }
                Ok(Arc::new(ColumnVec::from_values(vals)))
            }
            BExpr::Function { func, args } => {
                let cols: Vec<Arc<ColumnVec>> = args
                    .iter()
                    .map(|a| a.eval_batch(batch))
                    .collect::<SqlResult<_>>()?;
                func.eval_columns(&cols, n)
            }
            BExpr::Case {
                branches,
                else_expr,
            } => eval_case_batch(branches, else_expr.as_deref(), batch),
        }
    }

    /// True if the expression references no columns (safe to pre-evaluate).
    pub fn is_constant(&self) -> bool {
        match self {
            BExpr::Literal(_) => true,
            BExpr::Column(_) => false,
            BExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            BExpr::Unary { expr, .. } | BExpr::IsNull { expr, .. } => expr.is_constant(),
            BExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(BExpr::is_constant)
            }
            BExpr::Between { expr, lo, hi, .. } => {
                expr.is_constant() && lo.is_constant() && hi.is_constant()
            }
            BExpr::Function { args, .. } => args.iter().all(BExpr::is_constant),
            BExpr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .all(|(c, r)| c.is_constant() && r.is_constant())
                    && else_expr.as_ref().is_none_or(|e| e.is_constant())
            }
        }
    }

    /// Fold constant sub-expressions into literals. Evaluation errors are
    /// left in place (they will surface at run time with row context).
    pub fn fold(self) -> BExpr {
        if self.is_constant() {
            if let Ok(v) = self.eval(&[]) {
                return BExpr::Literal(v);
            }
            return self;
        }
        match self {
            BExpr::Binary { op, left, right } => BExpr::Binary {
                op,
                left: Box::new(left.fold()),
                right: Box::new(right.fold()),
            },
            BExpr::Unary { op, expr } => BExpr::Unary {
                op,
                expr: Box::new(expr.fold()),
            },
            BExpr::IsNull { expr, negated } => BExpr::IsNull {
                expr: Box::new(expr.fold()),
                negated,
            },
            BExpr::InList {
                expr,
                list,
                negated,
            } => BExpr::InList {
                expr: Box::new(expr.fold()),
                list: list.into_iter().map(BExpr::fold).collect(),
                negated,
            },
            BExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => BExpr::Between {
                expr: Box::new(expr.fold()),
                lo: Box::new(lo.fold()),
                hi: Box::new(hi.fold()),
                negated,
            },
            BExpr::Function { func, args } => BExpr::Function {
                func,
                args: args.into_iter().map(BExpr::fold).collect(),
            },
            BExpr::Case {
                branches,
                else_expr,
            } => BExpr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.fold(), r.fold()))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.fold())),
            },
            other => other,
        }
    }

    /// Shift every column ordinal by `delta` (used when splicing an
    /// expression bound to the right side of a join).
    pub fn shift_columns(&mut self, delta: usize) {
        self.map_columns(&|i| i + delta);
    }

    /// Visit every column ordinal referenced by the expression.
    pub fn for_each_column(&self, f: &mut impl FnMut(usize)) {
        match self {
            BExpr::Literal(_) => {}
            BExpr::Column(i) => f(*i),
            BExpr::Binary { left, right, .. } => {
                left.for_each_column(f);
                right.for_each_column(f);
            }
            BExpr::Unary { expr, .. } | BExpr::IsNull { expr, .. } => expr.for_each_column(f),
            BExpr::InList { expr, list, .. } => {
                expr.for_each_column(f);
                for e in list {
                    e.for_each_column(f);
                }
            }
            BExpr::Between { expr, lo, hi, .. } => {
                expr.for_each_column(f);
                lo.for_each_column(f);
                hi.for_each_column(f);
            }
            BExpr::Function { args, .. } => {
                for a in args {
                    a.for_each_column(f);
                }
            }
            BExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.for_each_column(f);
                    r.for_each_column(f);
                }
                if let Some(e) = else_expr {
                    e.for_each_column(f);
                }
            }
        }
    }

    /// Rewrite every column ordinal through `f` (the workhorse behind
    /// ordinal shifts and the optimizer's schema remappings).
    pub fn map_columns(&mut self, f: &impl Fn(usize) -> usize) {
        match self {
            BExpr::Literal(_) => {}
            BExpr::Column(i) => *i = f(*i),
            BExpr::Binary { left, right, .. } => {
                left.map_columns(f);
                right.map_columns(f);
            }
            BExpr::Unary { expr, .. } | BExpr::IsNull { expr, .. } => expr.map_columns(f),
            BExpr::InList { expr, list, .. } => {
                expr.map_columns(f);
                for e in list {
                    e.map_columns(f);
                }
            }
            BExpr::Between { expr, lo, hi, .. } => {
                expr.map_columns(f);
                lo.map_columns(f);
                hi.map_columns(f);
            }
            BExpr::Function { args, .. } => {
                for a in args {
                    a.map_columns(f);
                }
            }
            BExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.map_columns(f);
                    r.map_columns(f);
                }
                if let Some(e) = else_expr {
                    e.map_columns(f);
                }
            }
        }
    }
}

/// SQL truth of a value: `Some(bool)` for booleans (and numerics, where
/// non-zero is true), `None` for NULL.
pub fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        Value::Int(i) => Some(*i != 0),
        Value::Float(f) => Some(*f != 0.0),
        _ => Some(true),
    }
}

/// Per-row SQL truth of a column — the vectorized [`truth`].
pub fn truth_column(col: &ColumnVec) -> Vec<Option<bool>> {
    let n = col.len();
    match col.data() {
        ColumnData::Bool(v) => (0..n)
            .map(|i| if col.is_null(i) { None } else { Some(v[i]) })
            .collect(),
        ColumnData::Int(v) => (0..n)
            .map(|i| {
                if col.is_null(i) {
                    None
                } else {
                    Some(v[i] != 0)
                }
            })
            .collect(),
        ColumnData::Float(v) => (0..n)
            .map(|i| {
                if col.is_null(i) {
                    None
                } else {
                    Some(v[i] != 0.0)
                }
            })
            .collect(),
        ColumnData::Mixed(vals) => vals.iter().map(truth).collect(),
        _ => (0..n)
            .map(|i| if col.is_null(i) { None } else { Some(true) })
            .collect(),
    }
}

/// Keep-mask of a predicate over a batch: true exactly where the
/// predicate's SQL truth is TRUE (the vectorized `WHERE` filter).
pub fn keep_mask(pred: &BExpr, batch: &Batch) -> SqlResult<Vec<bool>> {
    Ok(truth_column(&*pred.eval_batch(batch)?)
        .into_iter()
        .map(|t| t == Some(true))
        .collect())
}

/// Vectorized three-valued AND/OR with short-circuit semantics: the right
/// operand is evaluated only over the sub-batch of rows where the left
/// truth value does not already decide the result.
fn eval_logical_batch(
    op: BinOp,
    left: &BExpr,
    right: &BExpr,
    batch: &Batch,
) -> SqlResult<Arc<ColumnVec>> {
    // AND is decided by a FALSE left operand, OR by a TRUE one.
    let sc = Some(op == BinOp::Or);
    let lt = truth_column(&*left.eval_batch(batch)?);
    let need: Vec<bool> = lt.iter().map(|t| *t != sc).collect();
    let rt = if need.iter().any(|&b| b) {
        truth_column(&*right.eval_batch(&batch.filter(&need))?)
    } else {
        Vec::new()
    };
    let mut data = Vec::with_capacity(lt.len());
    let mut nulls = vec![false; lt.len()];
    let mut any_null = false;
    let mut k = 0;
    for (i, lt_i) in lt.iter().enumerate() {
        let combined = if !need[i] {
            sc
        } else {
            let r = rt[k];
            k += 1;
            if op == BinOp::And {
                match (lt_i, r) {
                    (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }
            } else {
                match (lt_i, r) {
                    (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }
            }
        };
        match combined {
            Some(b) => data.push(b),
            None => {
                data.push(false);
                nulls[i] = true;
                any_null = true;
            }
        }
    }
    Ok(Arc::new(ColumnVec::new(
        ColumnData::Bool(data),
        any_null.then_some(nulls),
    )))
}

/// Column-wise binary operator with typed fast paths for Int/Float
/// comparisons and arithmetic; any other operand shape falls back to
/// element-wise [`eval_binary`] over boxed values.
fn binary_columns(op: BinOp, l: &ColumnVec, r: &ColumnVec) -> SqlResult<Arc<ColumnVec>> {
    use BinOp::*;
    let n = l.len();
    match (op, l.data(), r.data()) {
        (Eq | Neq | Lt | Lte | Gt | Gte, ColumnData::Int(a), ColumnData::Int(b)) => {
            return Ok(Arc::new(cmp_fast(op, n, l, r, |i| a[i].cmp(&b[i]))));
        }
        (Eq | Neq | Lt | Lte | Gt | Gte, ColumnData::Float(a), ColumnData::Float(b)) => {
            return Ok(Arc::new(cmp_fast(op, n, l, r, |i| a[i].total_cmp(&b[i]))));
        }
        (Eq | Neq | Lt | Lte | Gt | Gte, ColumnData::Int(a), ColumnData::Float(b)) => {
            return Ok(Arc::new(cmp_fast(op, n, l, r, |i| {
                (a[i] as f64).total_cmp(&b[i])
            })));
        }
        (Eq | Neq | Lt | Lte | Gt | Gte, ColumnData::Float(a), ColumnData::Int(b)) => {
            return Ok(Arc::new(cmp_fast(op, n, l, r, |i| {
                a[i].total_cmp(&(b[i] as f64))
            })));
        }
        (Add | Sub | Mul | Div | Mod, ColumnData::Int(a), ColumnData::Int(b)) => {
            return int_arith_fast(op, n, l, r, a, b).map(Arc::new);
        }
        (
            Add | Sub | Mul | Div | Mod,
            ColumnData::Int(_) | ColumnData::Float(_),
            ColumnData::Int(_) | ColumnData::Float(_),
        ) => {
            // at least one side is Float (Int/Int returned above)
            return float_arith_fast(op, n, l, r).map(Arc::new);
        }
        _ => {}
    }
    let mut vals = Vec::with_capacity(n);
    for i in 0..n {
        vals.push(eval_binary(op, &l.value(i), &r.value(i))?);
    }
    Ok(Arc::new(ColumnVec::from_values(vals)))
}

fn cmp_fast(
    op: BinOp,
    n: usize,
    l: &ColumnVec,
    r: &ColumnVec,
    ord_at: impl Fn(usize) -> std::cmp::Ordering,
) -> ColumnVec {
    use std::cmp::Ordering::*;
    let mut data = Vec::with_capacity(n);
    let mut nulls = vec![false; n];
    let mut any_null = false;
    for (i, null_slot) in nulls.iter_mut().enumerate().take(n) {
        if l.is_null(i) || r.is_null(i) {
            data.push(false);
            *null_slot = true;
            any_null = true;
        } else {
            let ord = ord_at(i);
            data.push(match op {
                BinOp::Eq => ord == Equal,
                BinOp::Neq => ord != Equal,
                BinOp::Lt => ord == Less,
                BinOp::Lte => ord != Greater,
                BinOp::Gt => ord == Greater,
                _ => ord != Less,
            });
        }
    }
    ColumnVec::new(ColumnData::Bool(data), any_null.then_some(nulls))
}

fn int_arith_fast(
    op: BinOp,
    n: usize,
    l: &ColumnVec,
    r: &ColumnVec,
    a: &[i64],
    b: &[i64],
) -> SqlResult<ColumnVec> {
    let mut data = Vec::with_capacity(n);
    let mut nulls = vec![false; n];
    let mut any_null = false;
    for i in 0..n {
        if l.is_null(i) || r.is_null(i) {
            data.push(0);
            nulls[i] = true;
            any_null = true;
            continue;
        }
        data.push(match op {
            BinOp::Add => a[i].wrapping_add(b[i]),
            BinOp::Sub => a[i].wrapping_sub(b[i]),
            BinOp::Mul => a[i].wrapping_mul(b[i]),
            BinOp::Div => {
                if b[i] == 0 {
                    return Err(SqlError::Eval("division by zero".into()));
                }
                a[i].wrapping_div(b[i])
            }
            _ => {
                if b[i] == 0 {
                    return Err(SqlError::Eval("modulo by zero".into()));
                }
                a[i].wrapping_rem(b[i])
            }
        });
    }
    Ok(ColumnVec::new(
        ColumnData::Int(data),
        any_null.then_some(nulls),
    ))
}

fn float_arith_fast(op: BinOp, n: usize, l: &ColumnVec, r: &ColumnVec) -> SqlResult<ColumnVec> {
    let at = |c: &ColumnVec, i: usize| -> f64 {
        match c.data() {
            ColumnData::Int(v) => v[i] as f64,
            ColumnData::Float(v) => v[i],
            _ => unreachable!("float fast path requires numeric columns"),
        }
    };
    let mut data = Vec::with_capacity(n);
    let mut nulls = vec![false; n];
    let mut any_null = false;
    for (i, null_slot) in nulls.iter_mut().enumerate().take(n) {
        if l.is_null(i) || r.is_null(i) {
            data.push(0.0);
            *null_slot = true;
            any_null = true;
            continue;
        }
        let (a, b) = (at(l, i), at(r, i));
        data.push(match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    return Err(SqlError::Eval("division by zero".into()));
                }
                a / b
            }
            _ => {
                if b == 0.0 {
                    return Err(SqlError::Eval("modulo by zero".into()));
                }
                a % b
            }
        });
    }
    Ok(ColumnVec::new(
        ColumnData::Float(data),
        any_null.then_some(nulls),
    ))
}

fn neg_column(v: &ColumnVec) -> SqlResult<Arc<ColumnVec>> {
    let n = v.len();
    match v.data() {
        ColumnData::Int(a) => Ok(Arc::new(ColumnVec::new(
            ColumnData::Int(
                (0..n)
                    .map(|i| if v.is_null(i) { 0 } else { -a[i] })
                    .collect(),
            ),
            v.nulls().map(<[bool]>::to_vec),
        ))),
        ColumnData::Float(a) => Ok(Arc::new(ColumnVec::new(
            ColumnData::Float(a.iter().map(|f| -f).collect()),
            v.nulls().map(<[bool]>::to_vec),
        ))),
        _ => {
            let mut vals = Vec::with_capacity(n);
            for i in 0..n {
                match v.value(i) {
                    Value::Null => vals.push(Value::Null),
                    Value::Int(x) => vals.push(Value::Int(-x)),
                    Value::Float(f) => vals.push(Value::Float(-f)),
                    other => {
                        return Err(SqlError::Type(format!("cannot negate {}", other.render())))
                    }
                }
            }
            Ok(Arc::new(ColumnVec::from_values(vals)))
        }
    }
}

/// Vectorized CASE: each WHEN condition is evaluated only over the rows no
/// earlier branch decided, and each THEN result only over the rows its
/// condition matched — preserving the row path's lazy-branch semantics.
fn eval_case_batch(
    branches: &[(BExpr, BExpr)],
    else_expr: Option<&BExpr>,
    batch: &Batch,
) -> SqlResult<Arc<ColumnVec>> {
    let n = batch.num_rows();
    let mut out: Vec<Value> = vec![Value::Null; n];
    let mut pending: Vec<usize> = (0..n).collect();
    let mut cur = batch.clone();
    for (cond, result) in branches {
        if pending.is_empty() {
            break;
        }
        let hits: Vec<bool> = truth_column(&*cond.eval_batch(&cur)?)
            .into_iter()
            .map(|t| t == Some(true))
            .collect();
        if hits.iter().any(|&h| h) {
            let taken = cur.filter(&hits);
            let vals = result.eval_batch(&taken)?;
            let mut k = 0;
            for (j, &h) in hits.iter().enumerate() {
                if h {
                    out[pending[j]] = vals.value(k);
                    k += 1;
                }
            }
        }
        let keep: Vec<bool> = hits.iter().map(|&h| !h).collect();
        pending = pending
            .iter()
            .zip(&keep)
            .filter(|&(_, &kp)| kp)
            .map(|(&p, _)| p)
            .collect();
        cur = cur.filter(&keep);
    }
    if let Some(e) = else_expr {
        if !pending.is_empty() {
            let vals = e.eval_batch(&cur)?;
            for (k, &ri) in pending.iter().enumerate() {
                out[ri] = vals.value(k);
            }
        }
    }
    Ok(Arc::new(ColumnVec::from_values(out)))
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    use BinOp::*;
    match op {
        Eq | Neq | Lt | Lte | Gt | Gte => {
            let Some(ord) = l.sql_cmp(r) else {
                return Ok(Value::Null);
            };
            use std::cmp::Ordering::*;
            let b = match op {
                Eq => ord == Equal,
                Neq => ord != Equal,
                Lt => ord == Less,
                Lte => ord != Greater,
                Gt => ord == Greater,
                Gte => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            arith(op, l, r)
        }
        Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!("{}{}", l.render(), r.render())))
        }
        Like => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let (s, p) = (
                l.as_str().ok_or_else(|| {
                    SqlError::Type(format!("LIKE expects TEXT, got {}", l.render()))
                })?,
                r.as_str().ok_or_else(|| {
                    SqlError::Type(format!("LIKE pattern must be TEXT, got {}", r.render()))
                })?,
            );
            Ok(Value::Bool(like_match(s, p)))
        }
        And | Or => unreachable!("handled with short-circuit in eval"),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    // Date/Timestamp +- Int days
    if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
        match op {
            BinOp::Add => return Ok(Value::Date(d + n as i32)),
            BinOp::Sub => return Ok(Value::Date(d - n as i32)),
            _ => {}
        }
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    return Err(SqlError::Eval("division by zero".into()));
                }
                // integer division with / like most SQL engines
                Value::Int(a.wrapping_div(*b))
            }
            BinOp::Mod => {
                if *b == 0 {
                    return Err(SqlError::Eval("modulo by zero".into()));
                }
                Value::Int(a.wrapping_rem(*b))
            }
            _ => unreachable!(),
        }),
        _ => {
            let (a, b) = (
                l.as_f64()
                    .ok_or_else(|| SqlError::Type(format!("non-numeric operand {}", l.render())))?,
                r.as_f64()
                    .ok_or_else(|| SqlError::Type(format!("non-numeric operand {}", r.render())))?,
            );
            Ok(match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(SqlError::Eval("division by zero".into()));
                    }
                    Value::Float(a / b)
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Err(SqlError::Eval("modulo by zero".into()));
                    }
                    Value::Float(a % b)
                }
                _ => unreachable!(),
            })
        }
    }
}

/// SQL `LIKE` matching: `%` matches any sequence, `_` any single character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // try to consume 0..=len characters
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

/// Parse a typed literal (`DATE '...'`) into a [`Value`].
pub fn typed_literal(ty: DataType, text: &str) -> SqlResult<Value> {
    match ty {
        DataType::Date => parse_date(text)
            .map(Value::Date)
            .ok_or_else(|| SqlError::Eval(format!("bad DATE literal {text:?}"))),
        DataType::Timestamp => parse_timestamp(text)
            .map(Value::Timestamp)
            .ok_or_else(|| SqlError::Eval(format!("bad TIMESTAMP literal {text:?}"))),
        other => Err(SqlError::Type(format!("no typed literal for {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> BExpr {
        BExpr::Literal(v.into())
    }

    fn bin(op: BinOp, l: BExpr, r: BExpr) -> BExpr {
        BExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        assert_eq!(
            bin(BinOp::Add, lit(1i64), lit(2i64)).eval(&[]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(BinOp::Div, lit(7i64), lit(2i64)).eval(&[]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(BinOp::Div, lit(7.0), lit(2i64)).eval(&[]).unwrap(),
            Value::Float(3.5)
        );
        assert!(bin(BinOp::Div, lit(1i64), lit(0i64)).eval(&[]).is_err());
        assert_eq!(
            bin(BinOp::Add, lit(1i64), BExpr::Literal(Value::Null))
                .eval(&[])
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        let null = BExpr::Literal(Value::Null);
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL
        assert_eq!(
            bin(BinOp::And, null.clone(), lit(false)).eval(&[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            bin(BinOp::Or, null.clone(), lit(true)).eval(&[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::And, null.clone(), lit(true)).eval(&[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            BExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(null)
            }
            .eval(&[])
            .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn comparisons_with_null_yield_null() {
        assert_eq!(
            bin(BinOp::Eq, lit(1i64), BExpr::Literal(Value::Null))
                .eval(&[])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            bin(BinOp::Lt, lit(1i64), lit(2.5)).eval(&[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_list_null_semantics() {
        // 3 IN (1, 2, NULL) is NULL (unknown); 1 IN (1, NULL) is TRUE
        let e = BExpr::InList {
            expr: Box::new(lit(3i64)),
            list: vec![lit(1i64), lit(2i64), BExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
        let e = BExpr::InList {
            expr: Box::new(lit(1i64)),
            list: vec![lit(1i64), BExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_and_case() {
        let e = BExpr::Between {
            expr: Box::new(lit(5i64)),
            lo: Box::new(lit(1i64)),
            hi: Box::new(lit(5i64)),
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
        let c = BExpr::Case {
            branches: vec![(lit(false), lit("a")), (lit(true), lit("b"))],
            else_expr: Some(Box::new(lit("c"))),
        };
        assert_eq!(c.eval(&[]).unwrap(), Value::from("b"));
        let c = BExpr::Case {
            branches: vec![(lit(false), lit("a"))],
            else_expr: None,
        };
        assert_eq!(c.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("a%b", "a%b"));
        assert!(like_match("x", "%%x%%"));
    }

    #[test]
    fn column_refs_and_shift() {
        let row = vec![Value::Int(10), Value::from("a")];
        assert_eq!(BExpr::Column(1).eval(&row).unwrap(), Value::from("a"));
        assert!(BExpr::Column(5).eval(&row).is_err());
        let mut e = bin(BinOp::Add, BExpr::Column(0), lit(1i64));
        e.shift_columns(3);
        assert_eq!(e, bin(BinOp::Add, BExpr::Column(3), lit(1i64)));
    }

    #[test]
    fn constant_folding() {
        let e = bin(BinOp::Mul, lit(3i64), bin(BinOp::Add, lit(1i64), lit(1i64)));
        assert_eq!(e.fold(), lit(6i64));
        // non-constant parts preserved
        let e = bin(
            BinOp::Add,
            BExpr::Column(0),
            bin(BinOp::Add, lit(1i64), lit(1i64)),
        );
        assert_eq!(e.fold(), bin(BinOp::Add, BExpr::Column(0), lit(2i64)));
        // folding a division by zero is deferred to runtime
        let e = bin(BinOp::Div, lit(1i64), lit(0i64));
        assert!(e.fold().eval(&[]).is_err());
    }

    #[test]
    fn date_arithmetic() {
        let d = odbis_storage::parse_date("2010-03-22").unwrap();
        let e = bin(BinOp::Add, BExpr::Literal(Value::Date(d)), lit(4i64));
        assert_eq!(
            e.eval(&[]).unwrap(),
            Value::Date(odbis_storage::parse_date("2010-03-26").unwrap())
        );
    }

    #[test]
    fn typed_literals() {
        assert!(matches!(
            typed_literal(DataType::Date, "2010-03-22").unwrap(),
            Value::Date(_)
        ));
        assert!(typed_literal(DataType::Date, "nope").is_err());
        assert!(typed_literal(DataType::Int, "1").is_err());
    }

    fn batch_of(rows: Vec<Vec<Value>>) -> Batch {
        let arity = rows.first().map_or(0, Vec::len);
        Batch::from_rows(arity, rows).unwrap()
    }

    fn assert_batch_matches_rows(e: &BExpr, rows: &[Vec<Value>]) {
        let batch = batch_of(rows.to_vec());
        let col = e.eval_batch(&batch).unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(col.value(i), e.eval(row).unwrap(), "row {i} of {e:?}");
        }
    }

    #[test]
    fn batch_eval_matches_row_eval() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(2.0), Value::from("abc")],
            vec![Value::Int(-3), Value::Null, Value::from("xbc")],
            vec![Value::Null, Value::Float(0.0), Value::Null],
            vec![Value::Int(0), Value::Float(-1.5), Value::from("a")],
        ];
        let col = BExpr::Column;
        let exprs = vec![
            bin(BinOp::Add, col(0), lit(10i64)),
            bin(BinOp::Mul, col(0), col(1)),
            bin(BinOp::Lt, col(0), col(1)),
            bin(BinOp::Gte, col(1), lit(0i64)),
            bin(BinOp::Eq, col(2), lit("abc")),
            bin(BinOp::Concat, col(2), lit("!")),
            bin(BinOp::Like, col(2), lit("%bc")),
            bin(
                BinOp::And,
                bin(BinOp::Gt, col(0), lit(0i64)),
                bin(BinOp::Lt, col(1), lit(3i64)),
            ),
            bin(
                BinOp::Or,
                BExpr::IsNull {
                    expr: Box::new(col(1)),
                    negated: false,
                },
                bin(BinOp::Neq, col(0), lit(0i64)),
            ),
            BExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(col(0)),
            },
            BExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(bin(BinOp::Gt, col(0), lit(0i64))),
            },
            BExpr::InList {
                expr: Box::new(col(0)),
                list: vec![lit(1i64), lit(0i64), BExpr::Literal(Value::Null)],
                negated: false,
            },
            BExpr::Between {
                expr: Box::new(col(0)),
                lo: Box::new(lit(0i64)),
                hi: Box::new(col(1)),
                negated: false,
            },
            BExpr::Case {
                branches: vec![
                    (bin(BinOp::Gt, col(0), lit(0i64)), lit("pos")),
                    (bin(BinOp::Lt, col(0), lit(0i64)), lit("neg")),
                ],
                else_expr: Some(Box::new(lit("other"))),
            },
            BExpr::Function {
                func: ScalarFunc::resolve("UPPER").unwrap(),
                args: vec![col(2)],
            },
        ];
        for e in &exprs {
            assert_batch_matches_rows(e, &rows);
        }
    }

    #[test]
    fn batch_and_short_circuits_division() {
        // x <> 0 AND 10 / x > 2 must not divide by the zero row
        let guard = bin(
            BinOp::And,
            bin(BinOp::Neq, BExpr::Column(0), lit(0i64)),
            bin(
                BinOp::Gt,
                bin(BinOp::Div, lit(10i64), BExpr::Column(0)),
                lit(2i64),
            ),
        );
        let rows = vec![
            vec![Value::Int(0)],
            vec![Value::Int(2)],
            vec![Value::Int(100)],
        ];
        assert_batch_matches_rows(&guard, &rows);
        // CASE guards the same way
        let case = BExpr::Case {
            branches: vec![(
                bin(BinOp::Neq, BExpr::Column(0), lit(0i64)),
                bin(BinOp::Div, lit(10i64), BExpr::Column(0)),
            )],
            else_expr: Some(Box::new(lit(-1i64))),
        };
        assert_batch_matches_rows(&case, &rows);
    }

    #[test]
    fn batch_eval_surfaces_errors() {
        let div = bin(BinOp::Div, lit(1i64), BExpr::Column(0));
        let batch = batch_of(vec![vec![Value::Int(1)], vec![Value::Int(0)]]);
        assert!(div.eval_batch(&batch).is_err());
        let bad_neg = BExpr::Unary {
            op: UnOp::Neg,
            expr: Box::new(BExpr::Column(0)),
        };
        let batch = batch_of(vec![vec![Value::from("nope")]]);
        assert!(bad_neg.eval_batch(&batch).is_err());
        // out-of-range ordinal mirrors the row path
        let batch = batch_of(vec![vec![Value::Int(1)]]);
        assert!(BExpr::Column(7).eval_batch(&batch).is_err());
    }

    #[test]
    fn truth_column_matches_truth() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(5),
            Value::Float(0.0),
            Value::Float(1.0),
            Value::from("x"),
        ];
        let expected: Vec<Option<bool>> = vals.iter().map(truth).collect();
        let col = ColumnVec::from_values(vals);
        assert_eq!(truth_column(&col), expected);
    }
}
