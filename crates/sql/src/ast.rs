//! Abstract syntax tree for the supported SQL dialect.

use odbis_storage::{DataType, Value};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum Statement {
    /// `CREATE TABLE name (col defs..., [PRIMARY KEY (...)])`
    CreateTable {
        name: String,
        if_not_exists: bool,
        columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
    },
    /// `DROP TABLE name`
    DropTable { name: String, if_exists: bool },
    /// `CREATE [UNIQUE] INDEX name ON table (cols)`
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
    },
    /// `DROP INDEX name ON table`
    DropIndex { name: String, table: String },
    /// `INSERT INTO table [(cols)] VALUES (...), (...)`
    Insert {
        table: String,
        columns: Vec<String>,
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE table SET col = expr, ... [WHERE cond]`
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE cond]`
    Delete { table: String, filter: Option<Expr> },
    /// A `SELECT` query.
    Select(SelectStmt),
}

/// One column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// Inline `PRIMARY KEY`.
    pub primary_key: bool,
    /// `DEFAULT <literal>`.
    pub default: Option<Value>,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projected items.
    pub items: Vec<SelectItem>,
    /// `FROM` clause (optional: `SELECT 1+1` is allowed).
    pub from: Option<TableRef>,
    /// Chained `JOIN`s applied to `from`.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

/// One projected item.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A base table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by in the query.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
}

/// One `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Inner or left-outer.
    pub kind: JoinKind,
    /// Joined table.
    pub table: TableRef,
    /// Join condition.
    pub on: Expr,
}

/// Sort key in `ORDER BY`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression (or output-column ordinal via `Expr::Literal(Int)`).
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // self-documenting
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    And,
    Or,
    Concat,
    Like,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // self-documenting
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // self-documenting
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified: `c` or `t.c`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnOp, expr: Box<Expr> },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
        negated: bool,
    },
    /// Scalar function call: `UPPER(x)`, `COALESCE(a, b)`, ...
    Function { name: String, args: Vec<Expr> },
    /// Aggregate call: `SUM(x)`, `COUNT(*)`, `COUNT(DISTINCT x)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    /// `CASE WHEN c1 THEN r1 [WHEN ...] [ELSE e] END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Typed literal: `DATE '2010-03-22'`, `TIMESTAMP '...'`.
    TypedLiteral { ty: DataType, text: String },
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // self-documenting
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

impl Expr {
    /// Convenience: a literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience: an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// True if this expression (transitively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } | Expr::TypedLiteral { .. } => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_recurses() {
        let e = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::lit(1i64)),
            right: Box::new(Expr::Aggregate {
                func: AggFunc::Sum,
                arg: Some(Box::new(Expr::col("x"))),
                distinct: false,
            }),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("median"), None);
        assert_eq!(AggFunc::Avg.name(), "AVG");
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            table: "sales".into(),
            alias: Some("s".into()),
        };
        assert_eq!(t.binding(), "s");
        let t2 = TableRef {
            table: "sales".into(),
            alias: None,
        };
        assert_eq!(t2.binding(), "sales");
    }
}
