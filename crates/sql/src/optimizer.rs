//! Rule-based plan optimizer.
//!
//! The optimizer is an ordered pipeline of rewrite [`Rule`]s driven to a
//! fixpoint under a pass budget, replacing the former monolithic
//! `optimize` function. Each rule is a pure `Plan -> Plan` rewrite:
//!
//! 1. **fold** — constant-fold every expression in the plan.
//! 2. **pushdown** — sink filters toward the scans, splitting conjuncts
//!    at joins by the side they reference (through-join pushdown) and
//!    merging what arrives at a base table into [`PlanNode::TableScan`]'s
//!    `filter`.
//! 3. **reorder** — greedily reorder chains of inner equi-joins smallest
//!    estimated input first, using live `row_count` from the catalog; a
//!    compensating projection restores the original column order.
//! 4. **index** — convert a filtered scan into an
//!    [`PlanNode::IndexScan`] when a sargable conjunct matches an index.
//! 5. **prune** — thread required-column sets from the root down to the
//!    scans so `TableScan` materializes only the columns the query reads.
//!
//! Every rule can be disabled independently through a [`RuleSet`]
//! (config `sql.optimizer_rules` / env `ODBIS_SQL_OPTIMIZER_RULES`),
//! which is how the ablation benchmarks isolate each rule's
//! contribution. Each rule application runs under a `sql` telemetry
//! child span named `optimize.<rule>`.

use std::collections::BTreeSet;

use odbis_storage::{Database, Value};

use crate::ast::{BinOp, JoinKind};
use crate::expr::BExpr;
use crate::plan::{Plan, PlanNode, PlanSchema};

/// Catalog context the rules rewrite against.
pub struct OptContext<'a> {
    /// Catalog (live row counts, index metadata).
    pub db: &'a Database,
    /// Whether index selection is permitted (engine-level ablation
    /// switch; the `index` rule is a no-op when false).
    pub use_indexes: bool,
}

/// One rewrite pass over a plan. Rules must be semantics-preserving and
/// idempotent enough to reach a fixpoint within the pass budget.
pub trait Rule {
    /// Stable name used by [`RuleSet`] specs and telemetry spans.
    fn name(&self) -> &'static str;
    /// Rewrite the plan (identity when the rule does not apply).
    fn apply(&self, plan: Plan, ctx: &OptContext) -> Plan;
}

/// Names of all registered rules, in pipeline order.
pub const RULE_NAMES: [&str; 5] = ["fold", "pushdown", "reorder", "index", "prune"];

/// Which optimizer rules are enabled. Parsed from a comma-separated
/// spec: `all` (default), `none`, a list of rule names to enable
/// (`fold,pushdown`), or `-`-prefixed names subtracted from the full set
/// (`-reorder,-prune`). Unknown names are ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    enabled: BTreeSet<&'static str>,
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::all()
    }
}

impl RuleSet {
    /// Every rule enabled.
    pub fn all() -> Self {
        RuleSet {
            enabled: RULE_NAMES.iter().copied().collect(),
        }
    }

    /// No rules enabled (plans execute exactly as planned).
    pub fn none() -> Self {
        RuleSet {
            enabled: BTreeSet::new(),
        }
    }

    /// Parse a spec string (see type docs for the grammar).
    pub fn from_spec(spec: &str) -> Self {
        let tokens: Vec<&str> = spec
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        if tokens.is_empty() {
            return RuleSet::all();
        }
        // Additive specs start from the empty set; subtractive specs
        // (every token is `-name`, possibly after `all`) start full.
        let additive = tokens
            .iter()
            .any(|t| !t.starts_with('-') && !t.eq_ignore_ascii_case("all"));
        let mut set = if additive {
            RuleSet::none()
        } else {
            RuleSet::all()
        };
        for tok in tokens {
            if tok.eq_ignore_ascii_case("all") {
                set = RuleSet::all();
            } else if tok.eq_ignore_ascii_case("none") || tok.eq_ignore_ascii_case("off") {
                set = RuleSet::none();
            } else if let Some(name) = tok.strip_prefix('-') {
                if let Some(canon) = canonical(name) {
                    set.enabled.remove(canon);
                }
            } else if let Some(canon) = canonical(tok) {
                set.enabled.insert(canon);
            }
        }
        set
    }

    /// Whether a rule is enabled.
    pub fn is_enabled(&self, name: &str) -> bool {
        self.enabled.contains(name)
    }
}

fn canonical(name: &str) -> Option<&'static str> {
    RULE_NAMES
        .iter()
        .copied()
        .find(|r| r.eq_ignore_ascii_case(name))
}

/// Upper bound on full pipeline passes. Rules converge in two passes in
/// practice; the budget guards against a rewrite cycle looping forever.
const MAX_PASSES: usize = 4;

/// Run the rule pipeline to fixpoint (bounded by the pass budget).
pub fn optimize(plan: Plan, db: &Database, use_indexes: bool, rules: &RuleSet) -> Plan {
    let ctx = OptContext { db, use_indexes };
    let pipeline: [&dyn Rule; 5] = [
        &ConstantFolding,
        &FilterPushdown,
        &JoinReorder,
        &IndexSelection,
        &ProjectionPruning,
    ];
    let mut plan = plan;
    for _pass in 0..MAX_PASSES {
        let before = plan.clone();
        for rule in pipeline {
            if !rules.is_enabled(rule.name()) {
                continue;
            }
            // Own service stripe: keeps the engine's `sql` execute span the
            // first `sql`-service record a trace reader sees.
            let _span =
                odbis_telemetry::child_span("sql.optimizer", format!("optimize.{}", rule.name()));
            plan = rule.apply(plan, &ctx);
        }
        if plan == before {
            break;
        }
    }
    plan
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Rebuild a plan with `f` applied to each direct child (leaves pass
/// through unchanged). Schemas are preserved; `f` must not change child
/// schemas.
fn map_children(mut plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    plan.node = match plan.node {
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input: Box::new(f(*input)),
            exprs,
        },
        PlanNode::Join {
            kind,
            left,
            right,
            on,
        } => PlanNode::Join {
            kind,
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            on,
        },
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
        } => PlanNode::Aggregate {
            input: Box::new(f(*input)),
            group_exprs,
            aggs,
        },
        PlanNode::Sort { input, keys } => PlanNode::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        PlanNode::Distinct { input } => PlanNode::Distinct {
            input: Box::new(f(*input)),
        },
        PlanNode::Limit {
            input,
            limit,
            offset,
        } => PlanNode::Limit {
            input: Box::new(f(*input)),
            limit,
            offset,
        },
        leaf => leaf,
    };
    plan
}

/// Split a predicate into its top-level AND conjuncts.
pub(crate) fn conjuncts(e: &BExpr, out: &mut Vec<BExpr>) {
    if let BExpr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        conjuncts(left, out);
        conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

fn and_all(mut cs: Vec<BExpr>) -> Option<BExpr> {
    let first = if cs.is_empty() {
        return None;
    } else {
        cs.remove(0)
    };
    Some(cs.into_iter().fold(first, |acc, c| BExpr::Binary {
        op: BinOp::And,
        left: Box::new(acc),
        right: Box::new(c),
    }))
}

fn filter_over(input: Plan, predicate: Option<BExpr>) -> Plan {
    match predicate {
        None => input,
        Some(predicate) => {
            let schema = input.schema.clone();
            Plan {
                node: PlanNode::Filter {
                    input: Box::new(input),
                    predicate,
                },
                schema,
            }
        }
    }
}

/// Smallest and largest column ordinal referenced by an expression
/// (`None` for constant expressions).
fn column_span(e: &BExpr) -> Option<(usize, usize)> {
    let (mut lo, mut hi, mut any) = (usize::MAX, 0usize, false);
    e.for_each_column(&mut |i| {
        lo = lo.min(i);
        hi = hi.max(i);
        any = true;
    });
    any.then_some((lo, hi))
}

fn columns_of(e: &BExpr) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    e.for_each_column(&mut |i| {
        out.insert(i);
    });
    out
}

// ---------------------------------------------------------------------------
// Rule: fold — constant folding
// ---------------------------------------------------------------------------

/// Fold constant sub-expressions into literals everywhere in the plan.
struct ConstantFolding;

impl Rule for ConstantFolding {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn apply(&self, plan: Plan, _ctx: &OptContext) -> Plan {
        fold_plan(plan)
    }
}

fn fold_plan(mut plan: Plan) -> Plan {
    plan = map_children(plan, &mut fold_plan);
    plan.node = match plan.node {
        PlanNode::TableScan {
            table,
            filter,
            projection,
        } => PlanNode::TableScan {
            table,
            filter: filter.map(BExpr::fold),
            projection,
        },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input,
            predicate: predicate.fold(),
        },
        PlanNode::Project { input, exprs } => PlanNode::Project {
            input,
            exprs: exprs.into_iter().map(BExpr::fold).collect(),
        },
        PlanNode::Join {
            kind,
            left,
            right,
            on,
        } => PlanNode::Join {
            kind,
            left,
            right,
            on: on.fold(),
        },
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
        } => PlanNode::Aggregate {
            input,
            group_exprs: group_exprs.into_iter().map(BExpr::fold).collect(),
            aggs,
        },
        other => other,
    };
    plan
}

// ---------------------------------------------------------------------------
// Rule: pushdown — filter pushdown (through joins, into scans)
// ---------------------------------------------------------------------------

/// Sink `Filter` nodes toward the leaves. At a join, the predicate is
/// split into conjuncts: those touching only the left side sink left,
/// those touching only the right side sink right (inner joins only —
/// pushing below the NULL-extending side of a LEFT join would change
/// which rows NULL-extend), and the rest stay above the join. Whatever
/// reaches a base table merges into the scan's own filter.
struct FilterPushdown;

impl Rule for FilterPushdown {
    fn name(&self) -> &'static str {
        "pushdown"
    }

    fn apply(&self, plan: Plan, _ctx: &OptContext) -> Plan {
        push_filters(plan)
    }
}

fn push_filters(mut plan: Plan) -> Plan {
    plan.node = match plan.node {
        PlanNode::Filter { input, predicate } => {
            let input = push_filters(*input);
            match input.node {
                PlanNode::TableScan {
                    table,
                    filter,
                    projection,
                } => {
                    let merged = match filter {
                        Some(f) => BExpr::Binary {
                            op: BinOp::And,
                            left: Box::new(f),
                            right: Box::new(predicate),
                        },
                        None => predicate,
                    };
                    PlanNode::TableScan {
                        table,
                        filter: Some(merged),
                        projection,
                    }
                }
                PlanNode::Join {
                    kind,
                    left,
                    right,
                    on,
                } => {
                    let left_arity = left.schema.len();
                    let mut cs = Vec::new();
                    conjuncts(&predicate, &mut cs);
                    let mut left_preds = Vec::new();
                    let mut right_preds = Vec::new();
                    let mut keep = Vec::new();
                    for c in cs {
                        match column_span(&c) {
                            Some((_, hi)) if hi < left_arity => left_preds.push(c),
                            Some((lo, _)) if lo >= left_arity && kind == JoinKind::Inner => {
                                let mut c = c;
                                c.map_columns(&|i| i - left_arity);
                                right_preds.push(c);
                            }
                            _ => keep.push(c),
                        }
                    }
                    let new_left = push_filters(filter_over(*left, and_all(left_preds)));
                    let new_right = push_filters(filter_over(*right, and_all(right_preds)));
                    let mut schema = new_left.schema.clone();
                    schema.extend(new_right.schema.clone());
                    let join = Plan {
                        node: PlanNode::Join {
                            kind,
                            left: Box::new(new_left),
                            right: Box::new(new_right),
                            on,
                        },
                        schema,
                    };
                    filter_over(join, and_all(keep)).node
                }
                other => PlanNode::Filter {
                    input: Box::new(Plan {
                        node: other,
                        schema: input.schema,
                    }),
                    predicate,
                },
            }
        }
        other => {
            return map_children(
                Plan {
                    node: other,
                    schema: plan.schema,
                },
                &mut push_filters,
            )
        }
    };
    plan
}

// ---------------------------------------------------------------------------
// Rule: reorder — greedy join reordering
// ---------------------------------------------------------------------------

/// Reorder chains of three or more inner joins greedily: start from the
/// smallest estimated input, then repeatedly join the smallest remaining
/// input connected to the chosen set through some join predicate. Row
/// estimates come from the catalog's live `row_count`, discounted for
/// filtered scans. A compensating `Project` restores the original column
/// order, so the rewrite is invisible to parent nodes.
struct JoinReorder;

impl Rule for JoinReorder {
    fn name(&self) -> &'static str {
        "reorder"
    }

    fn apply(&self, plan: Plan, ctx: &OptContext) -> Plan {
        if matches!(
            &plan.node,
            PlanNode::Join {
                kind: JoinKind::Inner,
                ..
            }
        ) && chain_len(&plan) >= 3
        {
            reorder_chain(plan, ctx)
        } else {
            map_children(plan, &mut |p| self.apply(p, ctx))
        }
    }
}

fn chain_len(plan: &Plan) -> usize {
    match &plan.node {
        PlanNode::Join {
            kind: JoinKind::Inner,
            left,
            right,
            ..
        } => chain_len(left) + chain_len(right),
        _ => 1,
    }
}

/// Flatten an inner-join chain into its leaf relations plus every join
/// conjunct, with conjunct ordinals rebased to the concatenation of all
/// leaves in original order. Returns the subtree's arity.
fn flatten_chain(
    plan: Plan,
    offset: usize,
    leaves: &mut Vec<Plan>,
    preds: &mut Vec<BExpr>,
    ctx: &OptContext,
) -> usize {
    match plan.node {
        PlanNode::Join {
            kind: JoinKind::Inner,
            left,
            right,
            on,
        } => {
            let la = flatten_chain(*left, offset, leaves, preds, ctx);
            let ra = flatten_chain(*right, offset + la, leaves, preds, ctx);
            let mut on = on;
            on.shift_columns(offset);
            conjuncts(&on, preds);
            la + ra
        }
        node => {
            // a leaf: reorder any join chains nested deeper (e.g. under
            // a LEFT join or an aggregate)
            let leaf = JoinReorder.apply(
                Plan {
                    node,
                    schema: plan.schema,
                },
                ctx,
            );
            let arity = leaf.schema.len();
            leaves.push(leaf);
            arity
        }
    }
}

/// Estimated output rows of a subplan, from live catalog row counts.
/// Filters discount their input by 3x — a deliberately crude selectivity
/// guess; the estimate only has to rank join inputs, not predict
/// cardinality.
fn estimate_rows(plan: &Plan, db: &Database) -> usize {
    const UNKNOWN: usize = usize::MAX / 8;
    match &plan.node {
        PlanNode::TableScan { table, filter, .. } => {
            let n = db.row_count(table).unwrap_or(UNKNOWN);
            if filter.is_some() {
                n / 3 + 1
            } else {
                n
            }
        }
        PlanNode::IndexScan { table, .. } => db.row_count(table).unwrap_or(UNKNOWN) / 3 + 1,
        PlanNode::Filter { input, .. } => estimate_rows(input, db) / 3 + 1,
        PlanNode::Project { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Distinct { input } => estimate_rows(input, db),
        PlanNode::Limit { input, limit, .. } => {
            let n = estimate_rows(input, db);
            limit.map_or(n, |l| n.min(l))
        }
        PlanNode::Aggregate { input, .. } => estimate_rows(input, db) / 2 + 1,
        PlanNode::Join { left, right, .. } => estimate_rows(left, db).max(estimate_rows(right, db)),
        PlanNode::Values { rows } => rows.len(),
    }
}

fn reorder_chain(plan: Plan, ctx: &OptContext) -> Plan {
    let original_schema = plan.schema.clone();
    let mut leaves = Vec::new();
    let mut preds = Vec::new();
    let total_arity = flatten_chain(plan, 0, &mut leaves, &mut preds, ctx);
    let n = leaves.len();

    // original column offset of each leaf
    let mut offsets = Vec::with_capacity(n);
    let mut acc = 0usize;
    for leaf in &leaves {
        offsets.push(acc);
        acc += leaf.schema.len();
    }
    let leaf_of = |col: usize| -> usize {
        match offsets.binary_search(&col) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    let estimates: Vec<usize> = leaves.iter().map(|l| estimate_rows(l, ctx.db)).collect();
    // which leaves each conjunct touches
    let pred_leaves: Vec<BTreeSet<usize>> = preds
        .iter()
        .map(|p| columns_of(p).into_iter().map(leaf_of).collect())
        .collect();

    // greedy order: smallest first, then smallest connected
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut chosen = vec![false; n];
    let first = (0..n).min_by_key(|&i| (estimates[i], i)).expect("leaves");
    order.push(first);
    chosen[first] = true;
    while order.len() < n {
        let connected = |cand: usize| {
            pred_leaves.iter().any(|ls| {
                ls.contains(&cand) && ls.iter().all(|&l| l == cand || chosen[l]) && ls.len() >= 2
            })
        };
        let next = (0..n)
            .filter(|&i| !chosen[i] && connected(i))
            .min_by_key(|&i| (estimates[i], i))
            .or_else(|| {
                // no equi-connected leaf: fall back to the smallest
                // remaining (degenerates to a cross product, as the
                // original plan would)
                (0..n)
                    .filter(|&i| !chosen[i])
                    .min_by_key(|&i| (estimates[i], i))
            })
            .expect("unchosen leaf");
        order.push(next);
        chosen[next] = true;
    }

    // map original ordinals into the reordered concatenation
    let mut new_offsets = vec![0usize; n];
    let mut acc = 0usize;
    for &leaf in &order {
        new_offsets[leaf] = acc;
        acc += leaves[leaf].schema.len();
    }
    let mut new_pos = vec![0usize; total_arity];
    for (leaf, &off) in offsets.iter().enumerate() {
        for j in 0..leaves[leaf].schema.len() {
            new_pos[off + j] = new_offsets[leaf] + j;
        }
    }
    let rank_of = {
        let mut rank = vec![0usize; n];
        for (r, &leaf) in order.iter().enumerate() {
            rank[leaf] = r;
        }
        rank
    };

    // each conjunct attaches to the first join step where every leaf it
    // references is available
    let mut step_preds: Vec<Vec<BExpr>> = vec![Vec::new(); n];
    for (mut p, ls) in preds.into_iter().zip(pred_leaves) {
        p.map_columns(&|i| new_pos[i]);
        let step = ls.iter().map(|&l| rank_of[l]).max().unwrap_or(1).max(1);
        step_preds[step].push(p);
    }

    // rebuild a left-deep tree in the greedy order
    let mut leaves: Vec<Option<Plan>> = leaves.into_iter().map(Some).collect();
    let mut joined = leaves[order[0]].take().expect("leaf");
    for (step, &leaf) in order.iter().enumerate().skip(1) {
        let right = leaves[leaf].take().expect("leaf");
        let mut schema = joined.schema.clone();
        schema.extend(right.schema.clone());
        let on = and_all(std::mem::take(&mut step_preds[step]))
            .unwrap_or(BExpr::Literal(Value::Bool(true)));
        joined = Plan {
            node: PlanNode::Join {
                kind: JoinKind::Inner,
                left: Box::new(joined),
                right: Box::new(right),
                on,
            },
            schema,
        };
    }

    // restore the original column order for parent nodes
    if new_pos.iter().enumerate().all(|(i, &p)| i == p) {
        joined
    } else {
        Plan {
            node: PlanNode::Project {
                input: Box::new(joined),
                exprs: new_pos.iter().map(|&p| BExpr::Column(p)).collect(),
            },
            schema: original_schema,
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: index — index-scan selection
// ---------------------------------------------------------------------------

/// Convert a filtered table scan into an index scan when the best
/// sargable conjunct (equality preferred over range) matches an index's
/// leading column. The full filter is kept as the `residual` and
/// re-checked exactly. Pruned scans (`projection` set) are left alone:
/// index probes fetch physical rows, so their ordinals live in the
/// physical column space.
struct IndexSelection;

impl Rule for IndexSelection {
    fn name(&self) -> &'static str {
        "index"
    }

    fn apply(&self, mut plan: Plan, ctx: &OptContext) -> Plan {
        if !ctx.use_indexes {
            return plan;
        }
        plan.node = match plan.node {
            PlanNode::TableScan {
                table,
                filter: Some(filter),
                projection: None,
            } => {
                let mut cs = Vec::new();
                conjuncts(&filter, &mut cs);
                // Find the best sargable conjunct: prefer equality, then range.
                let chosen = ctx
                    .db
                    .read_table(&table, |t| {
                        // (index name, lo bound, hi bound, rank)
                        type IndexChoice = (String, Option<Vec<Value>>, Option<Vec<Value>>, u8);
                        let mut best: Option<IndexChoice> = None;
                        for c in &cs {
                            // BETWEEN with literal bounds is a two-sided range
                            if let BExpr::Between {
                                expr,
                                lo,
                                hi,
                                negated: false,
                            } = c
                            {
                                if let (BExpr::Column(col), BExpr::Literal(l), BExpr::Literal(h)) =
                                    (&**expr, &**lo, &**hi)
                                {
                                    if let Some(idx) = t.index_on(*col) {
                                        if best.as_ref().is_none_or(|b| 1 > b.3) {
                                            best = Some((
                                                idx.name.clone(),
                                                Some(vec![l.clone()]),
                                                Some(vec![h.clone()]),
                                                1,
                                            ));
                                        }
                                    }
                                }
                                continue;
                            }
                            let Some((col, op, lit)) = sargable(c) else {
                                continue;
                            };
                            let Some(idx) = t.index_on(col) else {
                                continue;
                            };
                            // only single-column use of the index key
                            let (lo, hi, rank) = match op {
                                BinOp::Eq => {
                                    (Some(vec![lit.clone()]), Some(vec![lit.clone()]), 2u8)
                                }
                                BinOp::Gt | BinOp::Gte => (Some(vec![lit.clone()]), None, 1),
                                BinOp::Lt | BinOp::Lte => (None, Some(vec![lit.clone()]), 1),
                                _ => continue,
                            };
                            if best.as_ref().is_none_or(|b| rank > b.3) {
                                best = Some((idx.name.clone(), lo, hi, rank));
                            }
                        }
                        best
                    })
                    .ok()
                    .flatten();
                match chosen {
                    Some((index, lo, hi, _)) => PlanNode::IndexScan {
                        table,
                        index,
                        lo,
                        hi,
                        residual: Some(filter),
                    },
                    None => PlanNode::TableScan {
                        table,
                        filter: Some(filter),
                        projection: None,
                    },
                }
            }
            other => {
                return map_children(
                    Plan {
                        node: other,
                        schema: plan.schema,
                    },
                    &mut |p| self.apply(p, ctx),
                )
            }
        };
        plan
    }
}

/// Recognize `Column(i) op Literal` (or the mirrored form) with a
/// comparison operator — the sargable shapes the index selector handles.
fn sargable(e: &BExpr) -> Option<(usize, BinOp, Value)> {
    let BExpr::Binary { op, left, right } = e else {
        return None;
    };
    let mirror = |op: BinOp| match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Lte => BinOp::Gte,
        BinOp::Gt => BinOp::Lt,
        BinOp::Gte => BinOp::Lte,
        other => other,
    };
    match (&**left, &**right) {
        (BExpr::Column(i), BExpr::Literal(v)) if !v.is_null() => Some((*i, *op, v.clone())),
        (BExpr::Literal(v), BExpr::Column(i)) if !v.is_null() => Some((*i, mirror(*op), v.clone())),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Rule: prune — projection pruning
// ---------------------------------------------------------------------------

/// Thread required-column sets from the root down to the scans. Each
/// node reports which of its output columns survive (`kept`, a sorted
/// subset of the old ordinals); parents rewrite their expressions into
/// the pruned ordinal space. At a `TableScan` the surviving set becomes
/// the scan's `projection`, so the storage layer materializes only those
/// columns. `IndexScan` (physical-row probes) and `Distinct`
/// (whole-row semantics) block pruning below them.
struct ProjectionPruning;

impl Rule for ProjectionPruning {
    fn name(&self) -> &'static str {
        "prune"
    }

    fn apply(&self, plan: Plan, _ctx: &OptContext) -> Plan {
        let all: BTreeSet<usize> = (0..plan.schema.len()).collect();
        prune(plan, &all).0
    }
}

fn take_schema(schema: &PlanSchema, kept: &[usize]) -> PlanSchema {
    kept.iter().map(|&i| schema[i].clone()).collect()
}

/// Position of old ordinal `i` within the surviving set.
fn pruned_pos(kept: &[usize], i: usize) -> usize {
    kept.binary_search(&i)
        .expect("pruned column is still referenced")
}

/// Rewrite `plan` to produce only (a superset of) the `required` output
/// columns. Returns the new plan and `kept`: the old output ordinals
/// that survive, in order. `kept` always contains `required`.
fn prune(mut plan: Plan, required: &BTreeSet<usize>) -> (Plan, Vec<usize>) {
    let identity: Vec<usize> = (0..plan.schema.len()).collect();
    match plan.node {
        PlanNode::TableScan {
            table,
            filter,
            projection,
        } => {
            let mut need = required.clone();
            if let Some(f) = &filter {
                need.extend(columns_of(f));
            }
            let kept: Vec<usize> = need.into_iter().collect();
            if kept == identity {
                plan.node = PlanNode::TableScan {
                    table,
                    filter,
                    projection,
                };
                return (plan, identity);
            }
            let filter = filter.map(|mut f| {
                f.map_columns(&|i| pruned_pos(&kept, i));
                f
            });
            let new_projection = match projection {
                None => kept.clone(),
                Some(p) => kept.iter().map(|&i| p[i]).collect(),
            };
            let schema = take_schema(&plan.schema, &kept);
            (
                Plan {
                    node: PlanNode::TableScan {
                        table,
                        filter,
                        projection: Some(new_projection),
                    },
                    schema,
                },
                kept,
            )
        }
        PlanNode::Filter { input, predicate } => {
            let mut need = required.clone();
            need.extend(columns_of(&predicate));
            let (input, kept) = prune(*input, &need);
            let mut predicate = predicate;
            predicate.map_columns(&|i| pruned_pos(&kept, i));
            let schema = input.schema.clone();
            (
                Plan {
                    node: PlanNode::Filter {
                        input: Box::new(input),
                        predicate,
                    },
                    schema,
                },
                kept,
            )
        }
        PlanNode::Project { input, exprs } => {
            let kept: Vec<usize> = required.iter().copied().collect();
            let mut new_exprs: Vec<BExpr> = kept.iter().map(|&i| exprs[i].clone()).collect();
            let mut need = BTreeSet::new();
            for e in &new_exprs {
                need.extend(columns_of(e));
            }
            let (input, child_kept) = prune(*input, &need);
            for e in &mut new_exprs {
                e.map_columns(&|i| pruned_pos(&child_kept, i));
            }
            let schema = take_schema(&plan.schema, &kept);
            (
                Plan {
                    node: PlanNode::Project {
                        input: Box::new(input),
                        exprs: new_exprs,
                    },
                    schema,
                },
                kept,
            )
        }
        PlanNode::Join {
            kind,
            left,
            right,
            on,
        } => {
            let la = left.schema.len();
            let mut need = required.clone();
            need.extend(columns_of(&on));
            let left_req: BTreeSet<usize> = need.iter().copied().filter(|&i| i < la).collect();
            let right_req: BTreeSet<usize> = need
                .iter()
                .copied()
                .filter(|&i| i >= la)
                .map(|i| i - la)
                .collect();
            let (left, lkept) = prune(*left, &left_req);
            let (right, rkept) = prune(*right, &right_req);
            let new_la = lkept.len();
            let mut on = on;
            on.map_columns(&|i| {
                if i < la {
                    pruned_pos(&lkept, i)
                } else {
                    new_la + pruned_pos(&rkept, i - la)
                }
            });
            let mut kept = lkept;
            kept.extend(rkept.into_iter().map(|i| i + la));
            let mut schema = left.schema.clone();
            schema.extend(right.schema.clone());
            (
                Plan {
                    node: PlanNode::Join {
                        kind,
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                    },
                    schema,
                },
                kept,
            )
        }
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let mut need = BTreeSet::new();
            for g in &group_exprs {
                need.extend(columns_of(g));
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    need.extend(columns_of(arg));
                }
            }
            let (input, kept) = prune(*input, &need);
            let remap = |mut e: BExpr| {
                e.map_columns(&|i| pruned_pos(&kept, i));
                e
            };
            let group_exprs = group_exprs.into_iter().map(remap).collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(remap);
                    a
                })
                .collect();
            (
                Plan {
                    node: PlanNode::Aggregate {
                        input: Box::new(input),
                        group_exprs,
                        aggs,
                    },
                    schema: plan.schema,
                },
                identity,
            )
        }
        PlanNode::Sort { input, keys } => {
            let mut need = required.clone();
            need.extend(keys.iter().map(|&(k, _)| k));
            let (input, kept) = prune(*input, &need);
            let keys = keys
                .into_iter()
                .map(|(k, desc)| (pruned_pos(&kept, k), desc))
                .collect();
            let schema = input.schema.clone();
            (
                Plan {
                    node: PlanNode::Sort {
                        input: Box::new(input),
                        keys,
                    },
                    schema,
                },
                kept,
            )
        }
        PlanNode::Distinct { input } => {
            // DISTINCT deduplicates whole rows: every input column is
            // semantically significant, so pruning stops here.
            let all: BTreeSet<usize> = (0..input.schema.len()).collect();
            let (input, _) = prune(*input, &all);
            (
                Plan {
                    node: PlanNode::Distinct {
                        input: Box::new(input),
                    },
                    schema: plan.schema,
                },
                identity,
            )
        }
        PlanNode::Limit {
            input,
            limit,
            offset,
        } => {
            let (input, kept) = prune(*input, required);
            let schema = input.schema.clone();
            (
                Plan {
                    node: PlanNode::Limit {
                        input: Box::new(input),
                        limit,
                        offset,
                    },
                    schema,
                },
                kept,
            )
        }
        node @ (PlanNode::IndexScan { .. } | PlanNode::Values { .. }) => {
            plan.node = node;
            (plan, identity)
        }
    }
}
